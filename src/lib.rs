//! # scfi-repro — SCFI: State Machine Control-Flow Hardening Against Fault Attacks
//!
//! A from-scratch Rust reproduction of the DATE 2023 paper by Nasahl et al.
//! (arXiv:2208.01356): a synthesis pass that replaces the next-state logic
//! of a finite-state machine with a fault-hardened function `φ_FH` built
//! from Hamming-distance-N encodings and an MDS diffusion layer, so that
//! fault attacks on the state registers, the control signals, or the
//! next-state logic itself collapse the FSM into a terminal error state
//! instead of hijacking its control flow.
//!
//! This crate is a facade re-exporting every subsystem:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`gf2`] | `scfi-gf2` | GF(2) linear algebra |
//! | [`mds`] | `scfi-mds` | verified MDS matrices + XOR lowering |
//! | [`netlist`] | `scfi-netlist` | gate-level IR, simulation, fault hooks |
//! | [`stdcell`] | `scfi-stdcell` | area/timing model, mapping, sizing |
//! | [`fsm`] | `scfi-fsm` | FSM model, CFG, DSL, behavioral simulation |
//! | [`encode`] | `scfi-encode` | Hamming-distance-N codebooks |
//! | [`core`] | `scfi-core` | **the SCFI pass** + redundancy baseline |
//! | [`faultsim`] | `scfi-faultsim` | SYNFI-style fault campaigns |
//! | [`symbolic`] | `scfi-symbolic` | BDD-based formal fault certification |
//! | [`opentitan`] | `scfi-opentitan` | the Table-1 benchmark FSM suite |
//!
//! # Quickstart
//!
//! ```
//! use scfi_repro::core::{harden, ScfiConfig};
//! use scfi_repro::fsm::parse_fsm;
//!
//! // Describe the FSM in the bundled DSL (or via the builder API).
//! let fsm = parse_fsm(
//!     "fsm lock {
//!        inputs key_ok, tamper;
//!        state LOCKED { if key_ok && !tamper -> OPEN; }
//!        state OPEN   { if tamper -> LOCKED; }
//!      }",
//! )?;
//!
//! // Harden it at protection level N = 3: an attacker now needs at least
//! // three precisely-placed bit flips to move the FSM between valid states.
//! let hardened = harden(&fsm, &ScfiConfig::new(3))?;
//! hardened.check_all_edges()?; // every CFG transition still works
//!
//! // The emitted artifact is a plain gate-level netlist.
//! assert!(hardened.module().output_net("alert").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use scfi_core as core;
pub use scfi_encode as encode;
pub use scfi_faultsim as faultsim;
pub use scfi_fsm as fsm;
pub use scfi_gf2 as gf2;
pub use scfi_mds as mds;
pub use scfi_netlist as netlist;
pub use scfi_opentitan as opentitan;
pub use scfi_stdcell as stdcell;
pub use scfi_symbolic as symbolic;
