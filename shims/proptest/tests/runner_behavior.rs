//! Behavioral checks of the shim's test runner itself: rejected cases are
//! re-drawn (still reaching the configured case count), an unsatisfiable
//! `prop_assume!` aborts instead of passing vacuously, and failures report
//! the generated values.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Half the input space is rejected; the runner must still execute 16
    /// accepted cases rather than silently running ~8.
    #[test]
    fn rejected_cases_are_redrawn(x in 0u64..100) {
        prop_assume!(x % 2 == 0);
        prop_assert!(x % 2 == 0);
    }
}

#[test]
fn unsatisfiable_assume_panics_instead_of_passing() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..100) {
                prop_assume!(x > 1000); // never true
                prop_assert!(false, "unreachable");
            }
        }
        inner();
    });
    let err = result.expect_err("an always-rejecting property must not pass");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("too many rejected cases"), "got: {msg}");
}

#[test]
fn failures_report_the_generated_values() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..100) {
                prop_assert!(x > 100, "impossible bound");
            }
        }
        inner();
    });
    let err = result.expect_err("property must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("generated values"), "got: {msg}");
    assert!(msg.contains("x ="), "dump must name the argument: {msg}");
}
