//! Minimal, deterministic, dependency-free stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the real `proptest` cannot be vendored. This shim
//! implements exactly the surface the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * strategies for integer ranges, tuples, `bool`, unsigned ints, and
//!   [`sample::Index`],
//! * [`collection::vec`] with `Range`/`RangeInclusive`/exact sizes,
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], and [`prop_assume!`] macros,
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Generation is deterministic: attempt `i` of every test derives its RNG
//! stream from `i` via SplitMix64 (rejected cases are re-drawn from the
//! next stream), so failures reproduce exactly across runs and machines.
//! There is no shrinking — the failing case index, its RNG stream, and a
//! `Debug` dump of the generated values are reported instead.

/// Deterministic RNG plumbing and per-test configuration.
pub mod test_runner {
    /// SplitMix64: tiny, fast, and statistically fine for test-input
    /// generation. Each test case seeds its own stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives the RNG stream for one test case of one test function.
        pub fn for_case(fn_hash: u64, case: u32) -> Self {
            TestRng {
                state: fn_hash
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(case).wrapping_mul(0xbf58_476d_1ce4_e5b9))
                    | 1,
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }

    /// Per-test configuration. Only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Rejection (assumption not met) with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinator/primitive
/// strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Strategy produced by [`any`](super::arbitrary::any) for primitives.
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for AnyStrategy<super::sample::Index> {
        type Value = super::sample::Index;
        fn generate(&self, rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::from_raw(rng.next_u64())
        }
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// Returns the canonical strategy for `T`.
    ///
    /// The shim supports the primitive types the workspace's tests use;
    /// unsupported types fail to compile (no `Strategy` impl for
    /// `AnyStrategy<T>`), mirroring proptest's `Arbitrary` bound.
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span as u64 + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`Index`).
pub mod sample {
    /// An index into a collection of as-yet-unknown length, as in
    /// `proptest::sample::Index`: generate one with `any::<Index>()`,
    /// then project it onto a concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Projects onto `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::sample;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each inner `fn` becomes a `#[test]` that runs
/// `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };

    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Stable per-fn stream key: hash of the test name.
            let fn_hash: u64 = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
                });
            // Rejected cases (`prop_assume!`) are re-drawn from the next RNG
            // stream so every test still executes `config.cases` accepted
            // cases — erroring out if rejections ever dominate.
            let mut rejected = 0u32;
            let mut accepted = 0u32;
            let mut attempt = 0u32;
            while accepted < config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(fn_hash, attempt);
                attempt += 1;
                let mut __scfi_dump = ::std::string::String::new();
                $(let $arg = {
                    let __scfi_val = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    __scfi_dump.push_str(&::std::format!(
                        "  {} = {:?}\n", stringify!($arg), __scfi_val
                    ));
                    __scfi_val
                };)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 4 * config.cases,
                            "proptest {}: too many rejected cases ({} rejects with only {} of {} cases accepted)",
                            stringify!($name), rejected, accepted, config.cases
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}/{} (rng stream {}): {}\ngenerated values:\n{}",
                            stringify!($name), accepted, config.cases, attempt - 1, msg, __scfi_dump
                        );
                    }
                }
            }
        }
    )*};

    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                    l, r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {:?}", l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: {:?}\n {}",
                    l, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (5u8..=5).generate(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<bool>(), 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            let w = crate::collection::vec(any::<u8>(), 7..=7).generate(&mut rng);
            assert_eq!(w.len(), 7);
        }
    }

    #[test]
    fn determinism_across_streams() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case(42, 7);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case(42, 7);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(x in 0usize..100, flag in any::<bool>(), idx in any::<sample::Index>()) {
            prop_assume!(x != 99);
            prop_assert!(x < 99, "x = {}", x);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert!(idx.index(10) < 10);
            let _ = flag;
        }
    }
}
