//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the real `criterion`
//! cannot be vendored. This shim implements the surface the workspace's
//! `benches/*.rs` targets use — `Criterion` configuration builders,
//! `benchmark_group` / `bench_function` / `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop: warm up for `warm_up_time`, then run
//! batches until `measurement_time` elapses (at least `sample_size`
//! iterations) and report the mean, minimum, and maximum per-iteration
//! time on stdout.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as `criterion::black_box`.
pub use std::hint::black_box;

/// Returns `true` when the bench binary was invoked with `--test` (as
/// `cargo bench -- --test` passes it), mirroring real criterion's test
/// mode: every benchmark payload runs exactly once, unmeasured, so CI can
/// assert benches still work without paying measurement time.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| has_test_flag(std::env::args()))
}

/// `--test` detection, separated from `std::env` for testability.
fn has_test_flag(mut args: impl Iterator<Item = String>) -> bool {
    args.any(|a| a == "--test")
}

/// Top-level benchmark driver and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Minimum number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target wall-clock budget for the measurement loop.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warm-up loop.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim prints results as it goes.
    pub fn final_summary(&self) {}

    /// Opens a named group of benchmarks. The group starts from this
    /// driver's configuration; group-level overrides stay scoped to the
    /// group, as in real criterion.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            config: self.clone(),
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_benchmark(&config, id.as_ref(), f);
        self
    }
}

/// A named collection of related benchmarks sharing one configuration.
///
/// Holds its own copy of the driver's configuration (the borrow on the
/// parent [`Criterion`] is kept only for API compatibility), so the
/// override setters below affect this group alone.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    config: Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(&self.config.clone(), &label, f);
        self
    }

    /// Per-group override of [`Criterion::sample_size`].
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Per-group override of [`Criterion::measurement_time`].
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the timed payload.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// (total elapsed, iterations, min, max) accumulated by `iter`.
    recorded: Option<(Duration, u64, Duration, Duration)>,
}

impl Bencher<'_> {
    /// Times `payload`, running it repeatedly per the driver's
    /// warm-up/measurement budgets. The payload's return value is passed
    /// through [`black_box`] so the work is not optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        if test_mode() {
            let start = Instant::now();
            black_box(payload());
            let elapsed = start.elapsed();
            self.recorded = Some((elapsed, 1, elapsed, elapsed));
            return;
        }
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(payload());
        }

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut iters = 0u64;
        let measure_deadline = Instant::now() + self.config.measurement_time;
        while iters < self.config.sample_size as u64 || Instant::now() < measure_deadline {
            let start = Instant::now();
            black_box(payload());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
            iters += 1;
            if total > self.config.measurement_time * 4 {
                break; // slow payloads: don't overshoot the budget badly
            }
        }
        self.recorded = Some((total, iters, min, max));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, mut f: F) {
    let mut bencher = Bencher {
        config,
        recorded: None,
    };
    f(&mut bencher);
    match bencher.recorded {
        Some((total, iters, min, max)) if iters > 0 => {
            let mean = total / iters as u32;
            println!(
                "{label:<40} time: [{} {} {}]  ({iters} iterations)",
                fmt_duration(min),
                fmt_duration(mean),
                fmt_duration(max),
            );
        }
        _ => println!("{label:<40} time: [no samples recorded]"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, as in criterion:
///
/// ```ignore
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 2 + 2));
    }

    criterion_group! {
        name = group;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        targets = payload
    }

    #[test]
    fn group_runs_and_records() {
        group();
    }

    #[test]
    fn grouped_bench_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.bench_function("fast", |b| b.iter(|| black_box(1u64).wrapping_mul(3)));
        g.finish();
    }

    #[test]
    fn group_overrides_do_not_leak_to_the_driver() {
        let mut c = Criterion::default()
            .sample_size(7)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.sample_size(1).measurement_time(Duration::from_millis(1));
        g.finish();
        assert_eq!(c.sample_size, 7, "group sample_size leaked to the driver");
        assert_eq!(
            c.measurement_time,
            Duration::from_millis(2),
            "group measurement_time leaked to the driver"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
    }

    #[test]
    fn test_flag_detection() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(has_test_flag(args(&["bench", "--test"]).into_iter()));
        assert!(!has_test_flag(args(&["bench", "--bench"]).into_iter()));
        assert!(!has_test_flag(args(&["bench", "--testx"]).into_iter()));
        assert!(!has_test_flag(std::iter::empty()));
    }
}
