//! A full SYNFI-style fault-injection campaign against a hardened FSM,
//! broken down by circuit region — reproducing the methodology of the
//! paper's §6.4 formal analysis interactively.
//!
//! Run with `cargo run --release --example fault_campaign`.

use scfi_repro::core::{harden, PadPolicy, ScfiConfig};
use scfi_repro::faultsim::{
    paper_success_probability, run_exhaustive, run_multi_fault, CampaignConfig, FaultEffect,
    ScfiTarget, VulnerabilityMap,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's formal-analysis target: an FSM with 14 CFG transitions,
    // protection level 2, full 32-bit MDS under test.
    let fsm = scfi_opentitan::synfi_formal_fsm();
    let hardened = harden(&fsm, &ScfiConfig::new(2).pad(PadPolicy::Replicate))?;
    println!(
        "target: {} — {} CFG edges, protection level 2",
        fsm.name(),
        hardened.cfg().len()
    );
    println!(
        "analytic success probability (paper §6.3 formula): {:.3e}\n",
        paper_success_probability(&hardened)
    );

    // Exhaustive single-flip campaigns per φ_FH stage.
    let regions = hardened.regions().clone();
    let stages = [
        ("pattern match", regions.pattern_match),
        ("modifier select", regions.modifier_select),
        ("MDS diffusion", regions.diffusion),
        ("error logic", regions.error_logic),
    ];
    println!("exhaustive transient flips (gate outputs + input pins), by stage:");
    for (name, region) in stages {
        let report = run_exhaustive(
            &ScfiTarget::new(&hardened),
            &CampaignConfig::new()
                .effects(vec![FaultEffect::Flip])
                .region(region)
                .with_pin_faults()
                .threads(2),
        );
        println!("  {name:<16} {report}");
    }
    println!("\n(the paper's §7 'limitation' lives in the selector logic: 1-bit");
    println!(" match signals allow within-CFG redirections — visible above as the");
    println!(" non-zero escape rate outside the diffusion layer)");

    // Which concrete cells do the escapes go through?
    let map = VulnerabilityMap::analyze(
        &ScfiTarget::new(&hardened),
        &CampaignConfig::new().effects(vec![FaultEffect::Flip]),
    );
    println!("\nper-cell attribution (top offenders):\n{map}");

    // Multi-fault attacker sweep (threat model: N−1 faults anywhere).
    println!("\nsampled multi-fault attacks (whole module, 3000 runs each):");
    for m in 1..=4 {
        let report = run_multi_fault(
            &ScfiTarget::new(&hardened),
            m,
            3000,
            &CampaignConfig::new().seed(7 + m as u64),
        );
        println!("  {m} simultaneous faults: {report}");
    }
    Ok(())
}
