//! The paper's §7 "Limitation & Future Work" items, implemented and
//! measured side by side:
//!
//! * **adaptive MDS size** — "extend SCFI to adapt the MDS matrix size to
//!   the size of the {S_C, X, Mod} input triple to further improve the
//!   area-time product",
//! * **encoded/replicated selector signals** — closing the stated
//!   limitation that 1-bit mux selectors "would allow an adversary to
//!   redirect the control-flow within the bounds of the CFG",
//! * **output-logic protection** — "how SCFI could be extended to also
//!   provide protection for the output logic".
//!
//! Run with `cargo run --release --example extensions`.

use scfi_repro::core::{harden, ScfiConfig};
use scfi_repro::faultsim::{run_exhaustive, CampaignConfig, ScfiTarget};
use scfi_repro::stdcell::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = scfi_opentitan::by_name("otbn_controller").expect("suite entry");
    let fsm = &bench.fsm;
    let lib = Library::nangate45_like();

    println!(
        "target: {} ({} states) — the Table-1 case where SCFI's fixed",
        fsm.name(),
        fsm.state_count()
    );
    println!("32-bit MDS cost loses to redundancy, motivating §7's size adaptation\n");

    let configs: [(&str, ScfiConfig); 5] = [
        ("paper prototype", ScfiConfig::new(2)),
        ("adaptive MDS", ScfiConfig::new(2).adaptive_mds(true)),
        ("2 selector rails", ScfiConfig::new(2).selector_rails(2)),
        (
            "protected outputs",
            ScfiConfig::new(2).protect_outputs(true),
        ),
        (
            "all three",
            ScfiConfig::new(2)
                .adaptive_mds(true)
                .selector_rails(2)
                .protect_outputs(true),
        ),
    ];

    println!(
        "{:<20} {:>9} {:>10} {:>12} {:>14} {:>12}",
        "configuration", "mds bits", "area [GE]", "min per ps", "whole escapes", "selector esc"
    );
    for (label, config) in configs {
        let hardened = harden(fsm, &config)?;
        hardened.check_all_edges()?;
        let mapped = lib.map(hardened.module());
        let whole = run_exhaustive(
            &ScfiTarget::new(&hardened),
            &CampaignConfig::new().threads(2),
        );
        let r = hardened.regions();
        let selector = run_exhaustive(
            &ScfiTarget::new(&hardened),
            &CampaignConfig::new()
                .region(r.pattern_match.start..r.modifier_select.end)
                .with_pin_faults()
                .threads(2),
        );
        println!(
            "{:<20} {:>9} {:>10.0} {:>12.0} {:>13.2}% {:>11.2}%",
            label,
            hardened.mds().width(),
            mapped.area_ge(),
            mapped.min_period_ps(),
            100.0 * whole.hijack_rate(),
            100.0 * selector.hijack_rate(),
        );
    }

    println!("\nreading: adaptive MDS cuts area and delay on tiny FSMs; selector rails");
    println!("suppress selector-region escapes; output protection costs a few GE and");
    println!("extends detection to the λ logic the paper leaves unprotected.");
    Ok(())
}
