//! Quickstart: describe an FSM, harden it with SCFI, watch a fault get
//! caught.
//!
//! Run with `cargo run --example quickstart`.

use scfi_repro::core::{harden, ScfiConfig, StateDecode};
use scfi_repro::fsm::parse_fsm;
use scfi_repro::netlist::Simulator;
use scfi_repro::stdcell::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An everyday security-relevant controller: a lock.
    let fsm = parse_fsm(
        "fsm lock {
           inputs key_ok, tamper;
           outputs open, alarm;
           reset LOCKED;
           state LOCKED { if key_ok && !tamper -> OPEN; if tamper -> ALARM; }
           state OPEN   { out open;  if tamper -> ALARM; if !key_ok -> LOCKED; }
           state ALARM  { out alarm; goto ALARM; }
         }",
    )?;
    println!(
        "parsed `{}`: {} states, {} transitions",
        fsm.name(),
        fsm.state_count(),
        fsm.transition_count()
    );

    // 2. Harden at protection level N = 3.
    let hardened = harden(&fsm, &ScfiConfig::new(3))?;
    let report = hardened.report();
    println!("\nSCFI pass report:\n{report}");

    // 3. The pass is verified: every CFG edge reaches its target, and a
    //    random walk tracks the behavioral model exactly.
    hardened.check_all_edges()?;
    hardened.check_equivalence(500, 42)?;
    println!("equivalence checks passed (all edges + 500-step random walk)");

    // 4. Area of the protected controller under the bundled cell library.
    let lib = Library::nangate45_like();
    let mapped = lib.map(hardened.module());
    println!(
        "mapped: {:.0} GE, minimum clock period {:.0} ps",
        mapped.area_ge(),
        mapped.min_period_ps()
    );

    // 5. Attack it: flip one state-register bit (fault target FT1).
    let mut sim = Simulator::new(hardened.module());
    let locked = fsm.state_by_name("LOCKED").expect("state exists");
    println!("\ninjecting a single bit-flip into the state register…");
    sim.flip_register(hardened.module().registers()[0]);
    let xe: Vec<bool> = hardened
        .encode_condition(locked, &[false, false])
        .iter()
        .collect();
    sim.step(&xe);
    match hardened.decode_registers(sim.register_values()) {
        StateDecode::Error => println!("caught: the FSM is in the terminal ERROR state"),
        other => println!("unexpected outcome: {other:?}"),
    }

    // 6. ERROR is non-escapable: even valid inputs cannot leave it.
    sim.step(&xe);
    assert_eq!(
        hardened.decode_registers(sim.register_values()),
        StateDecode::Error
    );
    println!("…and it stays there. The lock fails safe.");
    Ok(())
}
