//! Secure-boot scenario: the attack the SCFI paper's introduction motivates.
//!
//! Fault attacks on boot controllers (BADFET, laser fault injection on
//! smartphones — refs [5, 22] of the paper) skip signature verification by
//! glitching the boot FSM from `VERIFY` straight into `BOOT`. This example
//! builds such a controller, shows the hijack succeeding on the
//! unprotected netlist, and shows SCFI turning the same fault campaign
//! into alarms.
//!
//! Run with `cargo run --example secure_boot`.

use scfi_repro::core::{harden, ScfiConfig};
use scfi_repro::faultsim::{
    run_exhaustive, CampaignConfig, FaultEffect, ScfiTarget, UnprotectedTarget,
};
use scfi_repro::fsm::{lower_unprotected, parse_fsm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fsm = parse_fsm(
        "fsm secure_boot {
           inputs rom_ok, sig_ok, key_loaded, watchdog;
           outputs boot_granted, halted;
           reset ROM_CHECK;
           state ROM_CHECK  { if rom_ok -> LOAD_KEY; if watchdog -> HALT; }
           state LOAD_KEY   { if key_loaded -> VERIFY; if watchdog -> HALT; }
           state VERIFY     { if sig_ok -> BOOT; if !sig_ok && watchdog -> HALT; }
           state BOOT       { out boot_granted; goto BOOT; }
           state HALT       { out halted; goto HALT; }
         }",
    )?;

    println!("secure-boot controller: {} states", fsm.state_count());
    println!("attack goal: reach BOOT without sig_ok\n");

    // --- Unprotected: single transient flips hijack the flow. -------------
    let lowered = lower_unprotected(&fsm)?;
    let target = UnprotectedTarget::new(&fsm, &lowered);
    let report = run_exhaustive(
        &target,
        &CampaignConfig::new()
            .effects(vec![
                FaultEffect::Flip,
                FaultEffect::Stuck0,
                FaultEffect::Stuck1,
            ])
            .with_register_flips()
            .threads(2),
    );
    println!("unprotected netlist under exhaustive single faults:");
    println!("  {report}");
    println!("  every hijack is silent — nothing in the circuit can notice.\n");

    // --- SCFI at N = 2 and N = 3. -----------------------------------------
    for n in [2usize, 3] {
        let hardened = harden(&fsm, &ScfiConfig::new(n))?;
        hardened.check_all_edges()?;
        let target = ScfiTarget::new(&hardened);
        let report = run_exhaustive(
            &target,
            &CampaignConfig::new()
                .effects(vec![
                    FaultEffect::Flip,
                    FaultEffect::Stuck0,
                    FaultEffect::Stuck1,
                ])
                .with_register_flips()
                .threads(2),
        );
        println!("SCFI (N = {n}) under the same campaign:");
        println!("  {report}");
    }

    println!("\nthe boot FSM now fails into the terminal ERROR state — the chip");
    println!("halts instead of booting unsigned code.");
    Ok(())
}
