//! Synthesis-style area/timing report for every Table-1 benchmark FSM in
//! all three configurations (unprotected / redundancy / SCFI).
//!
//! Run with `cargo run --example area_report -- [N]` (default N = 3).

use scfi_repro::core::{harden, redundancy, ScfiConfig};
use scfi_repro::fsm::lower_unprotected;
use scfi_repro::netlist::ModuleStats;
use scfi_repro::stdcell::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3);
    let lib = Library::nangate45_like();

    println!("protection level N = {n}; areas are FSM logic only (GE)\n");
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "fsm", "unprot", "redundancy", "scfi", "scfi depth", "scfi ps"
    );
    for bench in scfi_opentitan::all() {
        let unprot = lower_unprotected(&bench.fsm)?;
        let red = redundancy(&bench.fsm, n)?;
        let hardened = harden(&bench.fsm, &ScfiConfig::new(n))?;
        let scfi_mapped = lib.map(hardened.module());
        println!(
            "{:<18} {:>10.0} {:>12.0} {:>10.0} {:>12} {:>10.0}",
            bench.name,
            lib.map(unprot.module()).area_ge(),
            lib.map(red.module()).area_ge(),
            scfi_mapped.area_ge(),
            ModuleStats::of(hardened.module()).depth(),
            scfi_mapped.min_period_ps(),
        );
    }

    println!("\nper-stage cell counts of the hardened adc_ctrl_fsm:");
    let adc = scfi_opentitan::by_name("adc_ctrl_fsm").expect("suite entry");
    let hardened = harden(&adc.fsm, &ScfiConfig::new(n))?;
    let r = hardened.regions();
    println!("  pattern match   {:>5} cells", r.pattern_match.len());
    println!("  modifier select {:>5} cells", r.modifier_select.len());
    println!("  MDS diffusion   {:>5} cells", r.diffusion.len());
    println!("  error logic     {:>5} cells", r.error_logic.len());
    println!("\nreport:\n{}", hardened.report());
    Ok(())
}
