//! Property-based tests over the whole stack: random FSMs stay equivalent
//! through hardening, codebooks keep their distance guarantees, the
//! diffusion layer keeps its avalanche property, and single sub-N faults
//! never silently hijack a hardened machine.

use proptest::prelude::*;

use scfi_repro::core::{harden, ScfiConfig, StateDecode};
use scfi_repro::encode::CodeSpec;
use scfi_repro::fsm::{Fsm, FsmBuilder, FsmSimulator, Guard, SignalId, StateId};
use scfi_repro::gf2::{BitMatrix, BitVec};
use scfi_repro::mds::{Lowering, MdsSpec, XorProgram};
use scfi_repro::netlist::Simulator;

/// One random transition: `(target pick, guard literal picks)`.
type TransitionSpec = (usize, Vec<(usize, bool)>);

/// Specification of a random FSM, turned into a real [`Fsm`] by
/// [`build_fsm`]. All indices are taken modulo the actual ranges so any
/// byte soup yields a valid machine.
#[derive(Clone, Debug)]
struct FsmSpec {
    n_states: usize,
    n_signals: usize,
    /// Per state: list of (target, guard literals as (signal, polarity)).
    transitions: Vec<Vec<TransitionSpec>>,
}

fn fsm_spec() -> impl Strategy<Value = FsmSpec> {
    (2usize..7, 1usize..4).prop_flat_map(|(n_states, n_signals)| {
        let transition = (
            0usize..16,
            proptest::collection::vec((0usize..8, any::<bool>()), 0..3),
        );
        let per_state = proptest::collection::vec(transition, 0..4);
        proptest::collection::vec(per_state, n_states..=n_states).prop_map(move |transitions| {
            FsmSpec {
                n_states,
                n_signals,
                transitions,
            }
        })
    })
}

fn build_fsm(spec: &FsmSpec) -> Fsm {
    let mut b = FsmBuilder::new("random");
    let signals: Vec<SignalId> = (0..spec.n_signals)
        .map(|i| b.signal(format!("x{i}")).expect("fresh"))
        .collect();
    let states: Vec<StateId> = (0..spec.n_states)
        .map(|i| b.state(format!("S{i}")).expect("fresh"))
        .collect();
    for (si, ts) in spec.transitions.iter().enumerate() {
        for (target, lits) in ts {
            let target = states[target % spec.n_states];
            // Deduplicate signals inside the guard to avoid contradictions.
            let mut seen = std::collections::HashSet::new();
            let lits: Vec<(SignalId, bool)> = lits
                .iter()
                .filter(|(s, _)| seen.insert(s % spec.n_signals))
                .map(|&(s, v)| (signals[s % spec.n_signals], v))
                .collect();
            let guard = Guard::new(lits).expect("deduplicated");
            b.transition(states[si], target, guard);
        }
    }
    b.finish().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hardening any random FSM preserves its behavior exactly.
    #[test]
    fn hardened_random_fsm_is_equivalent(spec in fsm_spec(), seed in any::<u64>()) {
        let fsm = build_fsm(&spec);
        let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
        hardened.check_all_edges().expect("edges");
        hardened.check_equivalence(100, seed).expect("random walk");
    }

    /// A single register-bit flip can never silently move a hardened FSM
    /// to a different valid state (FT1, the Fig. 4 default arm).
    #[test]
    fn single_register_flip_never_hijacks(spec in fsm_spec(), walk in 0u64..1000) {
        let fsm = build_fsm(&spec);
        let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
        let regs = hardened.module().registers().to_vec();
        // Walk to a pseudo-random reachable state first.
        let mut gold = FsmSimulator::new(&fsm);
        let mut w = walk.max(1);
        for _ in 0..8 {
            w ^= w >> 12; w ^= w << 25; w ^= w >> 27;
            let raw: Vec<bool> = (0..fsm.signals().len()).map(|i| (w >> i) & 1 == 1).collect();
            gold.step(&raw);
        }
        let cur = gold.state();
        for (i, &reg) in regs.iter().enumerate() {
            let mut sim = Simulator::new(hardened.module());
            let code: Vec<bool> = hardened.encode_state(cur).iter().collect();
            sim.set_register_values(&code);
            sim.flip_register(reg);
            let raw = vec![false; fsm.signals().len()];
            let xe: Vec<bool> = hardened.encode_condition(cur, &raw).iter().collect();
            sim.step(&xe);
            let decoded = hardened.decode_registers(sim.register_values());
            prop_assert_eq!(decoded, StateDecode::Error, "reg bit {} escaped", i);
        }
    }

    /// A single control-word bit flip is likewise always caught (FT2).
    #[test]
    fn single_control_flip_never_hijacks(spec in fsm_spec(), bit in any::<proptest::sample::Index>()) {
        let fsm = build_fsm(&spec);
        let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
        let cur = fsm.reset_state();
        let raw = vec![false; fsm.signals().len()];
        let mut xe: Vec<bool> = hardened.encode_condition(cur, &raw).iter().collect();
        let flip = bit.index(xe.len());
        xe[flip] = !xe[flip];
        let mut sim = Simulator::new(hardened.module());
        sim.step(&xe);
        prop_assert_eq!(
            hardened.decode_registers(sim.register_values()),
            StateDecode::Error
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Codebooks always verify, exclude zero by default, and decode
    /// round-trip.
    #[test]
    fn codebooks_hold_their_guarantees(count in 1usize..24, d in 1usize..5) {
        let code = CodeSpec::new(count, d).build().expect("buildable");
        prop_assert!(code.verify());
        prop_assert!(code.min_weight() >= d);
        for i in 0..code.len() {
            prop_assert_eq!(code.decode(code.word(i)), Some(i));
        }
    }

    /// GF(2) algebra: (A·B)ᵀ = Bᵀ·Aᵀ and rank is transpose-invariant.
    #[test]
    fn matrix_algebra_laws(seed in any::<u64>()) {
        let mut s = seed.max(1);
        let mut bit = move || { s ^= s >> 12; s ^= s << 25; s ^= s >> 27;
            s.wrapping_mul(0x2545F4914F6CDD1D) & 1 == 1 };
        let a = BitMatrix::from_fn(6, 6, |_, _| bit());
        let b = BitMatrix::from_fn(6, 6, |_, _| bit());
        let ab_t = a.mul_matrix(&b).transpose();
        let bt_at = b.transpose().mul_matrix(&a.transpose());
        prop_assert_eq!(ab_t, bt_at);
        prop_assert_eq!(a.rank(), a.transpose().rank());
        if let Some(inv) = a.inverse() {
            prop_assert_eq!(a.mul_matrix(&inv), BitMatrix::identity(6));
        }
    }

    /// The MDS avalanche: every nonzero 32-bit input disturbs at least
    /// 5 − wt(x) output lanes (branch number 5).
    #[test]
    fn mds_branch_bound_holds(x in 1u64..u32::MAX as u64) {
        let mds = MdsSpec::ScfiLightweight.build();
        let input = BitVec::from_u64(x & 0xFFFF_FFFF, 32);
        prop_assume!(!input.is_zero());
        let output = mds.mul(&input);
        let wt_in = mds.block().symbol_weight(&input);
        let wt_out = mds.block().symbol_weight(&output);
        prop_assert!(wt_in + wt_out >= 5, "wt {wt_in} + {wt_out} < 5");
    }

    /// XOR-program lowering is exact for random matrices under both
    /// strategies.
    #[test]
    fn xor_lowering_is_exact(seed in any::<u64>(), x in any::<u16>()) {
        let mut s = seed.max(1);
        let mut bit = move || { s ^= s >> 12; s ^= s << 25; s ^= s >> 27;
            s.wrapping_mul(0x2545F4914F6CDD1D) & 1 == 1 };
        let m = BitMatrix::from_fn(10, 16, |_, _| bit());
        let v = BitVec::from_u64(x as u64, 16);
        for strategy in [Lowering::Naive, Lowering::Paar] {
            let p = XorProgram::lower(&m, strategy);
            prop_assert_eq!(p.eval(&v), m.mul_vec(&v));
        }
    }
}
