//! Shared support for the workspace-level differential tests.
//!
//! The paper's security argument is an equivalence claim (§3.2): under zero
//! faults, the protected gate-level machine `FSM_F` must behave exactly like
//! the behavioral golden model `FSM_F̄` — `φ_F(S, X, 0) = φ_F̄(S, X, 0)`.
//! The drivers here enforce that claim cycle by cycle for all three
//! evaluation configurations of §6.1: the unprotected lowering, the N-fold
//! redundancy baseline, and the SCFI-hardened netlist.
//!
//! Each driver runs the behavioral [`FsmSimulator`] and the gate-level
//! [`Simulator`] in lock-step over a deterministic seeded input sequence and
//! asserts, every cycle:
//!
//! * the decoded state register equals the golden model's state,
//! * the Moore outputs (sampled pre-transition, as the netlist does) equal
//!   the golden model's `λ(S)`,
//! * no alert / error flag fires on a fault-free run.

use scfi_core::{HardenedFsm, RedundantFsm, StateDecode};
use scfi_fsm::{Fsm, FsmSimulator, LoweredFsm};
use scfi_netlist::Simulator;

/// Deterministic xorshift64* input trace: `len` cycles of `n_signals` raw
/// control bits. Same seed → same trace, on every platform.
pub fn trace(n_signals: usize, len: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut state = seed.max(1);
    (0..len)
        .map(|_| {
            (0..n_signals)
                .map(|_| {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state.wrapping_mul(0x2545F4914F6CDD1D) & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Lock-step conformance of the unprotected lowering (§6.1 configuration
/// (i)) against the behavioral model: decoded state and Moore outputs must
/// agree every cycle.
pub fn assert_unprotected_conformance(fsm: &Fsm, lowered: &LoweredFsm, steps: usize, seed: u64) {
    let mut gate = Simulator::new(lowered.module());
    let mut gold = FsmSimulator::new(fsm);
    let sb = lowered.state_bits();
    for (cycle, raw) in trace(fsm.signals().len(), steps, seed)
        .into_iter()
        .enumerate()
    {
        let gold_outputs = gold.outputs();
        let out = gate.step(&raw);
        let expect = gold.step(&raw);
        assert_eq!(
            &out[sb..],
            &gold_outputs[..],
            "{}: cycle {cycle}: unprotected Moore outputs diverged",
            fsm.name()
        );
        assert_eq!(
            lowered.decode_registers(gate.register_values()),
            Some(expect),
            "{}: cycle {cycle}: unprotected netlist diverged from golden model (expected {})",
            fsm.name(),
            fsm.state_name(expect)
        );
    }
}

/// Lock-step conformance of the N-fold redundancy baseline (§6.1
/// configuration (ii)): decoded replica-0 state and Moore outputs must track
/// the golden model, and the replica-mismatch alert must stay low.
pub fn assert_redundancy_conformance(r: &RedundantFsm, steps: usize, seed: u64) {
    let fsm = r.fsm();
    let mut gate = Simulator::new(r.module());
    let mut gold = FsmSimulator::new(fsm);
    let sb = r.state_bits();
    let n_out = fsm.outputs().len();
    for (cycle, raw) in trace(fsm.signals().len(), steps, seed)
        .into_iter()
        .enumerate()
    {
        let gold_outputs = gold.outputs();
        let xe: Vec<bool> = r.encode_condition(gold.state(), &raw).iter().collect();
        let out = gate.step(&xe);
        let expect = gold.step(&raw);
        assert_eq!(
            &out[sb..sb + n_out],
            &gold_outputs[..],
            "{}: cycle {cycle}: redundancy Moore outputs diverged",
            fsm.name()
        );
        assert!(
            !out[sb + n_out],
            "{}: cycle {cycle}: replica mismatch alert on a fault-free run",
            fsm.name()
        );
        assert_eq!(
            r.decode_registers(gate.register_values()),
            Some(expect),
            "{}: cycle {cycle}: redundant netlist diverged from golden model (expected {})",
            fsm.name(),
            fsm.state_name(expect)
        );
    }
}

/// Lock-step conformance of the SCFI-hardened netlist (§6.1 configuration
/// (iii)): the decoded encoded-state register and Moore outputs must track
/// the golden model, with `alert` and `in_error` low throughout — the
/// fault-free half of the paper's equivalence claim.
pub fn assert_scfi_conformance(h: &HardenedFsm, steps: usize, seed: u64) {
    let fsm = h.fsm();
    let mut gate = Simulator::new(h.module());
    let mut gold = FsmSimulator::new(fsm);
    let sw = h.state_code().width();
    let n_out = fsm.outputs().len();
    for (cycle, raw) in trace(fsm.signals().len(), steps, seed)
        .into_iter()
        .enumerate()
    {
        let gold_outputs = gold.outputs();
        let xe: Vec<bool> = h.encode_condition(gold.state(), &raw).iter().collect();
        let out = gate.step(&xe);
        let expect = gold.step(&raw);
        assert_eq!(
            &out[sw..sw + n_out],
            &gold_outputs[..],
            "{}: cycle {cycle}: SCFI Moore outputs diverged",
            fsm.name()
        );
        assert!(
            !out[sw + n_out],
            "{}: cycle {cycle}: false alert on a fault-free run",
            fsm.name()
        );
        assert!(
            !out[sw + n_out + 1],
            "{}: cycle {cycle}: spurious in_error on a fault-free run",
            fsm.name()
        );
        match h.decode_registers(gate.register_values()) {
            StateDecode::State(s) if s == expect => {}
            other => panic!(
                "{}: cycle {cycle}: SCFI netlist decoded {other:?}, golden model is in {}",
                fsm.name(),
                fsm.state_name(expect)
            ),
        }
    }
}
