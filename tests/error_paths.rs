//! Error-path coverage across the public API: malformed DSL inputs, invalid
//! [`ScfiConfig`] parameters, and degenerate codebook requests must return
//! the documented `Err` variants — never panic, never silently produce an
//! unprotected netlist.

use scfi_core::{harden, redundancy, ScfiConfig, ScfiError};
use scfi_encode::{CodeError, CodeSpec};
use scfi_fsm::{parse_fsm, FsmError};

fn small_fsm() -> scfi_fsm::Fsm {
    parse_fsm("fsm t { inputs go; state A { if go -> B; } state B { goto A; } }").unwrap()
}

#[test]
fn malformed_dsl_inputs_are_parse_errors() {
    // Each malformed input must surface as `FsmError::Parse` with a usable
    // 1-based line number, not a panic.
    let cases = [
        "not an fsm at all",
        "fsm {",                                               // missing name
        "fsm m { inputs a; state S { if a -> S; }",            // unterminated block
        "fsm m { inputs a }",                                  // missing `;` after name list
        "fsm m { state S { if -> S; } }",                      // guard with no literals
        "fsm m { state S { if a S; } }",                       // missing `->`
        "fsm m { state S { } } trailing",                      // tokens after the block
        "fsm m { state S { goto S; } } fsm n { state T { } }", // two blocks
        "fsm m { state S { out; } }",                          // empty output list
    ];
    for text in cases {
        match parse_fsm(text) {
            Err(FsmError::Parse { line, .. }) => {
                assert!(line >= 1, "line numbers are 1-based for {text:?}")
            }
            other => panic!("{text:?}: expected FsmError::Parse, got {other:?}"),
        }
    }
}

#[test]
fn unresolved_names_are_unknown_name_errors() {
    let e = parse_fsm("fsm m { state S { goto GHOST; } }").unwrap_err();
    assert!(
        matches!(e, FsmError::UnknownName { ref name, .. } if name == "GHOST"),
        "{e:?}"
    );

    let e = parse_fsm("fsm m { state S { if mystery -> S; } }").unwrap_err();
    assert!(
        matches!(e, FsmError::UnknownName { ref name, .. } if name == "mystery"),
        "{e:?}"
    );

    let e = parse_fsm("fsm m { reset NOWHERE; state S { } }").unwrap_err();
    assert!(
        matches!(e, FsmError::UnknownName { ref name, .. } if name == "NOWHERE"),
        "{e:?}"
    );
}

#[test]
fn duplicate_declarations_are_rejected() {
    let e = parse_fsm("fsm m { state S { } state S { } }").unwrap_err();
    assert!(
        matches!(e, FsmError::DuplicateState(ref n) if n == "S"),
        "{e:?}"
    );

    let e = parse_fsm("fsm m { inputs a, a; state S { } }").unwrap_err();
    assert!(
        matches!(e, FsmError::DuplicateSignal(ref n) if n == "a"),
        "{e:?}"
    );

    let e = parse_fsm("fsm m { outputs y, y; state S { } }").unwrap_err();
    assert!(
        matches!(e, FsmError::DuplicateOutput(ref n) if n == "y"),
        "{e:?}"
    );
}

#[test]
fn degenerate_machines_are_rejected() {
    assert!(matches!(
        parse_fsm("fsm m { inputs a; }").unwrap_err(),
        FsmError::Empty
    ));

    let e = parse_fsm("fsm m { inputs a; state S { if a && !a -> S; } }").unwrap_err();
    assert!(matches!(e, FsmError::ContradictoryGuard { .. }), "{e:?}");
}

#[test]
fn error_messages_carry_context() {
    let e = parse_fsm("fsm m {\n  inputs a;\n  state S { if a ->> S; }\n}").unwrap_err();
    let msg = e.to_string();
    assert!(
        msg.contains("line 3"),
        "message should name the line: {msg}"
    );
}

#[test]
fn protection_level_zero_and_one_are_rejected() {
    let fsm = small_fsm();
    for n in [0, 1] {
        assert!(matches!(
            harden(&fsm, &ScfiConfig::new(n)),
            Err(ScfiError::ProtectionLevelTooLow { requested }) if requested == n
        ));
        assert!(matches!(
            redundancy(&fsm, n),
            Err(ScfiError::ProtectionLevelTooLow { requested }) if requested == n
        ));
    }
}

#[test]
fn oversized_protection_levels_are_rejected() {
    let fsm = small_fsm();
    // N = 16 implies 16 error bits per 32-bit MDS instance — at least half
    // the instance, leaving no room for the state share.
    assert!(matches!(
        harden(&fsm, &ScfiConfig::new(16)),
        Err(ScfiError::ErrorBitsTooLarge { error_bits: 16 })
    ));
    // Explicit error-bit overrides hit the same bound, in both directions.
    assert!(matches!(
        harden(&fsm, &ScfiConfig::new(2).error_bits(16)),
        Err(ScfiError::ErrorBitsTooLarge { error_bits: 16 })
    ));
    assert!(matches!(
        harden(&fsm, &ScfiConfig::new(2).error_bits(0)),
        Err(ScfiError::ErrorBitsTooLarge { error_bits: 0 })
    ));
}

#[test]
fn codebook_requests_fail_with_specific_variants() {
    // Degenerate parameters.
    assert!(matches!(
        CodeSpec::new(0, 2).build(),
        Err(CodeError::InvalidSpec(_))
    ));
    assert!(matches!(
        CodeSpec::new(4, 0).build(),
        Err(CodeError::InvalidSpec(_))
    ));
    // Satisfiable distance, unsatisfiable width budget.
    assert!(matches!(
        CodeSpec::new(4, 3).max_width(3).build(),
        Err(CodeError::WidthExhausted { max_width: 3, .. })
    ));
}

#[test]
fn scfi_errors_preserve_their_sources() {
    use std::error::Error as _;
    let e = harden(&small_fsm(), &ScfiConfig::new(16)).unwrap_err();
    // ErrorBitsTooLarge is a leaf diagnostic with a self-contained message.
    assert!(e.source().is_none());
    assert!(e.to_string().contains("16"), "{e}");

    let e: ScfiError = FsmError::Empty.into();
    assert!(e.source().is_some(), "wrapped FSM errors keep their source");
}
