//! Shape-level assertions of the paper's evaluation claims, run against
//! the actual benchmark pipeline. These are the automated versions of the
//! EXPERIMENTS.md checklist.

use scfi_repro::core::{harden, PadPolicy, ScfiConfig};
use scfi_repro::faultsim::{
    paper_success_probability, run_exhaustive, CampaignConfig, FaultEffect, ScfiTarget,
    UnprotectedTarget,
};
use scfi_repro::fsm::lower_unprotected;
use scfi_repro::netlist::ModuleStats;
use scfi_repro::stdcell::Library;

/// §6.1 / Table 1 (subset for test-time budget): on the FSM-dominated
/// pwrmgr-like module, SCFI must beat redundancy at N = 3 and N = 4; on the
/// datapath-dominated otbn-like module, SCFI may not.
#[test]
fn table1_shape_holds() {
    let lib = Library::nangate45_like();
    let pwrmgr = scfi_opentitan::by_name("pwrmgr_fsm").expect("suite");
    let otbn = scfi_opentitan::by_name("otbn_controller").expect("suite");
    for n in [3usize, 4] {
        let pw_scfi = lib
            .map(
                harden(&pwrmgr.fsm, &ScfiConfig::new(n))
                    .expect("harden")
                    .module(),
            )
            .area_ge();
        let pw_red = lib
            .map(
                scfi_repro::core::redundancy(&pwrmgr.fsm, n)
                    .expect("red")
                    .module(),
            )
            .area_ge();
        assert!(
            pw_scfi < pw_red,
            "N={n}: SCFI {pw_scfi:.0} GE must beat redundancy {pw_red:.0} GE on pwrmgr"
        );
    }
    // otbn: tiny FSM — SCFI's fixed MDS cost keeps it close to or above
    // redundancy at N=2 (the paper's observed crossover).
    let ot_scfi = lib
        .map(
            harden(&otbn.fsm, &ScfiConfig::new(2))
                .expect("harden")
                .module(),
        )
        .area_ge();
    let ot_red = lib
        .map(
            scfi_repro::core::redundancy(&otbn.fsm, 2)
                .expect("red")
                .module(),
        )
        .area_ge();
    assert!(
        ot_scfi > ot_red * 0.8,
        "otbn-like: SCFI {ot_scfi:.0} GE should not beat redundancy {ot_red:.0} GE decisively"
    );
}

/// §6.2: the hardened next-state function adds bounded logic depth — the
/// diffusion layer is a handful of XOR levels plus the error AND, so the
/// protected FSM's depth must stay within a small constant of the
/// unprotected one's.
#[test]
fn timing_depth_shape_holds() {
    let bench = scfi_opentitan::by_name("adc_ctrl_fsm").expect("suite");
    let unprot = lower_unprotected(&bench.fsm).expect("lower");
    let hardened = harden(&bench.fsm, &ScfiConfig::new(3)).expect("harden");
    let d_unprot = ModuleStats::of(unprot.module()).depth();
    let d_scfi = ModuleStats::of(hardened.module()).depth();
    assert!(
        d_scfi <= d_unprot + 14,
        "SCFI depth {d_scfi} vs unprotected {d_unprot}"
    );
    // And the mapped design still meets OpenTitan's 125 MHz (8000 ps).
    let lib = Library::nangate45_like();
    let mut mapped = lib.map(hardened.module());
    let result = mapped.size_for_period(8000.0);
    assert!(result.met, "SCFI must meet 125 MHz: {result:?}");
}

/// §6.4: exhaustive single flips into the MDS diffusion layer of the
/// 14-transition FSM at N = 2 escape at well under 1 % (paper: 0.42 %).
#[test]
fn synfi_escape_rate_shape_holds() {
    let fsm = scfi_opentitan::synfi_formal_fsm();
    let hardened = harden(&fsm, &ScfiConfig::new(2).pad(PadPolicy::Replicate)).expect("harden");
    assert_eq!(
        hardened.cfg().len(),
        14,
        "the paper's FSM has 14 transitions"
    );
    let report = run_exhaustive(
        &ScfiTarget::new(&hardened),
        &CampaignConfig::new()
            .effects(vec![FaultEffect::Flip])
            .region(hardened.regions().diffusion.clone())
            .with_pin_faults()
            .threads(2),
    );
    assert!(report.injections > 1000, "fault space too small: {report}");
    assert!(
        report.hijack_rate() < 0.02,
        "diffusion escape rate must stay ~paper-scale (<2%): {report}"
    );
    // The paper's analytic bound is far smaller than any measured rate.
    assert!(paper_success_probability(&hardened) < 1e-4);
}

/// §6.3: the unprotected FSM is orders of magnitude easier to hijack than
/// the SCFI-protected one under the same fault model.
#[test]
fn protection_gap_shape_holds() {
    let fsm = scfi_opentitan::synfi_formal_fsm();
    let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
    let lowered = lower_unprotected(&fsm).expect("lower");
    let config = CampaignConfig::new()
        .effects(vec![FaultEffect::Flip])
        .threads(2);
    let scfi = run_exhaustive(&ScfiTarget::new(&hardened), &config);
    let unprot = run_exhaustive(&UnprotectedTarget::new(&fsm, &lowered), &config);
    assert!(
        unprot.hijack_rate() > 10.0 * scfi.hijack_rate().max(1e-6),
        "unprotected {:.3} vs SCFI {:.3}",
        unprot.hijack_rate(),
        scfi.hijack_rate()
    );
    // No detection mechanism exists in the unprotected design.
    assert_eq!(unprot.detected, 0);
}
