//! Cross-layer differential conformance harness.
//!
//! For every OpenTitan Table-1 FSM and every protection level N ∈ {1..5},
//! this suite drives the behavioral [`scfi_fsm::FsmSimulator`] and the
//! gate-level [`scfi_netlist::Simulator`] in lock-step over deterministic
//! seeded input sequences and asserts state/output equivalence — for the
//! unprotected lowering, the redundancy baseline, and the SCFI-hardened
//! netlist (the three evaluation configurations of §6.1). Level 1 is the
//! documented rejection case: a distance-1 "encoding" protects nothing, so
//! both protected constructions must refuse it.
//!
//! On top of the fault-free equivalence (§3.2's `φ_F(S, X, 0) = φ_F̄(S, X,
//! 0)`), fault-campaign smoke checks assert the other half of the security
//! claim: single-bit faults on hardened state registers are *detected*
//! (terminal ERROR state + alert), never silent control-flow hijacks.

mod common;

use scfi_core::{harden, redundancy, ScfiConfig, ScfiError, StateDecode};
use scfi_faultsim::{
    enumerate_faults, run_exhaustive, run_exhaustive_scalar, Backend, CampaignConfig, FaultSite,
    FaultTarget, RedundancyTarget, ScfiTarget, UnprotectedTarget, VulnerabilityMap,
};
use scfi_fsm::lower_unprotected;
use scfi_netlist::{Module, Simulator};
use scfi_symbolic::{Certifier, CertifyBudget, CertifyModel, Verdict};

/// Protection levels with a constructible encoding (level 1 is the
/// rejection case, tested separately).
const LEVELS: [usize; 4] = [2, 3, 4, 5];

/// Lock-step cycles per (FSM, level, variant) combination.
const STEPS: usize = 160;

/// Distinct deterministic seed per (FSM, level) pair so the three variants
/// of one combination share a trace but combinations differ.
fn seed(fsm_index: usize, level: usize) -> u64 {
    0x5CF1_C0DE ^ ((fsm_index as u64) << 8) ^ level as u64
}

#[test]
fn unprotected_lowering_tracks_golden_model_on_every_table1_fsm() {
    for (i, b) in scfi_opentitan::all().iter().enumerate() {
        let lowered = lower_unprotected(&b.fsm).expect("lowerable");
        common::assert_unprotected_conformance(&b.fsm, &lowered, 2 * STEPS, seed(i, 0));
    }
}

#[test]
fn redundancy_baseline_tracks_golden_model_at_every_level() {
    for (i, b) in scfi_opentitan::all().iter().enumerate() {
        for n in LEVELS {
            let r = redundancy(&b.fsm, n)
                .unwrap_or_else(|e| panic!("{} N={n}: redundancy failed: {e}", b.name));
            common::assert_redundancy_conformance(&r, STEPS, seed(i, n));
        }
    }
}

#[test]
fn scfi_hardened_netlist_tracks_golden_model_at_every_level() {
    for (i, b) in scfi_opentitan::all().iter().enumerate() {
        for n in LEVELS {
            let h = harden(&b.fsm, &ScfiConfig::new(n))
                .unwrap_or_else(|e| panic!("{} N={n}: harden failed: {e}", b.name));
            common::assert_scfi_conformance(&h, STEPS, seed(i, n));
        }
    }
}

/// Exhaustive over the paper's `t ∈ CFG` transition set: every edge of every
/// Table-1 FSM, preloaded and single-stepped, must land in its target state
/// without an alert — at the lightest and heaviest protection levels.
#[test]
fn scfi_every_cfg_edge_lands_in_its_target() {
    for b in scfi_opentitan::all() {
        for n in [2, 5] {
            let h = harden(&b.fsm, &ScfiConfig::new(n)).expect("harden");
            h.check_all_edges()
                .unwrap_or_else(|e| panic!("{} N={n}: {e}", b.name));
        }
    }
}

/// Level 1 (and 0) are rejected up front for both protected constructions:
/// a Hamming distance of 1 cannot detect even a single flip.
#[test]
fn protection_levels_below_two_are_rejected_for_every_fsm() {
    for b in scfi_opentitan::all() {
        for n in [0, 1] {
            assert!(
                matches!(
                    harden(&b.fsm, &ScfiConfig::new(n)),
                    Err(ScfiError::ProtectionLevelTooLow { requested }) if requested == n
                ),
                "{} N={n}: harden must reject sub-minimal protection levels",
                b.name
            );
            assert!(
                matches!(
                    redundancy(&b.fsm, n),
                    Err(ScfiError::ProtectionLevelTooLow { requested }) if requested == n
                ),
                "{} N={n}: redundancy must reject sub-minimal replica counts",
                b.name
            );
        }
    }
}

/// FT1 smoke check, directly on the simulator: flipping any single hardened
/// state-register bit makes the register word invalid (distance ≥ 2 from
/// every codeword), so the next clock edge must raise the alert and collapse
/// into the terminal ERROR state — never into a different valid state.
#[test]
fn single_bit_state_register_faults_collapse_to_error() {
    for b in scfi_opentitan::all() {
        for n in [2, 3] {
            let h = harden(&b.fsm, &ScfiConfig::new(n)).expect("harden");
            let n_sig = b.fsm.signals().len();
            let xe: Vec<bool> = h
                .encode_condition(b.fsm.reset_state(), &vec![false; n_sig])
                .iter()
                .collect();
            let n_ports = h.module().outputs().len();
            for (bit, &reg) in h.module().registers().iter().enumerate() {
                let mut sim = Simulator::new(h.module());
                sim.flip_register(reg);
                let out = sim.step(&xe);
                assert!(
                    out[n_ports - 2],
                    "{} N={n}: register bit {bit} flip did not raise the alert",
                    b.name
                );
                assert_eq!(
                    h.decode_registers(sim.register_values()),
                    StateDecode::Error,
                    "{} N={n}: register bit {bit} flip escaped the error logic",
                    b.name
                );
            }
        }
    }
}

/// The same FT1 claim for the redundancy baseline: any single replica
/// register flip desynchronizes the banks and must fire the mismatch alert.
#[test]
fn redundancy_register_faults_raise_the_mismatch_alert() {
    for b in scfi_opentitan::all() {
        let r = redundancy(&b.fsm, 2).expect("redundancy");
        let n_sig = b.fsm.signals().len();
        let xe: Vec<bool> = r
            .encode_condition(b.fsm.reset_state(), &vec![false; n_sig])
            .iter()
            .collect();
        for (bit, &reg) in r.module().registers().iter().enumerate() {
            let mut sim = Simulator::new(r.module());
            sim.flip_register(reg);
            let out = sim.step(&xe);
            assert!(
                out[out.len() - 1],
                "{}: replica register bit {bit} flip did not raise the mismatch alert",
                b.name
            );
        }
    }
}

/// SYNFI-style campaign smoke check (§6.4), restricted to the state-register
/// cells: every scenario (CFG edge) × every register fault (stored-bit flip
/// and register-output flip) must be detected — zero hijacks, zero masked.
#[test]
fn register_fault_campaign_detects_every_injection() {
    for b in scfi_opentitan::all() {
        let h = harden(&b.fsm, &ScfiConfig::new(2)).expect("harden");
        let regs = h.module().registers();
        let lo = regs.iter().map(|r| r.0).min().expect("registers");
        let hi = regs.iter().map(|r| r.0).max().expect("registers");
        let target = ScfiTarget::new(&h);
        let config = CampaignConfig::new()
            .with_register_flips()
            .region(lo..hi + 1);
        let report = run_exhaustive(&target, &config);
        assert_eq!(
            report.injections,
            h.cfg().edges().len() * 2 * regs.len(),
            "{}: campaign must cover every edge x every register fault",
            b.name
        );
        assert_eq!(
            report.hijacked, 0,
            "{}: register faults must never hijack control flow: {report}",
            b.name
        );
        assert_eq!(
            report.detected, report.injections,
            "{}: every register fault must be detected: {report}",
            b.name
        );
    }
}

/// Asserts that every campaign backend — the packed wave engine at every
/// lane width W ∈ {1, 2, 4} (64-, 128- and 256-lane waves), the fixed
/// 512-lane SIMD backend, and the scalar backend routed through the
/// backend trait — produces byte-identical `CampaignReport`s to the
/// scalar reference for the same campaign.
fn assert_engines_agree<T: FaultTarget>(target: &T, config: &CampaignConfig, what: &str) {
    let scalar = run_exhaustive_scalar(target, config);
    assert!(scalar.injections > 0, "{what}: empty campaign");
    for lane_words in [1, 2, 4] {
        let packed = run_exhaustive(target, &config.clone().lane_words(lane_words));
        assert_eq!(
            packed, scalar,
            "{what}: packed engine (W={lane_words}) diverged from the scalar reference\n  packed: {packed}\n  scalar: {scalar}"
        );
    }
    for backend in [Backend::Scalar, Backend::Simd] {
        let report = run_exhaustive(target, &config.clone().backend(backend));
        assert_eq!(
            report, scalar,
            "{what}: {backend} backend diverged from the scalar reference\n  {backend}: {report}\n  scalar: {scalar}"
        );
    }
}

/// Cross-engine campaign conformance over the paper's full evaluation
/// matrix: for every Table-1 FSM, every configuration of §6.1
/// (unprotected, redundancy, SCFI) and every protection level N ∈
/// {2, 3, 4}, the bit-parallel packed engine must reproduce the scalar
/// engine's `CampaignReport` aggregates exactly — the same exhaustive
/// gate-output flip campaign, injection for injection.
#[test]
fn packed_campaign_engine_matches_scalar_on_every_table1_fsm() {
    let config = CampaignConfig::new().with_register_flips();
    for b in scfi_opentitan::all() {
        let lowered = lower_unprotected(&b.fsm).expect("lowering");
        assert_engines_agree(
            &UnprotectedTarget::new(&b.fsm, &lowered),
            &config,
            &format!("{} unprotected", b.name),
        );
        for n in [2, 3, 4] {
            let r = redundancy(&b.fsm, n).expect("redundancy");
            assert_engines_agree(
                &RedundancyTarget::new(&r),
                &config,
                &format!("{} redundancy N={n}", b.name),
            );
            let h = harden(&b.fsm, &ScfiConfig::new(n)).expect("harden");
            assert_engines_agree(
                &ScfiTarget::new(&h),
                &config,
                &format!("{} SCFI N={n}", b.name),
            );
        }
    }
}

/// Multi-cycle security claim, over the paper's full FSM suite: a
/// single-bit state-register fault injected *mid-protocol* — transiently,
/// during one step of a multi-transition CFG walk — must never let the
/// walk complete undetected under SCFI. Every injection lands in Detected:
/// the corrupted word is non-codeword, so by the trajectory-fold semantics
/// the walk either alerts immediately or collapses to ERROR on a later
/// edge (never re-synchronizing silently), and a register flip is never
/// masked.
#[test]
fn mid_protocol_register_faults_never_complete_the_walk_undetected() {
    for b in scfi_opentitan::all() {
        let h = harden(&b.fsm, &ScfiConfig::new(2)).expect("harden");
        let regs = h.module().registers();
        let lo = regs.iter().map(|r| r.0).min().expect("registers");
        let hi = regs.iter().map(|r| r.0).max().expect("registers");
        let target = ScfiTarget::with_protocol(&h, 3, 0x90_07 + lo as u64);
        let config = CampaignConfig::new()
            .effects(vec![])
            .with_register_flips()
            .region(lo..hi + 1);
        let report = run_exhaustive(&target, &config);
        assert!(report.injections > 0, "{}: empty protocol campaign", b.name);
        assert_eq!(
            report.hijacked, 0,
            "{}: a mid-protocol register fault hijacked the walk: {report}",
            b.name
        );
        assert_eq!(
            report.detected, report.injections,
            "{}: every mid-protocol register fault must be detected: {report}",
            b.name
        );
    }
}

/// The acceptance scenario of the multi-cycle generalization: a protocol
/// campaign on the secure-boot-style FSM (the boot handshake the paper's
/// introduction motivates), run on the packed engine, with packed/scalar
/// differential agreement across all three §6.1 configurations.
#[test]
fn secure_boot_multicycle_campaign_agrees_across_engines() {
    let fsm = scfi_opentitan::secure_boot_fsm();
    let config = CampaignConfig::new().with_register_flips();
    let depth = 4;
    let seed = 0xB007_5EED;

    let lowered = lower_unprotected(&fsm).expect("lowering");
    let unprot = UnprotectedTarget::with_protocol(&fsm, &lowered, depth, seed);
    let unprot_report = run_exhaustive(&unprot, &config);
    assert_engines_agree(&unprot, &config, "secure_boot unprotected protocol");
    assert!(
        unprot_report.hijack_rate() > 0.05,
        "an unprotected boot flow must be glitchable: {unprot_report}"
    );

    let r = redundancy(&fsm, 2).expect("redundancy");
    let red = RedundancyTarget::with_protocol(&r, depth, seed);
    assert_engines_agree(&red, &config, "secure_boot redundancy protocol");

    let h = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
    let scfi = ScfiTarget::with_protocol(&h, depth, seed);
    let scfi_report = run_exhaustive(&scfi, &config);
    assert_engines_agree(&scfi, &config, "secure_boot SCFI protocol");
    assert!(
        scfi_report.hijack_rate() < unprot_report.hijack_rate() / 2.0,
        "SCFI must shrink the boot-glitch escape rate: SCFI {scfi_report} vs unprotected {unprot_report}"
    );
}

/// The shared register-fault space: transient flips on every register
/// output net plus stored-bit flips — the paper's FT1 attacker. Both the
/// campaign executors and the symbolic certifier enumerate it through
/// [`enumerate_faults`], so verdicts are site-for-site comparable.
fn register_fault_space(module: &Module) -> CampaignConfig {
    CampaignConfig::new().register_region(module)
}

/// Cross-checks the formal certifier against the exhaustive campaign on
/// one model/target pair, site by site:
///
/// * the campaign's scenario space (every CFG edge, preloaded with its
///   source codeword and driven by its condition codeword) is a subset of
///   the certified space (every reachable state × every admissible input
///   word), so a campaign hijack at a cell **must** show up as a
///   certification counterexample at that cell — equivalently, a cell the
///   certifier proves clean must have zero campaign hijacks;
/// * a cell the certifier proves `ProvenMasked` (never observable) must be
///   fully masked in the campaign;
/// * every counterexample witness must replay to a confirmed hijack on
///   the scalar simulator.
///
/// Returns the certification report for campaign-level assertions.
fn assert_certification_agrees<M: CertifyModel, T: FaultTarget>(
    model: &M,
    target: &T,
    config: &CampaignConfig,
    what: &str,
) -> scfi_symbolic::CertificationReport {
    let faults = enumerate_faults(model.module(), config);
    assert!(!faults.is_empty(), "{what}: empty fault space");
    let cert = Certifier::new(model).certify_all(&faults);
    let map = VulnerabilityMap::analyze(target, config);

    // Group certification verdicts by fault cell, mirroring the map's
    // per-cell attribution.
    let mut by_cell: std::collections::BTreeMap<u32, Vec<&Verdict>> =
        std::collections::BTreeMap::new();
    for site in &cert.sites {
        let cell = match site.fault.site {
            FaultSite::CellOutput(c) | FaultSite::Pin(c, _) | FaultSite::Register(c) => c.0,
        };
        by_cell.entry(cell).or_default().push(&site.verdict);
    }
    for (&cell, verdicts) in &by_cell {
        let stats = map
            .cell(scfi_netlist::CellId(cell))
            .unwrap_or_else(|| panic!("{what}: campaign has no stats for certified cell c{cell}"));
        let proven = verdicts.iter().all(|v| v.is_proven());
        if proven {
            assert_eq!(
                stats.hijacked, 0,
                "{what}: cell c{cell} is proven clean but the campaign hijacked through it"
            );
        }
        let all_masked = verdicts.iter().all(|v| matches!(v, Verdict::ProvenMasked));
        if all_masked {
            assert_eq!(
                stats.masked,
                stats.total(),
                "{what}: cell c{cell} is proven unobservable but the campaign observed it"
            );
        }
    }
    for (fault, witness) in cert.counterexample_sites() {
        assert!(
            witness.confirmed,
            "{what}: witness for {fault:?} did not replay to a confirmed hijack"
        );
    }
    cert
}

/// The tentpole cross-oracle matrix: for every Table-1 FSM, every §6.1
/// configuration and every protection level N ∈ {2, 3, 4}, the symbolic
/// certifier's per-site verdicts must agree with the exhaustive campaign
/// outcomes on the shared register-fault space — and the two protected
/// configurations must *prove* the paper's single-bit detection claim
/// (zero counterexamples over all reachable states and all admissible
/// input words), while the unprotected lowering must be refuted with
/// replay-confirmed witnesses.
#[test]
fn certification_agrees_with_exhaustive_campaigns_on_every_table1_fsm() {
    for b in scfi_opentitan::all() {
        let lowered = lower_unprotected(&b.fsm).expect("lowering");
        let config = register_fault_space(lowered.module());
        let target = UnprotectedTarget::new(&b.fsm, &lowered);
        let campaign = run_exhaustive(&target, &config);
        let cert = assert_certification_agrees(
            &lowered,
            &target,
            &config,
            &format!("{} unprotected", b.name),
        );
        assert!(
            cert.counterexamples() > 0,
            "{}: the unprotected lowering must be refutable: {cert}",
            b.name
        );
        assert!(
            campaign.hijacked > 0,
            "{}: the unprotected campaign must hijack: {campaign}",
            b.name
        );

        for n in [2, 3, 4] {
            let r = redundancy(&b.fsm, n).expect("redundancy");
            let config = register_fault_space(r.module());
            let cert = assert_certification_agrees(
                &r,
                &RedundancyTarget::new(&r),
                &config,
                &format!("{} redundancy N={n}", b.name),
            );
            assert!(cert.all_proven(), "{} redundancy N={n}: {cert}", b.name);

            let h = harden(&b.fsm, &ScfiConfig::new(n)).expect("harden");
            let config = register_fault_space(h.module());
            let target = ScfiTarget::new(&h);
            let campaign = run_exhaustive(&target, &config);
            let cert = assert_certification_agrees(
                &h,
                &target,
                &config,
                &format!("{} SCFI N={n}", b.name),
            );
            // The §3/§5 guarantee, *proved*: zero counterexamples, and
            // every register fault observable (hence ProvenDetected).
            assert!(cert.all_proven(), "{} SCFI N={n}: {cert}", b.name);
            assert_eq!(
                cert.proven_detected(),
                cert.sites.len(),
                "{} SCFI N={n}: register faults are never maskable: {cert}",
                b.name
            );
            // The sampled campaign agrees on its subset of the space.
            assert_eq!(campaign.hijacked, 0, "{} SCFI N={n}: {campaign}", b.name);
            assert_eq!(
                campaign.detected, campaign.injections,
                "{} SCFI N={n}: {campaign}",
                b.name
            );
            // The certified universe is the codewords plus ERROR.
            assert_eq!(
                cert.reachable_states,
                b.fsm.state_count() as u64 + 1,
                "{} SCFI N={n}: unexpected reachable set",
                b.name
            );
        }
    }
}

/// Graceful degradation of the cross-oracle: when the certifier's budget
/// is exhausted, every undecided site reports [`Verdict::Unknown`] — never
/// a fabricated proof — and the harness falls back to exhaustive campaign
/// sampling for exactly those sites. The sampled verdict (zero hijacks on
/// an SCFI-hardened register space) stands in for the missing proof, with
/// the weaker "sampled, not proved" status made explicit by `unknown()`.
#[test]
fn budget_exhausted_certification_falls_back_to_campaign_sampling() {
    let b = scfi_opentitan::by_name("otbn_controller").expect("suite entry");
    let h = harden(&b.fsm, &ScfiConfig::new(2)).expect("harden");
    let config = register_fault_space(h.module());
    let faults = enumerate_faults(h.module(), &config);

    // A node budget far too small for even the base symbolic step: setup
    // overflows and the report degrades to all-Unknown.
    let report = match Certifier::with_budget(&h, CertifyBudget::unlimited().max_nodes(16)) {
        Ok(mut c) => c.certify_all(&faults),
        Err(overflow) => Certifier::degraded_report(&h, &faults, overflow),
    };
    assert_eq!(report.unknown(), report.sites.len(), "{report}");
    assert!(
        !report.all_proven(),
        "Unknown must never strengthen the guarantee: {report}"
    );
    assert_eq!(report.counterexamples(), 0, "{report}");

    // Fallback oracle: exhaustive campaign outcomes, per undecided site.
    let target = ScfiTarget::new(&h);
    let map = VulnerabilityMap::analyze(&target, &config);
    for site in &report.sites {
        let Verdict::Unknown { reason } = &site.verdict else {
            continue;
        };
        assert!(
            reason.contains("node budget"),
            "the Unknown reason must name the exhausted resource: {reason}"
        );
        let cell = match site.fault.site {
            FaultSite::CellOutput(c) | FaultSite::Pin(c, _) | FaultSite::Register(c) => c,
        };
        let stats = map
            .cell(cell)
            .expect("the campaign fault space covers every certified site");
        assert_eq!(
            stats.hijacked, 0,
            "sampled fallback for undecided cell c{} found a hijack",
            cell.0
        );
    }
}

/// The *joint* form of the paper's §3 claim, proved over the whole suite:
/// with protection level N, no combination of up to N − 1 simultaneous
/// register-space faults — each site guarded by its own BDD selector
/// variable under a cardinality constraint — silently hijacks any
/// reachable transition. Per-site certification (above) shows each fault
/// alone is caught; this shows the *conjunction* attack the temporal
/// attacker actually mounts is caught too. The unprotected lowering is
/// refuted with a fewest-care witness whose active set replays to a
/// concrete hijack on the scalar simulator.
#[test]
fn joint_certification_proves_the_n_minus_one_claim_on_every_table1_fsm() {
    use scfi_symbolic::JointVerdict;
    for b in scfi_opentitan::all() {
        for n in [2usize, 3] {
            let h = harden(&b.fsm, &ScfiConfig::new(n)).expect("harden");
            let faults = enumerate_faults(h.module(), &register_fault_space(h.module()));
            let report = Certifier::new(&h).certify_joint(&faults, n - 1);
            assert!(
                matches!(report.verdict, JointVerdict::Proved),
                "{} SCFI N={n}: the joint ≤N−1 claim must be proved: {report}",
                b.name
            );
        }

        let lowered = lower_unprotected(&b.fsm).expect("lowering");
        let faults = enumerate_faults(lowered.module(), &register_fault_space(lowered.module()));
        let report = Certifier::new(&lowered).certify_joint(&faults, 1);
        match &report.verdict {
            JointVerdict::Counterexample(w) => {
                assert_eq!(w.active.len(), 1, "{}: minimal witness", b.name);
                assert!(
                    w.confirmed,
                    "{}: the joint witness must replay to a concrete hijack",
                    b.name
                );
            }
            other => panic!(
                "{}: unprotected must be jointly refutable, got {other:?}",
                b.name
            ),
        }
    }
}

/// The temporal attacker's campaign — multi-fault draws where every fault
/// carries its *own* sampled arming window over adversarially fuzzed
/// protocol walks — must produce byte-identical reports on every backend,
/// wave width and thread count. This pins the per-fault `FaultSchedule`
/// lowering and the word-parallel multi-window classification against the
/// scalar reference across all three §6.1 configurations.
#[test]
fn multiwindow_fuzzed_campaigns_agree_across_engines_and_threads() {
    use scfi_faultsim::{run_multi_fault, run_multi_fault_scalar};
    let fsm = scfi_opentitan::secure_boot_fsm();
    let depth = 3;
    let seed = 0x7E4A_0001;
    let (m, runs) = (3, 400);

    let lowered = lower_unprotected(&fsm).expect("lowering");
    let unprot = UnprotectedTarget::with_fuzzed_protocol(&fsm, &lowered, depth, seed);
    let r = redundancy(&fsm, 2).expect("redundancy");
    let red = RedundancyTarget::with_fuzzed_protocol(&r, depth, seed);
    let h = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
    let scfi = ScfiTarget::with_fuzzed_protocol(&h, depth, seed);

    fn check<T: FaultTarget>(target: &T, m: usize, runs: usize, what: &str) {
        let base = CampaignConfig::new()
            .with_register_flips()
            .with_fault_windows();
        let scalar = run_multi_fault_scalar(target, m, runs, &base);
        assert!(scalar.injections > 0, "{what}: empty campaign");
        for lane_words in [1, 2, 4] {
            for threads in [1, 3] {
                let config = base.clone().lane_words(lane_words).threads(threads);
                let packed = run_multi_fault(target, m, runs, &config);
                assert_eq!(
                    packed, scalar,
                    "{what}: packed W={lane_words} threads={threads} diverged from scalar"
                );
            }
        }
        for backend in [Backend::Scalar, Backend::Simd] {
            let report = run_multi_fault(target, m, runs, &base.clone().backend(backend));
            assert_eq!(report, scalar, "{what}: {backend} diverged from scalar");
        }
    }
    check(
        &unprot,
        m,
        runs,
        "secure_boot unprotected fuzzed multi-window",
    );
    check(&red, m, runs, "secure_boot redundancy fuzzed multi-window");
    check(&scfi, m, runs, "secure_boot SCFI fuzzed multi-window");
}

/// Whole-module single-fault campaign on the smallest Table-1 FSM: the
/// accounting must balance and the escape rate must stay in the sub-percent
/// regime the paper reports (0.42 % in §6.4).
#[test]
fn whole_module_campaign_accounting_balances() {
    let b = scfi_opentitan::by_name("otbn_controller").expect("suite entry");
    let h = harden(&b.fsm, &ScfiConfig::new(2)).expect("harden");
    let target = ScfiTarget::new(&h);
    let report = run_exhaustive(
        &target,
        &CampaignConfig::new().with_register_flips().threads(4),
    );
    assert!(report.injections > 1000, "campaign too small: {report}");
    assert_eq!(
        report.injections,
        report.masked + report.detected + report.hijacked,
        "outcome accounting must balance: {report}"
    );
    assert!(
        report.hijack_rate() < 0.05,
        "escape rate {:.4} out of the expected regime: {report}",
        report.hijack_rate()
    );
}
