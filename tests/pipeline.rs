//! End-to-end integration: DSL → hardening → gate-level simulation →
//! technology mapping → fault injection, across protection levels.

use scfi_repro::core::{harden, redundancy, PadPolicy, ScfiConfig, StateDecode};
use scfi_repro::faultsim::{
    run_exhaustive, CampaignConfig, FaultEffect, RedundancyTarget, ScfiTarget,
};
use scfi_repro::fsm::{lower_unprotected, parse_fsm, Fsm, FsmSimulator};
use scfi_repro::netlist::{ModuleStats, Simulator};
use scfi_repro::stdcell::Library;

fn elevator() -> Fsm {
    parse_fsm(
        "fsm elevator {
           inputs call_up, call_down, at_floor, door_closed, estop;
           outputs moving, door_open;
           reset IDLE;
           state IDLE    { if estop -> HALT; if call_up && door_closed -> UP; if call_down && door_closed -> DOWN; }
           state UP      { out moving; if estop -> HALT; if at_floor -> ARRIVE; }
           state DOWN    { out moving; if estop -> HALT; if at_floor -> ARRIVE; }
           state ARRIVE  { out door_open; if door_closed -> IDLE; if estop -> HALT; }
           state HALT    { goto HALT; }
         }",
    )
    .expect("valid DSL")
}

#[test]
fn full_pipeline_all_protection_levels() {
    let fsm = elevator();
    let lib = Library::nangate45_like();
    for n in [2usize, 3, 4] {
        let hardened = harden(&fsm, &ScfiConfig::new(n)).expect("harden");
        hardened.check_all_edges().expect("edges");
        hardened.check_equivalence(300, 17).expect("random walk");
        let mapped = lib.map(hardened.module());
        assert!(mapped.area_ge() > 50.0, "N={n}");
        assert!(mapped.min_period_ps() > 0.0);
        // Encoded distances grow with N.
        assert!(hardened.state_code().actual_min_distance() >= n);
        assert!(hardened.cond_code().actual_min_distance() >= n);
        assert!(hardened.state_code().min_weight() >= n);
    }
}

#[test]
fn hardened_area_grows_sublinearly_vs_redundancy() {
    let fsm = elevator();
    let lib = Library::nangate45_like();
    let scfi2 = lib
        .map(harden(&fsm, &ScfiConfig::new(2)).expect("harden").module())
        .area_ge();
    let scfi4 = lib
        .map(harden(&fsm, &ScfiConfig::new(4)).expect("harden").module())
        .area_ge();
    let red2 = lib
        .map(redundancy(&fsm, 2).expect("red").module())
        .area_ge();
    let red4 = lib
        .map(redundancy(&fsm, 4).expect("red").module())
        .area_ge();
    // SCFI's increment from N=2 to N=4 must be flatter than redundancy's —
    // the paper's scalability claim.
    let scfi_growth = scfi4 / scfi2;
    let red_growth = red4 / red2;
    assert!(
        scfi_growth < red_growth,
        "scfi {scfi2:.0}->{scfi4:.0} vs red {red2:.0}->{red4:.0}"
    );
}

#[test]
fn behavioral_gate_level_and_hardened_agree_on_long_runs() {
    let fsm = elevator();
    let lowered = lower_unprotected(&fsm).expect("lower");
    let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");

    let mut gold = FsmSimulator::new(&fsm);
    let mut plain = Simulator::new(lowered.module());
    let mut prot = Simulator::new(hardened.module());

    let mut seed = 0xC0FFEEu64;
    for cycle in 0..1000 {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        let bits = seed.wrapping_mul(0x2545F4914F6CDD1D);
        let raw: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 == 1).collect();

        let xe: Vec<bool> = hardened
            .encode_condition(gold.state(), &raw)
            .iter()
            .collect();
        let expect = gold.step(&raw);
        plain.step(&raw);
        prot.step(&xe);

        assert_eq!(
            lowered.decode_registers(plain.register_values()),
            Some(expect),
            "plain lowering diverged at cycle {cycle}"
        );
        assert_eq!(
            hardened.decode_registers(prot.register_values()),
            StateDecode::State(expect),
            "hardened netlist diverged at cycle {cycle}"
        );
    }
}

#[test]
fn campaigns_rank_the_three_configurations() {
    let fsm = elevator();
    let hardened = harden(&fsm, &ScfiConfig::new(3)).expect("harden");
    let red = redundancy(&fsm, 3).expect("red");

    let config = CampaignConfig::new()
        .effects(vec![FaultEffect::Flip])
        .threads(2);
    let scfi_report = run_exhaustive(&ScfiTarget::new(&hardened), &config);
    let red_report = run_exhaustive(&RedundancyTarget::new(&red), &config);

    // Both protections keep single-fault escapes rare; coverage among
    // effective faults stays high.
    assert!(scfi_report.hijack_rate() < 0.02, "{scfi_report}");
    assert!(red_report.hijack_rate() < 0.02, "{red_report}");
    assert!(scfi_report.coverage() > 0.9);
    assert!(red_report.coverage() > 0.9);
}

#[test]
fn pad_policies_produce_equivalent_behavior() {
    let fsm = elevator();
    for policy in [PadPolicy::Zero, PadPolicy::Replicate] {
        let hardened = harden(&fsm, &ScfiConfig::new(2).pad(policy)).expect("harden");
        hardened.check_all_edges().expect("edges");
        hardened.check_equivalence(200, 3).expect("walk");
    }
    // Replicate keeps the full matrix: strictly more diffusion cells.
    let zero = harden(&fsm, &ScfiConfig::new(2).pad(PadPolicy::Zero)).expect("harden");
    let repl = harden(&fsm, &ScfiConfig::new(2).pad(PadPolicy::Replicate)).expect("harden");
    assert!(repl.regions().diffusion.len() > zero.regions().diffusion.len());
}

#[test]
fn verilog_and_dot_exports_are_complete() {
    let fsm = elevator();
    let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
    let verilog = hardened.module().to_verilog();
    assert!(verilog.contains("module elevator_scfi"));
    assert!(verilog.contains("endmodule"));
    // Every flip-flop appears as a reg.
    let regs = hardened.module().registers().len();
    assert_eq!(verilog.matches("always @(posedge clk)").count(), regs);
    let dot = hardened.module().to_dot();
    assert!(dot.contains("digraph"));
}

#[test]
fn stats_reflect_structure() {
    let fsm = elevator();
    let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
    let stats = ModuleStats::of(hardened.module());
    assert_eq!(stats.register_count(), hardened.state_code().width());
    assert!(stats.count("xor") > 10, "diffusion layer must be present");
    assert!(stats.depth() >= 5);
}
