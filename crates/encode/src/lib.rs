//! Hamming-distance-N codebook construction for SCFI's encoded states and
//! control signals.
//!
//! SCFI requires (paper §4, R1/R2) that all control signals and all FSM
//! states are encoded such that turning any valid codeword into another
//! valid codeword costs an attacker at least `N` bit flips — i.e. the
//! codebook has minimum pairwise Hamming distance `N`.
//!
//! Additionally, this reproduction reserves the **all-zero word** as the
//! terminal ERROR encoding (the error-masking AND layer forces the next
//! state to zero on any detected fault), so operational codewords must also
//! keep distance `N` from zero — equivalently, have Hamming weight ≥ N.
//! [`CodeSpec::min_weight`] defaults accordingly.
//!
//! The construction is a classic greedy *lexicode*: scan words in numeric
//! order and keep every word that respects the distance/weight constraints
//! against all previously kept words. [`CodeSpec::build`] searches the
//! smallest width for which the lexicode yields enough codewords.
//!
//! # Example
//!
//! ```
//! use scfi_encode::CodeSpec;
//!
//! // 5 states, protection level N = 3.
//! let code = CodeSpec::new(5, 3).build()?;
//! assert!(code.width() >= 5);
//! assert!(code.verify());
//! for i in 0..5 {
//!     assert_eq!(code.decode(code.word(i)), Some(i));
//! }
//! # Ok::<(), scfi_encode::CodeError>(())
//! ```

use std::fmt;

use scfi_gf2::BitVec;

/// Errors from codebook construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodeError {
    /// No code with the requested parameters was found up to
    /// [`CodeSpec::max_width`].
    WidthExhausted {
        /// Number of codewords requested.
        count: usize,
        /// Required minimum distance.
        min_distance: usize,
        /// Largest width tried.
        max_width: usize,
    },
    /// A requested parameter is degenerate (zero codewords or distance).
    InvalidSpec(&'static str),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::WidthExhausted {
                count,
                min_distance,
                max_width,
            } => write!(
                f,
                "no {count}-word code with distance {min_distance} found up to width {max_width}"
            ),
            CodeError::InvalidSpec(what) => write!(f, "invalid code spec: {what}"),
        }
    }
}

impl std::error::Error for CodeError {}

/// Parameters for building a [`Codebook`].
///
/// `count` codewords with pairwise Hamming distance ≥ `min_distance` and
/// per-word Hamming weight in `min_weight ..= max_weight`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeSpec {
    count: usize,
    min_distance: usize,
    min_weight: usize,
    max_weight: Option<usize>,
    fixed_width: Option<usize>,
    max_width: usize,
}

impl CodeSpec {
    /// Spec for `count` codewords at protection level `min_distance`,
    /// with the SCFI default weight floor (`min_weight = min_distance`,
    /// keeping every word N flips away from the all-zero ERROR encoding).
    pub fn new(count: usize, min_distance: usize) -> Self {
        CodeSpec {
            count,
            min_distance,
            min_weight: min_distance,
            max_weight: None,
            fixed_width: None,
            max_width: 48,
        }
    }

    /// Overrides the minimum Hamming weight (0 disables the floor and
    /// permits the all-zero codeword).
    pub fn min_weight(mut self, w: usize) -> Self {
        self.min_weight = w;
        self
    }

    /// Caps the Hamming weight — OpenTitan-style *sparse* encodings bound
    /// both sides so single-direction biases (e.g. laser-induced set-only
    /// faults) cannot reach another codeword.
    pub fn max_weight(mut self, w: usize) -> Self {
        self.max_weight = Some(w);
        self
    }

    /// Forces an exact width instead of searching for the smallest.
    pub fn width(mut self, w: usize) -> Self {
        self.fixed_width = Some(w);
        self
    }

    /// Caps the width search (default 48).
    pub fn max_width(mut self, w: usize) -> Self {
        self.max_width = w;
        self
    }

    /// Builds the codebook.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidSpec`] for zero counts/distances, or
    /// [`CodeError::WidthExhausted`] if no width up to the cap admits the
    /// requested code.
    pub fn build(&self) -> Result<Codebook, CodeError> {
        if self.count == 0 {
            return Err(CodeError::InvalidSpec("count must be at least 1"));
        }
        if self.min_distance == 0 {
            return Err(CodeError::InvalidSpec("distance must be at least 1"));
        }
        if let Some(maxw) = self.max_weight {
            if maxw < self.min_weight {
                return Err(CodeError::InvalidSpec("max_weight below min_weight"));
            }
        }
        let lower = lower_bound_width(self.count, self.min_distance).max(self.min_weight);
        let widths: Vec<usize> = match self.fixed_width {
            Some(w) => vec![w],
            None => (lower..=self.max_width).collect(),
        };
        for width in widths {
            if let Some(words) = lexicode(
                self.count,
                width,
                self.min_distance,
                self.min_weight,
                self.max_weight,
            ) {
                return Ok(Codebook {
                    width,
                    min_distance: self.min_distance,
                    words,
                });
            }
        }
        Err(CodeError::WidthExhausted {
            count: self.count,
            min_distance: self.min_distance,
            max_width: self.fixed_width.unwrap_or(self.max_width),
        })
    }
}

/// A minimal lower bound for the search start: information-theoretic
/// (`⌈log₂ count⌉`) and Singleton (`d − 1` extra bits beyond a distinct
/// symbol).
fn lower_bound_width(count: usize, d: usize) -> usize {
    let info = usize::BITS as usize - (count - 1).leading_zeros() as usize;
    let info = if count == 1 { 1 } else { info };
    info + d - 1
}

/// Greedy lexicode: returns `count` words of `width` bits with pairwise
/// distance ≥ `d` and weight within bounds, or `None` if the space is
/// exhausted first.
fn lexicode(
    count: usize,
    width: usize,
    d: usize,
    min_weight: usize,
    max_weight: Option<usize>,
) -> Option<Vec<BitVec>> {
    if width > 48 {
        return None; // enumeration guard: 2^48 is already generous
    }
    let mut words: Vec<BitVec> = Vec::with_capacity(count);
    let limit: u64 = 1u64 << width;
    for value in 0..limit {
        let w = value.count_ones() as usize;
        if w < min_weight {
            continue;
        }
        if let Some(maxw) = max_weight {
            if w > maxw {
                continue;
            }
        }
        let cand = BitVec::from_u64(value, width);
        if words.iter().all(|x| x.hamming_distance(&cand) >= d) {
            words.push(cand);
            if words.len() == count {
                return Some(words);
            }
        }
    }
    None
}

/// A verified set of codewords with a minimum pairwise Hamming distance.
///
/// Index `i` encodes symbol `i`; see [`CodeSpec`] for construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Codebook {
    width: usize,
    min_distance: usize,
    words: Vec<BitVec>,
}

impl Codebook {
    /// Codeword width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Guaranteed minimum pairwise distance.
    pub fn min_distance(&self) -> usize {
        self.min_distance
    }

    /// Number of codewords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the codebook is empty (never produced by
    /// [`CodeSpec::build`]).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The codeword for symbol `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn word(&self, index: usize) -> &BitVec {
        &self.words[index]
    }

    /// All codewords in symbol order.
    pub fn words(&self) -> &[BitVec] {
        &self.words
    }

    /// Exact decode: the symbol whose codeword equals `word`, if any.
    pub fn decode(&self, word: &BitVec) -> Option<usize> {
        self.words.iter().position(|w| w == word)
    }

    /// Nearest-codeword decode: the symbol minimizing Hamming distance,
    /// with the distance. Ties resolve to the lowest index.
    pub fn decode_nearest(&self, word: &BitVec) -> (usize, usize) {
        let mut best = (0usize, usize::MAX);
        for (i, w) in self.words.iter().enumerate() {
            let dist = w.hamming_distance(word);
            if dist < best.1 {
                best = (i, dist);
            }
        }
        best
    }

    /// The smallest pairwise distance actually present (≥
    /// [`Codebook::min_distance`] for a verified book).
    pub fn actual_min_distance(&self) -> usize {
        let mut best = usize::MAX;
        for i in 0..self.words.len() {
            for j in i + 1..self.words.len() {
                best = best.min(self.words[i].hamming_distance(&self.words[j]));
            }
        }
        best
    }

    /// Re-verifies the distance guarantee (pairwise plus — when every word
    /// has weight ≥ distance — separation from the all-zero ERROR word).
    pub fn verify(&self) -> bool {
        self.words.len() <= 1 || self.actual_min_distance() >= self.min_distance
    }

    /// The smallest Hamming weight among codewords — the cost of reaching
    /// the all-zero ERROR word by faults.
    pub fn min_weight(&self) -> usize {
        self.words.iter().map(BitVec::count_ones).min().unwrap_or(0)
    }
}

impl fmt::Display for Codebook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Codebook({} words x {} bits, d >= {})",
            self.words.len(),
            self.width,
            self.min_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minimal_distance_one() {
        // d=1, weight floor 1 → just distinct nonzero words.
        let code = CodeSpec::new(3, 1).build().unwrap();
        assert!(code.verify());
        assert_eq!(code.len(), 3);
        assert!(code.min_weight() >= 1);
    }

    #[test]
    fn distance_two_and_three() {
        for d in 2..=4 {
            let code = CodeSpec::new(8, d).build().unwrap();
            assert!(code.verify(), "d={d}");
            assert!(code.actual_min_distance() >= d);
            assert!(code.min_weight() >= d, "all words must be d away from 0");
        }
    }

    #[test]
    fn width_is_reasonably_small() {
        // 8 codewords at d=2 fit in a parity-extended 4-bit space → ≤ 5
        // bits once the zero word is excluded it may take one more.
        let code = CodeSpec::new(8, 2).build().unwrap();
        assert!(code.width() <= 6, "got width {}", code.width());
        // d=4, 16 words: extended Hamming-like, lexicode finds ≤ 9 bits.
        let code = CodeSpec::new(16, 4).build().unwrap();
        assert!(code.width() <= 10, "got width {}", code.width());
    }

    #[test]
    fn decode_round_trip_and_nearest() {
        let code = CodeSpec::new(6, 3).build().unwrap();
        for i in 0..6 {
            assert_eq!(code.decode(code.word(i)), Some(i));
            let (sym, dist) = code.decode_nearest(code.word(i));
            assert_eq!((sym, dist), (i, 0));
        }
        // A single bit flip decodes nearest to the original at d >= 3.
        let mut flipped = code.word(2).clone();
        flipped.set(0, !flipped.get(0));
        assert_eq!(code.decode(&flipped), None);
        assert_eq!(code.decode_nearest(&flipped), (2, 1));
    }

    #[test]
    fn zero_word_is_excluded_by_default() {
        let code = CodeSpec::new(10, 2).build().unwrap();
        let zero = BitVec::zeros(code.width());
        assert_eq!(code.decode(&zero), None);
        assert!(code.min_weight() >= 2);
    }

    #[test]
    fn zero_word_allowed_when_floor_disabled() {
        let code = CodeSpec::new(4, 2).min_weight(0).build().unwrap();
        assert_eq!(code.decode(&BitVec::zeros(code.width())), Some(0));
    }

    #[test]
    fn sparse_weight_window() {
        let code = CodeSpec::new(5, 2)
            .min_weight(3)
            .max_weight(5)
            .build()
            .unwrap();
        for w in code.words() {
            let ones = w.count_ones();
            assert!((3..=5).contains(&ones), "weight {ones} outside window");
        }
        assert!(code.verify());
    }

    #[test]
    fn fixed_width_too_small_fails() {
        let err = CodeSpec::new(16, 4).width(5).build().unwrap_err();
        assert!(matches!(err, CodeError::WidthExhausted { .. }));
        assert!(err.to_string().contains("width 5"));
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(matches!(
            CodeSpec::new(0, 2).build(),
            Err(CodeError::InvalidSpec(_))
        ));
        assert!(matches!(
            CodeSpec::new(4, 0).build(),
            Err(CodeError::InvalidSpec(_))
        ));
        assert!(matches!(
            CodeSpec::new(4, 2).min_weight(5).max_weight(4).build(),
            Err(CodeError::InvalidSpec(_))
        ));
    }

    #[test]
    fn single_word_code() {
        let code = CodeSpec::new(1, 4).build().unwrap();
        assert_eq!(code.len(), 1);
        assert!(code.verify());
        assert!(code.word(0).count_ones() >= 4);
    }

    #[test]
    fn scfi_table1_like_scales() {
        // The kinds of FSMs Table 1 protects: up to ~30 states, N up to 4.
        for (states, n) in [(13, 2), (13, 3), (13, 4), (30, 2), (30, 4), (11, 3)] {
            let code = CodeSpec::new(states, n).build().unwrap();
            assert!(code.verify(), "{states} states at N={n}");
            assert!(
                code.width() <= 16,
                "{states}@{n} took {} bits",
                code.width()
            );
        }
    }

    #[test]
    fn display_mentions_parameters() {
        let code = CodeSpec::new(3, 2).build().unwrap();
        let s = code.to_string();
        assert!(s.contains("3 words"));
        assert!(s.contains("d >= 2"));
    }

    #[test]
    fn lower_bound_width_sane() {
        assert_eq!(lower_bound_width(2, 1), 1);
        assert_eq!(lower_bound_width(2, 2), 2);
        assert_eq!(lower_bound_width(16, 1), 4);
        assert_eq!(lower_bound_width(1, 3), 3);
    }
}
