//! Property-based tests for codebook construction.

use proptest::prelude::*;
use scfi_encode::CodeSpec;
use scfi_gf2::BitVec;

proptest! {
    /// Every buildable spec yields a verified book with the requested
    /// count, distance, and weight floor.
    #[test]
    fn built_codebooks_verify(count in 1usize..20, d in 1usize..5) {
        let code = CodeSpec::new(count, d).build().expect("buildable in 48 bits");
        prop_assert_eq!(code.len(), count);
        prop_assert!(code.verify());
        prop_assert!(code.actual_min_distance() >= d || count == 1);
        prop_assert!(code.min_weight() >= d);
    }

    /// Decoding is exact and nearest-decoding corrects single-bit errors
    /// whenever the distance is at least 3.
    #[test]
    fn nearest_decode_corrects_one_flip(count in 2usize..12, flip in any::<proptest::sample::Index>()) {
        let code = CodeSpec::new(count, 3).build().expect("buildable");
        for i in 0..count {
            let mut w = code.word(i).clone();
            let pos = flip.index(w.len());
            w.set(pos, !w.get(pos));
            let (sym, dist) = code.decode_nearest(&w);
            prop_assert_eq!(sym, i);
            prop_assert_eq!(dist, 1);
            prop_assert_eq!(code.decode(&w), None);
        }
    }

    /// Weight windows are honored.
    #[test]
    fn sparse_windows_hold(count in 1usize..8, lo in 2usize..4) {
        let hi = lo + 2;
        if let Ok(code) = CodeSpec::new(count, 2).min_weight(lo).max_weight(hi).build() {
            for w in code.words() {
                let ones = w.count_ones();
                prop_assert!(ones >= lo && ones <= hi);
            }
        }
    }

    /// The all-zero word is never a codeword under the default floor, so
    /// the terminal ERROR encoding is always N flips away.
    #[test]
    fn zero_word_always_excluded(count in 1usize..16, d in 2usize..5) {
        let code = CodeSpec::new(count, d).build().expect("buildable");
        prop_assert_eq!(code.decode(&BitVec::zeros(code.width())), None);
    }

    /// Forcing the found width reproduces an equivalent codebook.
    #[test]
    fn fixed_width_reproduces(count in 2usize..10, d in 2usize..4) {
        let free = CodeSpec::new(count, d).build().expect("buildable");
        let fixed = CodeSpec::new(count, d)
            .width(free.width())
            .build()
            .expect("same width must work");
        prop_assert_eq!(free.words(), fixed.words());
    }
}
