//! The SCFI hardening pass (paper §5, Fig. 7).

use std::fmt;

use scfi_encode::{CodeSpec, Codebook};
use scfi_fsm::{Cfg, Fsm, StateId};
use scfi_gf2::BitVec;
use scfi_mds::{MdsMatrix, MdsSpec, OutputSource};
use scfi_netlist::{Module, ModuleBuilder, ModuleStats, NetId};

use crate::{MixLayout, ScfiConfig, ScfiError};

/// Interpretation of a raw hardened-state register word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateDecode {
    /// A valid operational state.
    State(StateId),
    /// The terminal all-zero ERROR state.
    Error,
    /// Neither a state codeword nor the ERROR word — a transient corruption
    /// that the next clock edge will collapse into ERROR.
    Invalid,
}

/// Cell-index ranges of the φ_FH stages inside the emitted netlist
/// (half-open ranges over [`scfi_netlist::CellId`] indices, in emission
/// order).
///
/// The SYNFI-style fault analysis (§6.4) targets these regions — e.g.
/// "injected 7644 single bit-flips exhaustively into all available gates
/// in the MDS matrix multiplication" targets [`HardenRegions::diffusion`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HardenRegions {
    /// Step 1 (Fig. 7): state and condition comparators (all selector
    /// rails).
    pub pattern_match: std::ops::Range<u32>,
    /// Step 2: the one-hot modifier-selection AND–OR plane.
    pub modifier_select: std::ops::Range<u32>,
    /// Steps 3–5: the mix wiring and MDS XOR networks.
    pub diffusion: std::ops::Range<u32>,
    /// Step 6: error reduction, infective AND, ERROR hold, alert.
    pub error_logic: std::ops::Range<u32>,
    /// The §7 output-protection checker (empty unless
    /// [`ScfiConfig::protect_outputs`] is enabled).
    pub output_check: std::ops::Range<u32>,
}

/// Synthesis-time report of a hardening run.
#[derive(Clone, Debug)]
pub struct HardenReport {
    /// States in the source FSM.
    pub n_states: usize,
    /// CFG edges (explicit + implicit stays) — each got a modifier.
    pub n_edges: usize,
    /// Encoded state width `|S_Ne|`.
    pub state_width: usize,
    /// Encoded control width `|X_e|`.
    pub control_width: usize,
    /// Total modifier width.
    pub mod_width: usize,
    /// MDS instances `k`.
    pub instances: usize,
    /// Error bits per instance.
    pub error_bits: usize,
    /// XOR gates in the diffusion layer (after lowering, before netlist
    /// constant folding).
    pub diffusion_xors: usize,
    /// Netlist statistics of the emitted module.
    pub stats: ModuleStats,
}

impl fmt::Display for HardenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SCFI: {} states, {} edges -> se={} xe={} mod={} bits, k={} x (32-bit MDS, {} err bits)",
            self.n_states,
            self.n_edges,
            self.state_width,
            self.control_width,
            self.mod_width,
            self.instances,
            self.error_bits
        )?;
        write!(f, "{}", self.stats)
    }
}

/// An FSM hardened by the SCFI pass: the protected netlist plus everything
/// needed to drive, decode and analyze it.
///
/// Interface of the emitted module:
///
/// * inputs — `xe[0..]`: the encoded control word (HD ≥ N between valid
///   condition codewords; the paper assumes the driving modules provide
///   this encoding, §5),
/// * outputs — `state_e[0..]` (the encoded state register), one port per
///   Moore output, `alert` (current state is neither a valid codeword nor
///   ERROR — the Fig. 4 `default:` arm), and `in_error` (the FSM is in the
///   terminal ERROR state).
#[derive(Debug)]
pub struct HardenedFsm {
    fsm: Fsm,
    cfg: Cfg,
    config: ScfiConfig,
    mds: MdsMatrix,
    state_code: Codebook,
    cond_code: Codebook,
    layout: MixLayout,
    modifiers: Vec<BitVec>,
    module: Module,
    regions: HardenRegions,
    report: HardenReport,
}

/// Runs the SCFI pass on `fsm` (paper Fig. 7: pattern matching → modifier
/// selection → mix → diffusion → unmix → error AND).
///
/// # Errors
///
/// Fails if the protection level is below 2, a codebook cannot be
/// constructed, or no invertible modifier placement exists (see
/// [`ScfiError`]).
///
/// # Example
///
/// ```
/// use scfi_core::{harden, ScfiConfig};
/// use scfi_fsm::parse_fsm;
///
/// let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
/// let h = harden(&fsm, &ScfiConfig::new(2))?;
/// assert_eq!(h.report().n_edges, 3); // P→Q, P stay, Q→P
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn harden(fsm: &Fsm, config: &ScfiConfig) -> Result<HardenedFsm, ScfiError> {
    let n = config.protection_level();
    if n < 2 {
        return Err(ScfiError::ProtectionLevelTooLow { requested: n });
    }
    let cfg = fsm.cfg();
    let state_code = CodeSpec::new(fsm.state_count(), n).build()?;
    let cond_code = CodeSpec::new(cfg.max_out_degree(), n).build()?;
    let spec = if config.is_adaptive_mds() {
        adapt_mds_spec(
            state_code.width(),
            cond_code.width(),
            config.error_bits_per_instance(),
        )
    } else {
        config.mds_spec()
    };
    let mds = spec.build();
    let layout = MixLayout::build(
        state_code.width(),
        cond_code.width(),
        config.error_bits_per_instance(),
        &mds,
        config.seed(),
        config.pad_policy(),
    )?;

    // Solve (and sanity-check) one modifier per CFG edge — the §5.1
    // equation MDS(S_Ce, X_e, Mod) = S_Ne.
    let mut modifiers = Vec::with_capacity(cfg.edges().len());
    for edge in cfg.edges() {
        let from = state_code.word(edge.from.0);
        let target = state_code.word(edge.to.0);
        let cond = cond_code.word(edge.local_index(fsm));
        let modifier = layout.solve_modifier(&mds, from, cond, target);
        debug_assert!({
            let (next, errors) = layout.apply(&mds, from, cond, &modifier);
            next == *target && errors.count_ones() == errors.len()
        });
        modifiers.push(modifier);
    }

    let (module, regions) = emit(
        fsm,
        &cfg,
        config,
        &mds,
        &state_code,
        &cond_code,
        &layout,
        &modifiers,
    )?;
    let diffusion_xors = mds.xor_program(config.lowering_strategy()).xor_count() * layout.k();
    let report = HardenReport {
        n_states: fsm.state_count(),
        n_edges: cfg.edges().len(),
        state_width: state_code.width(),
        control_width: cond_code.width(),
        mod_width: layout.mod_width(),
        instances: layout.k(),
        error_bits: layout.error_bits(),
        diffusion_xors,
        stats: ModuleStats::of(&module),
    };
    Ok(HardenedFsm {
        fsm: fsm.clone(),
        cfg,
        config: config.clone(),
        mds,
        state_code,
        cond_code,
        layout,
        modifiers,
        module,
        regions,
        report,
    })
}

/// §7 MDS size adaptation: the smallest lightweight matrix whose single
/// instance hosts the whole triple (`2·sw + xw + e ≤ width`, with the
/// error-bit bound `e < width/2`).
fn adapt_mds_spec(sw: usize, xw: usize, e: usize) -> MdsSpec {
    let need = 2 * sw + xw + e;
    for spec in [MdsSpec::Lightweight16, MdsSpec::Lightweight24] {
        if need <= spec.width() && e < spec.width() / 2 {
            return spec;
        }
    }
    MdsSpec::ScfiLightweight
}

/// Emits the hardened netlist.
#[allow(clippy::too_many_arguments)]
fn emit(
    fsm: &Fsm,
    cfg: &Cfg,
    config: &ScfiConfig,
    mds: &MdsMatrix,
    state_code: &Codebook,
    cond_code: &Codebook,
    layout: &MixLayout,
    modifiers: &[BitVec],
) -> Result<(Module, HardenRegions), ScfiError> {
    let sw = state_code.width();
    let xw = cond_code.width();
    let mut b = ModuleBuilder::new(format!("{}_scfi", fsm.name()));

    // Encoded control word input (step 1 of Fig. 7 matches on it).
    let xe = b.input_word("xe", xw);
    let reset_code = state_code.word(fsm.reset_state().0).clone();
    let state_q = b.dff_word_uninit(sw, &reset_code);

    // Terminal-error detection: ERROR is the all-zero word.
    let in_error = b.eq_const(&state_q, &BitVec::zeros(sw));

    // 1. Input pattern matching: per-state and per-condition comparators.
    // With selector hardening (§7 extension), the comparators are emitted
    // on several physically separate rails (strash barriers play the role
    // of `dont_touch`), and each edge match is the AND of all rails — a
    // single selector fault can then only suppress a match (→ terminal
    // error), never assert a wrong one.
    let pattern_start = b.len() as u32;
    let mut rails: Vec<(Vec<NetId>, Vec<NetId>)> = Vec::new();
    for rail in 0..config.selector_rail_count() {
        if rail > 0 {
            b.strash_barrier();
        }
        let state_match_r: Vec<NetId> = (0..fsm.state_count())
            .map(|s| b.eq_const(&state_q, state_code.word(s)))
            .collect();
        let cond_match_r: Vec<NetId> = (0..cond_code.len())
            .map(|c| b.eq_const(&xe, cond_code.word(c)))
            .collect();
        rails.push((state_match_r, cond_match_r));
    }
    let state_match = rails[0].0.clone();

    // 2. Modifier selection: one-hot AND–OR over edge matches.
    let select_start = b.len() as u32;
    let mut edge_match = Vec::with_capacity(cfg.edges().len());
    let mut mod_words = Vec::with_capacity(cfg.edges().len());
    for (ei, edge) in cfg.edges().iter().enumerate() {
        let per_rail: Vec<NetId> = rails
            .iter()
            .map(|(sm, cm)| b.and2(sm[edge.from.0], cm[edge.local_index(fsm)]))
            .collect();
        let m = b.and_all(&per_rail);
        edge_match.push(m);
        mod_words.push(b.const_word(&modifiers[ei]));
    }
    let mod_word = b.onehot_select(&edge_match, &mod_words);

    // 3.–5. Mix, diffusion, unmix per MDS instance.
    let diffusion_start = b.len() as u32;
    let prog = mds.xor_program(config.lowering_strategy());
    let zero = b.constant(false);
    let mut sn_bits: Vec<NetId> = vec![zero; sw];
    let mut error_nets: Vec<NetId> = Vec::with_capacity(layout.total_error_bits());
    for inst in layout.instances() {
        let mut signals: Vec<NetId> = vec![zero; mds.width()];
        for &(pos, g) in &inst.state_in {
            signals[pos] = state_q[g];
        }
        for &(pos, g) in &inst.control_in {
            signals[pos] = xe[g];
        }
        for &(pos, g) in &inst.mod_in {
            signals[pos] = mod_word[g];
        }
        for &(a, bb) in prog.ops() {
            let net = b.xor2(signals[a], signals[bb]);
            signals.push(net);
        }
        let out_net = |src: &OutputSource, b: &mut ModuleBuilder| match src {
            OutputSource::Zero => b.constant(false),
            OutputSource::Signal(s) => signals[*s],
        };
        for &(pos, g) in &inst.state_out {
            sn_bits[g] = out_net(&prog.outputs()[pos], &mut b);
        }
        for &pos in &inst.error_out {
            let net = out_net(&prog.outputs()[pos], &mut b);
            error_nets.push(net);
        }
    }

    // 6. Error logic: infective AND of the next state with the reduced
    // error bits, plus the Fig. 4 `default:` arm (an invalid current state
    // forces SN = ERROR deterministically — this is what makes FT1 faults
    // below N flips always caught) and the non-escapable ERROR hold.
    //
    // The default arm covers unmatched *conditions* too, not just
    // unmatched states: a valid condition codeword whose class has no
    // edge from the current state selects no modifier, and the e error
    // bits of MDS(S, X, 0) then pass the all-ones check with probability
    // ≈ 2^-e per (state, class) pair — common enough at small e that the
    // netlist would otherwise commit a silent non-codeword the behavioral
    // reference (`expected_next`) maps to ERROR. Gating `pass` on "some
    // edge matched" restores `φ_F(S, X, 0) = φ_F̄(S, X, 0)` on the whole
    // valid-codeword input space; the `scfi-symbolic` certifier found the
    // discrepancy (a transient invalid state one register flip away from
    // a valid codeword) and its conformance suite now pins the fix.
    let error_start = b.len() as u32;
    let e_ok = b.and_all(&error_nets);
    let any_state = b.or_all(&state_match);
    let any_edge = b.or_all(&edge_match);
    let not_err = b.not(in_error);
    let pass = b.and2(e_ok, not_err);
    let pass = b.and2(pass, any_state);
    let pass = b.and2(pass, any_edge);
    let next: Vec<NetId> = sn_bits.iter().map(|&s| b.and2(s, pass)).collect();
    b.set_dff_word(&state_q, &next);

    // Alert output for the `default:` arm's `fsm_alert = err_signal`.
    let valid = b.or2(any_state, in_error);
    let mut alert = b.not(valid);

    // Moore output logic λ (driven by rail 0's comparators).
    let moore: Vec<NetId> = (0..fsm.outputs().len())
        .map(|oi| {
            let terms: Vec<NetId> = fsm
                .states()
                .iter()
                .filter(|&&s| fsm.asserted_outputs(s).iter().any(|o| o.0 == oi))
                .map(|&s| state_match[s.0])
                .collect();
            b.or_all(&terms)
        })
        .collect();

    // §7 extension: duplicate λ on a separate rail and fold any mismatch
    // into the alert.
    let output_check_start = b.len() as u32;
    if config.outputs_protected() && !moore.is_empty() {
        b.strash_barrier();
        let dup_match: Vec<NetId> = (0..fsm.state_count())
            .map(|s| b.eq_const(&state_q, state_code.word(s)))
            .collect();
        let mut mismatches = Vec::with_capacity(moore.len());
        for (oi, &primary) in moore.iter().enumerate() {
            let terms: Vec<NetId> = fsm
                .states()
                .iter()
                .filter(|&&s| fsm.asserted_outputs(s).iter().any(|o| o.0 == oi))
                .map(|&s| dup_match[s.0])
                .collect();
            let dup = b.or_all(&terms);
            mismatches.push(b.xor2(primary, dup));
        }
        let out_mismatch = b.or_all(&mismatches);
        alert = b.or2(alert, out_mismatch);
    }
    let output_check_end = b.len() as u32;

    b.output_word("state_e", &state_q);
    for (name, &net) in fsm.outputs().iter().zip(&moore) {
        b.output(name.clone(), net);
    }
    b.output("alert", alert);
    b.output("in_error", in_error);

    let regions = HardenRegions {
        pattern_match: pattern_start..select_start,
        modifier_select: select_start..diffusion_start,
        diffusion: diffusion_start..error_start,
        error_logic: error_start..output_check_start,
        output_check: output_check_start..output_check_end,
    };
    Ok((b.finish()?, regions))
}

impl HardenedFsm {
    /// The protected gate-level netlist.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The source FSM.
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// The extracted control-flow graph (modifier index space).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The configuration used.
    pub fn config(&self) -> &ScfiConfig {
        &self.config
    }

    /// The encoded-state codebook (R2).
    pub fn state_code(&self) -> &Codebook {
        &self.state_code
    }

    /// The condition-class codebook (R1).
    pub fn cond_code(&self) -> &Codebook {
        &self.cond_code
    }

    /// The mix-layer layout.
    pub fn layout(&self) -> &MixLayout {
        &self.layout
    }

    /// The MDS matrix instantiated in the diffusion layer.
    pub fn mds(&self) -> &MdsMatrix {
        &self.mds
    }

    /// Per-CFG-edge modifiers (indexed like [`Cfg::edges`]).
    pub fn modifiers(&self) -> &[BitVec] {
        &self.modifiers
    }

    /// The synthesis report.
    pub fn report(&self) -> &HardenReport {
        &self.report
    }

    /// Cell-index ranges of the φ_FH stages, for region-targeted fault
    /// campaigns.
    pub fn regions(&self) -> &HardenRegions {
        &self.regions
    }

    /// The codeword of a state.
    pub fn encode_state(&self, s: StateId) -> &BitVec {
        self.state_code.word(s.0)
    }

    /// Decodes a raw state-register word.
    pub fn decode_state(&self, word: &BitVec) -> StateDecode {
        if word.is_zero() {
            return StateDecode::Error;
        }
        match self.state_code.decode(word) {
            Some(i) => StateDecode::State(StateId(i)),
            None => StateDecode::Invalid,
        }
    }

    /// Decodes the simulator's register slice (register order = state bit
    /// order).
    pub fn decode_registers(&self, regs: &[bool]) -> StateDecode {
        self.decode_state(&BitVec::from_bools(regs))
    }

    /// Reads the `alert` and `in_error` detection lines from a sampled
    /// output-port slice, by their port positions (the hardening pass
    /// always emits them as the last two ports, after the encoded state
    /// and the Moore outputs).
    ///
    /// Fault-analysis code must use this accessor instead of hand-indexing
    /// `outputs[len - 2]`: the accessor anchors on the *module's* port
    /// count, so a slice sampled from a different module fails the width
    /// check loudly instead of silently reading an arbitrary output bit.
    ///
    /// # Panics
    ///
    /// Panics if the module exposes fewer than two output ports (no
    /// hardened module does — `alert` and `in_error` are unconditionally
    /// emitted); `debug_assert`s that `outputs` matches the module's
    /// output-port count.
    pub fn alert_lines(&self, outputs: &[bool]) -> (bool, bool) {
        let n_ports = self.module.outputs().len();
        assert!(
            n_ports >= 2,
            "hardened module must expose the alert and in_error ports"
        );
        debug_assert_eq!(
            outputs.len(),
            n_ports,
            "output slice width {} does not match the hardened module's {} ports",
            outputs.len(),
            n_ports
        );
        (outputs[n_ports - 2], outputs[n_ports - 1])
    }

    /// The interface encoder the paper assumes in the driving modules:
    /// maps the behavioral situation `(state, raw control signals)` to the
    /// encoded control word `X_e` for this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `raw_inputs` does not match the FSM's signal count.
    pub fn encode_condition(&self, s: StateId, raw_inputs: &[bool]) -> BitVec {
        let ei = self.cfg.matched_edge(s, raw_inputs);
        let class = self.cfg.edges()[ei].local_index(&self.fsm);
        self.cond_code.word(class).clone()
    }

    /// The condition codeword for a specific local edge class.
    pub fn condition_word(&self, class: usize) -> &BitVec {
        self.cond_code.word(class)
    }

    /// The fault-free expectation: from decoded state `cur` under control
    /// word `xe`, where must a correct SCFI FSM go?
    ///
    /// Used by the fault-analysis engine to classify outcomes: a faulty run
    /// ending anywhere else is either *detected* (ERROR) or a *hijack*
    /// (valid-but-wrong state).
    pub fn expected_next(&self, cur: StateDecode, xe: &BitVec) -> StateDecode {
        match cur {
            StateDecode::Error | StateDecode::Invalid => StateDecode::Error,
            StateDecode::State(s) => match self.cond_code.decode(xe) {
                Some(class) => {
                    let edges = self.cfg.out_edges(s);
                    match edges.iter().find(|e| e.local_index(&self.fsm) == class) {
                        Some(e) => StateDecode::State(e.to),
                        None => StateDecode::Error,
                    }
                }
                None => StateDecode::Error,
            },
        }
    }

    /// Lock-step random-walk equivalence check against the behavioral FSM;
    /// see [`crate::verify::lockstep`].
    ///
    /// # Errors
    ///
    /// [`ScfiError::Equivalence`] describing the first divergence.
    pub fn check_equivalence(&self, steps: usize, seed: u64) -> Result<(), ScfiError> {
        crate::verify::lockstep(self, steps, seed)
    }

    /// Drives every CFG edge once and checks the netlist lands in the
    /// edge's target with no alert; see [`crate::verify::all_edges`].
    ///
    /// # Errors
    ///
    /// [`ScfiError::Equivalence`] describing the first wrong edge.
    pub fn check_all_edges(&self) -> Result<(), ScfiError> {
        crate::verify::all_edges(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_fsm::parse_fsm;
    use scfi_netlist::Simulator;

    fn lock() -> Fsm {
        parse_fsm(
            "fsm lock {
               inputs key_ok, tamper;
               outputs open, alarm;
               reset LOCKED;
               state LOCKED { if key_ok && !tamper -> OPEN; if tamper -> ALARM; }
               state OPEN   { out open; if tamper -> ALARM; if !key_ok -> LOCKED; }
               state ALARM  { out alarm; goto ALARM; }
             }",
        )
        .unwrap()
    }

    #[test]
    fn hardens_and_reports() {
        let h = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let r = h.report();
        assert_eq!(r.n_states, 3);
        // LOCKED: 2 explicit + stay; OPEN: 2 + stay; ALARM: unconditional.
        assert_eq!(r.n_edges, 7);
        assert!(r.state_width >= 3);
        assert!(r.instances >= 1);
        assert!(r.diffusion_xors > 0);
        assert!(h.module().output_net("alert").is_some());
        assert!(h.module().output_net("in_error").is_some());
    }

    #[test]
    fn reset_state_decodes() {
        let fsm = lock();
        let h = harden(&fsm, &ScfiConfig::new(2)).unwrap();
        let sim = Simulator::new(h.module());
        assert_eq!(
            h.decode_registers(sim.register_values()),
            StateDecode::State(fsm.reset_state())
        );
    }

    #[test]
    fn every_edge_lands_correctly() {
        for n in [2, 3, 4] {
            let h = harden(&lock(), &ScfiConfig::new(n)).unwrap();
            h.check_all_edges().unwrap_or_else(|e| panic!("N={n}: {e}"));
        }
    }

    #[test]
    fn random_walk_equivalence() {
        let h = harden(&lock(), &ScfiConfig::new(3)).unwrap();
        h.check_equivalence(500, 0xDEAD).unwrap();
    }

    #[test]
    fn invalid_control_word_forces_error() {
        let fsm = lock();
        let h = harden(&fsm, &ScfiConfig::new(2)).unwrap();
        let mut sim = Simulator::new(h.module());
        // An all-zero xe is never a valid codeword (weight ≥ N).
        let xw = h.cond_code().width();
        sim.step(&vec![false; xw]);
        assert_eq!(
            h.decode_registers(sim.register_values()),
            StateDecode::Error
        );
        // ERROR is terminal even under a valid condition word.
        let xe: Vec<bool> = h.condition_word(0).iter().collect();
        sim.step(&xe);
        assert_eq!(
            h.decode_registers(sim.register_values()),
            StateDecode::Error
        );
        // in_error output is asserted.
        let out = sim.step(&xe);
        let in_error_idx = h.module().outputs().len() - 1;
        assert!(out[in_error_idx]);
    }

    #[test]
    fn single_register_bit_flip_detected() {
        // FT1 with one flip at N=2: register word becomes invalid; the next
        // cycle must collapse into ERROR, never into another valid state.
        let fsm = lock();
        let h = harden(&fsm, &ScfiConfig::new(2)).unwrap();
        let regs = h.module().registers().to_vec();
        for (i, &reg) in regs.iter().enumerate() {
            let mut sim = Simulator::new(h.module());
            sim.flip_register(reg);
            let xe: Vec<bool> = h
                .encode_condition(fsm.reset_state(), &[false, false])
                .iter()
                .collect();
            sim.step(&xe);
            let decoded = h.decode_registers(sim.register_values());
            assert_eq!(decoded, StateDecode::Error, "reg bit {i} flip escaped");
        }
    }

    #[test]
    fn expected_next_tracks_semantics() {
        let fsm = lock();
        let h = harden(&fsm, &ScfiConfig::new(2)).unwrap();
        let locked = fsm.state_by_name("LOCKED").unwrap();
        let open = fsm.state_by_name("OPEN").unwrap();
        let xe = h.encode_condition(locked, &[true, false]);
        assert_eq!(
            h.expected_next(StateDecode::State(locked), &xe),
            StateDecode::State(open)
        );
        let zero = BitVec::zeros(h.cond_code().width());
        assert_eq!(
            h.expected_next(StateDecode::State(locked), &zero),
            StateDecode::Error
        );
        assert_eq!(h.expected_next(StateDecode::Error, &xe), StateDecode::Error);
    }

    #[test]
    fn protection_level_one_rejected() {
        assert!(matches!(
            harden(&lock(), &ScfiConfig::new(1)),
            Err(ScfiError::ProtectionLevelTooLow { requested: 1 })
        ));
    }

    #[test]
    fn decode_state_classifies() {
        let h = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let sw = h.state_code().width();
        assert_eq!(h.decode_state(&BitVec::zeros(sw)), StateDecode::Error);
        assert_eq!(
            h.decode_state(h.encode_state(StateId(1))),
            StateDecode::State(StateId(1))
        );
        // A 1-bit corruption of a codeword is Invalid at d >= 2.
        let mut w = h.encode_state(StateId(1)).clone();
        w.set(0, !w.get(0));
        assert_eq!(h.decode_state(&w), StateDecode::Invalid);
    }

    #[test]
    fn aes_matrix_configuration_works() {
        use scfi_mds::MdsSpec;
        let h = harden(&lock(), &ScfiConfig::new(2).mds(MdsSpec::AesMixColumns)).unwrap();
        h.check_all_edges().unwrap();
    }

    #[test]
    fn regions_are_contiguous_and_nonempty() {
        let h = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let r = h.regions();
        assert!(r.pattern_match.start < r.pattern_match.end);
        assert_eq!(r.pattern_match.end, r.modifier_select.start);
        assert_eq!(r.modifier_select.end, r.diffusion.start);
        assert_eq!(r.diffusion.end, r.error_logic.start);
        assert_eq!(r.error_logic.end, r.output_check.start);
        assert!(r.output_check.is_empty(), "disabled by default");
        assert!(r.output_check.end as usize <= h.module().len());
        // The diffusion region is dominated by XOR cells.
        let xors = (r.diffusion.start..r.diffusion.end)
            .filter(|&i| {
                matches!(
                    h.module().cells()[i as usize].kind,
                    scfi_netlist::CellKind::Xor | scfi_netlist::CellKind::Not
                )
            })
            .count();
        assert!(xors * 2 > (r.diffusion.end - r.diffusion.start) as usize);
    }

    #[test]
    fn adaptive_mds_picks_a_smaller_matrix() {
        // lock(): 3 states, small widths → a 24-bit (or 16-bit) matrix fits.
        let fixed = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let adaptive = harden(&lock(), &ScfiConfig::new(2).adaptive_mds(true)).unwrap();
        assert!(adaptive.mds().width() < fixed.mds().width());
        adaptive.check_all_edges().unwrap();
        adaptive.check_equivalence(300, 5).unwrap();
        // Smaller matrix → fewer diffusion XORs.
        assert!(adaptive.report().diffusion_xors < fixed.report().diffusion_xors);
    }

    #[test]
    fn adapt_spec_thresholds() {
        assert_eq!(adapt_mds_spec(4, 4, 2), MdsSpec::Lightweight16);
        assert_eq!(adapt_mds_spec(7, 5, 3), MdsSpec::Lightweight24);
        assert_eq!(adapt_mds_spec(11, 8, 4), MdsSpec::ScfiLightweight);
        // Error-bit bound can veto a small matrix (e must stay < width/2).
        assert_eq!(adapt_mds_spec(3, 2, 8), MdsSpec::Lightweight24);
        assert_eq!(adapt_mds_spec(3, 2, 12), MdsSpec::ScfiLightweight);
    }

    #[test]
    fn selector_rails_preserve_behavior_and_grow_pattern_region() {
        let base = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let railed = harden(&lock(), &ScfiConfig::new(2).selector_rails(2)).unwrap();
        railed.check_all_edges().unwrap();
        railed.check_equivalence(300, 9).unwrap();
        assert!(
            railed.regions().pattern_match.len() > base.regions().pattern_match.len(),
            "second rail must add comparator cells"
        );
    }

    #[test]
    fn protected_outputs_raise_alert_on_output_fault() {
        let fsm = lock();
        let h = harden(&fsm, &ScfiConfig::new(2).protect_outputs(true)).unwrap();
        assert!(!h.regions().output_check.is_empty());
        h.check_equivalence(200, 3).unwrap();
        // Walk to OPEN (asserts `open`), then flip the primary output net.
        let open = fsm.state_by_name("OPEN").unwrap();
        let mut sim = Simulator::new(h.module());
        let code: Vec<bool> = h.encode_state(open).iter().collect();
        sim.set_register_values(&code);
        let open_net = h.module().output_net("open").unwrap();
        sim.set_net_flip(open_net);
        let xe: Vec<bool> = h.encode_condition(open, &[true, false]).iter().collect();
        let out = sim.step(&xe);
        let alert_idx = out.len() - 2;
        assert!(out[alert_idx], "output mismatch must raise the alert");
    }

    #[test]
    fn report_display_mentions_structure() {
        let h = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let text = h.report().to_string();
        assert!(text.contains("SCFI"));
        assert!(text.contains("edges"));
    }

    #[test]
    fn alert_lines_map_to_the_named_ports() {
        let h = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let ports = h.module().outputs();
        // The accessor's positional contract: `alert` then `in_error` are
        // the final two output ports, in that order.
        assert_eq!(ports[ports.len() - 2].0, "alert");
        assert_eq!(ports[ports.len() - 1].0, "in_error");
        // Reading through the accessor picks out exactly those two bits.
        let mut outputs = vec![false; ports.len()];
        outputs[ports.len() - 2] = true;
        assert_eq!(h.alert_lines(&outputs), (true, false));
        outputs[ports.len() - 2] = false;
        outputs[ports.len() - 1] = true;
        assert_eq!(h.alert_lines(&outputs), (false, true));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "width")]
    fn alert_lines_reject_mismatched_slices() {
        let h = harden(&lock(), &ScfiConfig::new(2)).unwrap();
        let _ = h.alert_lines(&[true, false]); // not this module's port count
    }
}
