//! The redundancy baseline: `N`-fold instantiation of the unprotected
//! next-state logic with a register-mismatch detector (paper §6.1,
//! configuration (ii)).
//!
//! "For the manually protected FSMs, we encoded the control signals with a
//! Hamming Distance of N-bits and instantiated the next-state logic of the
//! FSM N times. To detect control-flow hijacks triggered by faults, we
//! designed a small error logic monitoring the state registers of the
//! redundant FSMs and raising an error signal when one or more state values
//! mismatch."
//!
//! Each replica keeps the cheap natural binary state encoding (redundancy,
//! not encoding, is this scheme's protection); the control interface uses
//! the same HD-N condition codebook as SCFI so both schemes face identical
//! FT2 assumptions.

use scfi_encode::{CodeSpec, Codebook};
use scfi_fsm::{Cfg, Fsm, StateId};
use scfi_gf2::BitVec;
use scfi_netlist::{Module, ModuleBuilder, NetId};

use crate::ScfiError;

/// An FSM protected by `N`-fold modular redundancy.
///
/// Module interface: inputs `xe[0..]` (encoded condition word); outputs
/// `state[0..]` (replica 0's binary state), one port per Moore output, and
/// `alert` (replica mismatch detected).
#[derive(Debug)]
pub struct RedundantFsm {
    fsm: Fsm,
    cfg: Cfg,
    n: usize,
    cond_code: Codebook,
    encodings: Vec<BitVec>,
    state_bits: usize,
    module: Module,
}

/// Builds the `n`-fold redundancy baseline for `fsm`.
///
/// # Errors
///
/// Fails for `n < 2` or if the condition codebook cannot be built.
///
/// # Example
///
/// ```
/// use scfi_core::redundancy;
/// use scfi_fsm::parse_fsm;
///
/// let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
/// let r = redundancy(&fsm, 3)?;
/// assert_eq!(r.replicas(), 3);
/// r.check_equivalence(100, 5)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn redundancy(fsm: &Fsm, n: usize) -> Result<RedundantFsm, ScfiError> {
    if n < 2 {
        return Err(ScfiError::ProtectionLevelTooLow { requested: n });
    }
    let cfg = fsm.cfg();
    let cond_code = CodeSpec::new(cfg.max_out_degree(), n).build()?;
    let n_states = fsm.state_count();
    let state_bits = usize::max(1, (usize::BITS - (n_states - 1).leading_zeros()) as usize);
    let encodings: Vec<BitVec> = (0..n_states)
        .map(|i| BitVec::from_u64(i as u64, state_bits))
        .collect();

    let mut b = ModuleBuilder::new(format!("{}_red{}", fsm.name(), n));
    let xe = b.input_word("xe", cond_code.width());
    let reset_code = encodings[fsm.reset_state().0].clone();

    let mut banks: Vec<Vec<NetId>> = Vec::with_capacity(n);
    for _replica in 0..n {
        // The paper replicates the complete next-state logic, which
        // includes the comparators on the encoded control signals — only
        // the module-boundary wires are shared. The strash barrier is the
        // `dont_touch` fence keeping the copies physically separate (§6.4
        // warns that optimization would otherwise merge them).
        b.strash_barrier();
        let cond_match: Vec<NetId> = (0..cond_code.len())
            .map(|c| b.eq_const(&xe, cond_code.word(c)))
            .collect();
        let state_q = b.dff_word_uninit(state_bits, &reset_code);
        let state_match: Vec<NetId> = encodings
            .iter()
            .map(|code| b.eq_const(&state_q, code))
            .collect();
        let mut edge_match = Vec::with_capacity(cfg.edges().len());
        let mut targets = Vec::with_capacity(cfg.edges().len());
        for edge in cfg.edges() {
            let m = b.and2(state_match[edge.from.0], cond_match[edge.local_index(fsm)]);
            edge_match.push(m);
            targets.push(b.const_word(&encodings[edge.to.0]));
        }
        let next = b.onehot_select(&edge_match, &targets);
        b.set_dff_word(&state_q, &next);
        banks.push(state_q);
    }

    // Mismatch detector against replica 0.
    let mut mismatch_terms = Vec::new();
    for bank in banks.iter().skip(1) {
        for (&a, &c) in banks[0].iter().zip(bank) {
            let x = b.xor2(a, c);
            mismatch_terms.push(x);
        }
    }
    let alert = b.or_all(&mismatch_terms);

    // Moore outputs from replica 0.
    let state_match0: Vec<NetId> = encodings
        .iter()
        .map(|code| b.eq_const(&banks[0], code))
        .collect();
    b.output_word("state", &banks[0]);
    for (oi, name) in fsm.outputs().iter().enumerate() {
        let terms: Vec<NetId> = fsm
            .states()
            .iter()
            .filter(|&&s| fsm.asserted_outputs(s).iter().any(|o| o.0 == oi))
            .map(|&s| state_match0[s.0])
            .collect();
        let y = b.or_all(&terms);
        b.output(name.clone(), y);
    }
    b.output("alert", alert);

    Ok(RedundantFsm {
        fsm: fsm.clone(),
        cfg,
        n,
        cond_code,
        encodings,
        state_bits,
        module: b.finish()?,
    })
}

impl RedundantFsm {
    /// The protected netlist.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The source FSM.
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// The extracted control-flow graph (scenario index space).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Number of next-state-logic replicas.
    pub fn replicas(&self) -> usize {
        self.n
    }

    /// The condition codebook (shared interface assumption with SCFI).
    pub fn cond_code(&self) -> &Codebook {
        &self.cond_code
    }

    /// Width of each replica's binary state register.
    pub fn state_bits(&self) -> usize {
        self.state_bits
    }

    /// Encodes the behavioral situation into the condition word, exactly
    /// like [`HardenedFsm::encode_condition`](crate::HardenedFsm::encode_condition).
    ///
    /// # Panics
    ///
    /// Panics if `raw_inputs` does not match the FSM's signal count.
    pub fn encode_condition(&self, s: StateId, raw_inputs: &[bool]) -> BitVec {
        let ei = self.cfg.matched_edge(s, raw_inputs);
        let class = self.cfg.edges()[ei].local_index(&self.fsm);
        self.cond_code.word(class).clone()
    }

    /// Decodes replica 0's registers (the first `state_bits` registers in
    /// creation order) to a state, if the code is in range.
    pub fn decode_registers(&self, regs: &[bool]) -> Option<StateId> {
        let word = BitVec::from_bools(&regs[..self.state_bits]);
        self.encodings.iter().position(|e| *e == word).map(StateId)
    }

    /// Lock-step random-walk equivalence check; see
    /// [`crate::verify::lockstep_redundant`].
    ///
    /// # Errors
    ///
    /// [`ScfiError::Equivalence`] describing the first divergence.
    pub fn check_equivalence(&self, steps: usize, seed: u64) -> Result<(), ScfiError> {
        crate::verify::lockstep_redundant(self, steps, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_fsm::parse_fsm;
    use scfi_netlist::{ModuleStats, Simulator};

    fn lock() -> Fsm {
        parse_fsm(
            "fsm lock {
               inputs key_ok, tamper;
               outputs open;
               state LOCKED { if key_ok && !tamper -> OPEN; }
               state OPEN   { out open; if tamper -> LOCKED; }
             }",
        )
        .unwrap()
    }

    #[test]
    fn equivalence_for_all_n() {
        for n in [2, 3, 4] {
            let r = redundancy(&lock(), n).unwrap();
            r.check_equivalence(300, 7)
                .unwrap_or_else(|e| panic!("N={n}: {e}"));
        }
    }

    #[test]
    fn area_scales_roughly_linearly() {
        // Use an FSM big enough that the replicated next-state logic (and
        // not the tiny fixed parts) dominates.
        let f = parse_fsm(
            "fsm m { inputs a, b, c;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b && !c -> S3; if c -> S0; }
               state S2 { if a -> S3; }
               state S3 { if c -> S4; }
               state S4 { goto S0; }
               state S5 { goto S0; } }",
        )
        .unwrap();
        let g2 = ModuleStats::of(redundancy(&f, 2).unwrap().module()).gate_count();
        let g4 = ModuleStats::of(redundancy(&f, 4).unwrap().module()).gate_count();
        // Doubling the replica count should roughly double the replicated
        // logic (the mismatch detector adds a little on top).
        assert!(g4 > g2, "4x must exceed 2x");
        assert!((g4 as f64) < (g2 as f64) * 2.6, "g2={g2} g4={g4}");
        assert!((g4 as f64) > (g2 as f64) * 1.4, "g2={g2} g4={g4}");
    }

    #[test]
    fn register_fault_in_one_replica_raises_alert() {
        let f = lock();
        let r = redundancy(&f, 2).unwrap();
        let mut sim = Simulator::new(r.module());
        // Flip a bit of replica 1's registers (registers are created bank
        // by bank, so the second half belongs to replica 1).
        let regs = r.module().registers();
        sim.flip_register(regs[r.state_bits()]);
        let xe: Vec<bool> = r
            .encode_condition(f.reset_state(), &[false, false])
            .iter()
            .collect();
        let out = sim.step(&xe);
        assert!(out[out.len() - 1], "mismatch alert must fire");
    }

    #[test]
    fn n_below_two_rejected() {
        assert!(matches!(
            redundancy(&lock(), 1),
            Err(ScfiError::ProtectionLevelTooLow { .. })
        ));
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let f = lock();
        let r = redundancy(&f, 2).unwrap();
        assert_eq!(r.decode_registers(&[false, false]), Some(StateId(0)));
        // 2-state machine in 1 bit: both codes valid; craft wider machine.
        let f3 = parse_fsm(
            "fsm t { inputs a; state A { if a -> B; } state B { if a -> C; } state C { goto A; } }",
        )
        .unwrap();
        let r3 = redundancy(&f3, 2).unwrap();
        assert_eq!(r3.decode_registers(&[true, true, false, false]), None);
    }
}
