//! Error type for the SCFI pass.

use std::fmt;

use scfi_encode::CodeError;
use scfi_fsm::FsmError;
use scfi_netlist::ValidateError;

/// Errors produced while hardening an FSM.
#[derive(Debug)]
pub enum ScfiError {
    /// The requested protection level is below 2 (a distance-1 "encoding"
    /// protects nothing).
    ProtectionLevelTooLow {
        /// The requested level.
        requested: usize,
    },
    /// Codebook construction failed.
    Code(CodeError),
    /// The source FSM is invalid.
    Fsm(FsmError),
    /// The emitted netlist failed validation (internal error).
    Netlist(ValidateError),
    /// No invertible modifier placement was found for an MDS instance.
    LayoutUnsolvable {
        /// The instance index that failed.
        instance: usize,
        /// How many placements were tried.
        tried: usize,
    },
    /// The requested error-bit count cannot fit next to the state share in
    /// a 32-bit MDS instance.
    ErrorBitsTooLarge {
        /// Requested error bits per instance.
        error_bits: usize,
    },
    /// A lock-step equivalence check failed (see [`crate::verify`]).
    Equivalence(String),
}

impl fmt::Display for ScfiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScfiError::ProtectionLevelTooLow { requested } => {
                write!(f, "protection level {requested} is below the minimum of 2")
            }
            ScfiError::Code(e) => write!(f, "encoding failed: {e}"),
            ScfiError::Fsm(e) => write!(f, "invalid FSM: {e}"),
            ScfiError::Netlist(e) => write!(f, "internal netlist error: {e}"),
            ScfiError::LayoutUnsolvable { instance, tried } => write!(
                f,
                "no invertible modifier placement for MDS instance {instance} after {tried} tries"
            ),
            ScfiError::ErrorBitsTooLarge { error_bits } => {
                write!(f, "{error_bits} error bits per 32-bit instance is too many")
            }
            ScfiError::Equivalence(msg) => write!(f, "equivalence check failed: {msg}"),
        }
    }
}

impl std::error::Error for ScfiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScfiError::Code(e) => Some(e),
            ScfiError::Fsm(e) => Some(e),
            ScfiError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for ScfiError {
    fn from(e: CodeError) -> Self {
        ScfiError::Code(e)
    }
}

impl From<FsmError> for ScfiError {
    fn from(e: FsmError) -> Self {
        ScfiError::Fsm(e)
    }
}

impl From<ValidateError> for ScfiError {
    fn from(e: ValidateError) -> Self {
        ScfiError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = ScfiError::ProtectionLevelTooLow { requested: 1 };
        assert!(e.to_string().contains("level 1"));
        let e = ScfiError::LayoutUnsolvable {
            instance: 2,
            tried: 500,
        };
        assert!(e.to_string().contains("instance 2"));
        let e = ScfiError::ErrorBitsTooLarge { error_bits: 30 };
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error as _;
        let e: ScfiError = CodeError::InvalidSpec("x").into();
        assert!(e.source().is_some());
        let e: ScfiError = FsmError::Empty.into();
        assert!(e.source().is_some());
        let e = ScfiError::Equivalence("diverged".into());
        assert!(e.source().is_none());
    }
}
