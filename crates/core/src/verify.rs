//! Lock-step equivalence checks of protected netlists against the
//! behavioral FSM — the fault-free comparison `φ_F(S, X, 0) = φ_F̄(S, X, 0)`
//! of the paper's security goal (§3.2).

use scfi_fsm::FsmSimulator;
use scfi_netlist::Simulator;

use crate::harden::{HardenedFsm, StateDecode};
use crate::redundancy::RedundantFsm;
use crate::ScfiError;

/// Deterministic xorshift64* generator for input traces.
pub(crate) struct TraceRng(u64);

impl TraceRng {
    pub(crate) fn new(seed: u64) -> Self {
        TraceRng(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub(crate) fn bools(&mut self, n: usize) -> Vec<bool> {
        (0..n)
            .map(|i| (self.next_u64() >> (i % 32)) & 1 == 1)
            .collect()
    }
}

/// Runs the hardened netlist and the behavioral FSM in lock-step over a
/// seeded random input trace: each cycle draws raw control signals, encodes
/// them through the interface encoder, and compares the decoded netlist
/// state against the behavioral next state. Also asserts no false alarms.
///
/// # Errors
///
/// [`ScfiError::Equivalence`] at the first divergence or false alert.
pub fn lockstep(h: &HardenedFsm, steps: usize, seed: u64) -> Result<(), ScfiError> {
    let fsm = h.fsm();
    let mut gate = Simulator::new(h.module());
    let mut gold = FsmSimulator::new(fsm);
    let mut rng = TraceRng::new(seed);
    let n_sig = fsm.signals().len();
    for cycle in 0..steps {
        let raw = rng.bools(n_sig);
        let xe: Vec<bool> = h.encode_condition(gold.state(), &raw).iter().collect();
        let out = gate.step(&xe);
        let expect = gold.step(&raw);
        match h.decode_registers(gate.register_values()) {
            StateDecode::State(s) if s == expect => {}
            other => {
                return Err(ScfiError::Equivalence(format!(
                    "cycle {cycle}: hardened FSM decoded {other:?}, behavioral model is in {}",
                    fsm.state_name(expect)
                )))
            }
        }
        // Output ports: state_e bits, Moore outputs, alert, in_error.
        let n_out = out.len();
        if out[n_out - 2] || out[n_out - 1] {
            return Err(ScfiError::Equivalence(format!(
                "cycle {cycle}: false alarm (alert={}, in_error={}) on a fault-free run",
                out[n_out - 2],
                out[n_out - 1]
            )));
        }
    }
    Ok(())
}

/// Drives every CFG edge of the hardened FSM exactly once: loads the edge's
/// source state into the registers, applies the edge's condition codeword,
/// and checks the netlist lands in the edge's target without raising an
/// alert.
///
/// This is exhaustive over the paper's `t ∈ CFG` transition set.
///
/// # Errors
///
/// [`ScfiError::Equivalence`] naming the first failing edge.
pub fn all_edges(h: &HardenedFsm) -> Result<(), ScfiError> {
    let fsm = h.fsm();
    for (ei, edge) in h.cfg().edges().iter().enumerate() {
        let mut gate = Simulator::new(h.module());
        let from_code: Vec<bool> = h.encode_state(edge.from).iter().collect();
        gate.set_register_values(&from_code);
        let xe: Vec<bool> = h.condition_word(edge.local_index(fsm)).iter().collect();
        gate.step(&xe);
        match h.decode_registers(gate.register_values()) {
            StateDecode::State(s) if s == edge.to => {}
            other => {
                return Err(ScfiError::Equivalence(format!(
                    "edge {ei} ({} -> {}): netlist decoded {other:?}",
                    fsm.state_name(edge.from),
                    fsm.state_name(edge.to)
                )))
            }
        }
    }
    Ok(())
}

/// Lock-step random-walk equivalence for the redundancy baseline, mirroring
/// [`lockstep`].
///
/// # Errors
///
/// [`ScfiError::Equivalence`] at the first divergence or false alert.
pub fn lockstep_redundant(r: &RedundantFsm, steps: usize, seed: u64) -> Result<(), ScfiError> {
    let fsm = r.fsm();
    let mut gate = Simulator::new(r.module());
    let mut gold = FsmSimulator::new(fsm);
    let mut rng = TraceRng::new(seed);
    let n_sig = fsm.signals().len();
    for cycle in 0..steps {
        let raw = rng.bools(n_sig);
        let xe: Vec<bool> = r.encode_condition(gold.state(), &raw).iter().collect();
        let out = gate.step(&xe);
        let expect = gold.step(&raw);
        match r.decode_registers(gate.register_values()) {
            Some(s) if s == expect => {}
            other => {
                return Err(ScfiError::Equivalence(format!(
                    "cycle {cycle}: redundant FSM decoded {other:?}, behavioral model is in {}",
                    fsm.state_name(expect)
                )))
            }
        }
        if out[out.len() - 1] {
            return Err(ScfiError::Equivalence(format!(
                "cycle {cycle}: false mismatch alarm on a fault-free run"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{harden, redundancy, ScfiConfig};
    use scfi_fsm::parse_fsm;

    fn fsm() -> scfi_fsm::Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn lockstep_passes_for_correct_hardening() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        lockstep(&h, 400, 1).unwrap();
        all_edges(&h).unwrap();
    }

    #[test]
    fn lockstep_passes_for_redundancy() {
        let r = redundancy(&fsm(), 3).unwrap();
        lockstep_redundant(&r, 400, 1).unwrap();
    }

    #[test]
    fn trace_rng_is_deterministic() {
        let mut a = TraceRng::new(9);
        let mut b = TraceRng::new(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.bools(5).len(), 5);
    }
}
