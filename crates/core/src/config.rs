//! Configuration of the SCFI pass.

use scfi_mds::{Lowering, MdsSpec};

/// What to feed the MDS input positions not occupied by the
/// `{S_Ce, X_e, Mod}` triple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PadPolicy {
    /// Tie unused positions to constant zero. Downstream logic folds the
    /// corresponding XOR columns away, shrinking the diffusion layer the
    /// way a logic optimizer folds constant inputs.
    #[default]
    Zero,
    /// Fill unused positions with duplicates of the encoded state and
    /// control bits (round-robin). The full 32-bit matrix is kept, the
    /// execution history is absorbed redundantly, and the area shows the
    /// fixed-MDS-cost behavior the paper notes for small input spaces
    /// (the otbn_controller remark in §6.1).
    Replicate,
}

/// Knobs of the SCFI hardening pass.
///
/// Mirrors the choices §5 of the paper exposes: the fault protection level
/// `N` (the Hamming distance of both encodings), the MDS matrix ("the
/// choice of MDS matrix can be changed according to design requirements"),
/// the number of per-instance error-detection bits, and how the XOR network
/// is lowered.
///
/// # Example
///
/// ```
/// use scfi_core::ScfiConfig;
/// use scfi_mds::{Lowering, MdsSpec};
///
/// let config = ScfiConfig::new(3)
///     .mds(MdsSpec::AesMixColumns)
///     .lowering(Lowering::Naive)
///     .error_bits(4);
/// assert_eq!(config.protection_level(), 3);
/// assert_eq!(config.error_bits_per_instance(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScfiConfig {
    protection_level: usize,
    mds: MdsSpec,
    adaptive_mds: bool,
    error_bits: Option<usize>,
    lowering: Lowering,
    pad: PadPolicy,
    selector_rails: usize,
    protect_outputs: bool,
    placement_seed: u64,
}

impl ScfiConfig {
    /// A configuration at protection level `n` with the paper's defaults:
    /// the lightweight MDS matrix, `n` error bits per instance, and
    /// Paar-style shared-XOR lowering.
    pub fn new(n: usize) -> Self {
        ScfiConfig {
            protection_level: n,
            mds: MdsSpec::ScfiLightweight,
            adaptive_mds: false,
            error_bits: None,
            lowering: Lowering::Paar,
            pad: PadPolicy::Zero,
            selector_rails: 1,
            protect_outputs: false,
            placement_seed: 0x5CF1,
        }
    }

    /// Selects the MDS matrix.
    pub fn mds(mut self, spec: MdsSpec) -> Self {
        self.mds = spec;
        self
    }

    /// Overrides the number of error-detection bits per MDS instance
    /// (default: the protection level).
    pub fn error_bits(mut self, e: usize) -> Self {
        self.error_bits = Some(e);
        self
    }

    /// Selects the XOR-network lowering strategy.
    pub fn lowering(mut self, strategy: Lowering) -> Self {
        self.lowering = strategy;
        self
    }

    /// Selects how unused MDS input positions are filled.
    pub fn pad(mut self, policy: PadPolicy) -> Self {
        self.pad = policy;
        self
    }

    /// Enables §7-style MDS size adaptation: the pass picks the smallest
    /// lightweight matrix (16, 24 or 32 bits) whose single instance fits
    /// the `{S_Ce, X_e, Mod}` triple, trading branch number for area.
    pub fn adaptive_mds(mut self, enable: bool) -> Self {
        self.adaptive_mds = enable;
        self
    }

    /// Hardens the pattern-matching selector signals against the §7
    /// limitation ("the selector signals of the MUXes used in the input
    /// pattern matching logic are 1-bit signals"): each edge match is
    /// computed on `rails` physically separate comparator rails and ANDed,
    /// so asserting a wrong match costs `rails` coordinated faults.
    ///
    /// # Panics
    ///
    /// Panics if `rails` is zero.
    pub fn selector_rails(mut self, rails: usize) -> Self {
        assert!(rails >= 1, "at least one selector rail is required");
        self.selector_rails = rails;
        self
    }

    /// Duplicates the Moore output logic λ and raises the alert on any
    /// mismatch — the §7 "protection for the output logic" extension.
    pub fn protect_outputs(mut self, enable: bool) -> Self {
        self.protect_outputs = enable;
        self
    }

    /// Seed for the deterministic modifier-placement search.
    pub fn placement_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self
    }

    /// The protection level `N`: minimum faults an attacker needs.
    pub fn protection_level(&self) -> usize {
        self.protection_level
    }

    /// The selected MDS matrix.
    pub fn mds_spec(&self) -> MdsSpec {
        self.mds
    }

    /// Error bits per MDS instance (`N` unless overridden).
    pub fn error_bits_per_instance(&self) -> usize {
        self.error_bits.unwrap_or(self.protection_level)
    }

    /// The XOR lowering strategy.
    pub fn lowering_strategy(&self) -> Lowering {
        self.lowering
    }

    /// The padding policy for unused MDS input positions.
    pub fn pad_policy(&self) -> PadPolicy {
        self.pad
    }

    /// Whether §7 MDS size adaptation is enabled.
    pub fn is_adaptive_mds(&self) -> bool {
        self.adaptive_mds
    }

    /// Number of selector rails (1 = the paper's baseline prototype).
    pub fn selector_rail_count(&self) -> usize {
        self.selector_rails
    }

    /// Whether the Moore output logic is duplicated and checked.
    pub fn outputs_protected(&self) -> bool {
        self.protect_outputs
    }

    /// The placement-search seed.
    pub fn seed(&self) -> u64 {
        self.placement_seed
    }
}

impl Default for ScfiConfig {
    /// Protection level 2 — the weakest meaningful SCFI configuration,
    /// matching the paper's formally analyzed setup (§6.4).
    fn default() -> Self {
        ScfiConfig::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ScfiConfig::default();
        assert_eq!(c.protection_level(), 2);
        assert_eq!(c.error_bits_per_instance(), 2);
        assert_eq!(c.mds_spec(), MdsSpec::ScfiLightweight);
        assert_eq!(c.lowering_strategy(), Lowering::Paar);
    }

    #[test]
    fn builder_overrides() {
        let c = ScfiConfig::new(4)
            .error_bits(6)
            .mds(MdsSpec::AesMixColumns)
            .lowering(Lowering::Naive)
            .placement_seed(99);
        assert_eq!(c.protection_level(), 4);
        assert_eq!(c.error_bits_per_instance(), 6);
        assert_eq!(c.mds_spec(), MdsSpec::AesMixColumns);
        assert_eq!(c.lowering_strategy(), Lowering::Naive);
        assert_eq!(c.seed(), 99);
    }

    #[test]
    fn error_bits_track_level_by_default() {
        assert_eq!(ScfiConfig::new(3).error_bits_per_instance(), 3);
        assert_eq!(ScfiConfig::new(4).error_bits_per_instance(), 4);
    }

    #[test]
    fn extension_knobs_default_to_paper_prototype() {
        let c = ScfiConfig::new(2);
        assert!(!c.is_adaptive_mds());
        assert_eq!(c.selector_rail_count(), 1);
        assert!(!c.outputs_protected());
        let c = c.adaptive_mds(true).selector_rails(2).protect_outputs(true);
        assert!(c.is_adaptive_mds());
        assert_eq!(c.selector_rail_count(), 2);
        assert!(c.outputs_protected());
    }

    #[test]
    #[should_panic(expected = "at least one selector rail")]
    fn zero_rails_rejected() {
        let _ = ScfiConfig::new(2).selector_rails(0);
    }
}
