//! The mix layer of `φ_FH` (paper Fig. 5) and the per-edge modifier solver.
//!
//! The hardened next-state function distributes the input triple
//! `{S_Ce, X_e, Mod}` over `k` 32-bit MDS instances ("the encoded current
//! state, the encoded control signals, and the modifier are split into k
//! shares"). Each instance outputs its share of the encoded next state in
//! its low positions and `e` error-detection bits in its topmost positions
//! ("SCFI uses … the e topmost bits of each output vector as error
//! detection bits").
//!
//! Because the diffusion layer is linear over GF(2), the modifier for a CFG
//! edge is the solution of a linear system per instance:
//!
//! ```text
//! M[out_rows, mod_cols] · mod  =  target[out_rows] ⊕ M[out_rows, known_cols] · known
//! ```
//!
//! The layout chooses modifier input positions such that the square matrix
//! `A = M[out_rows, mod_cols]` is invertible (a deterministic seeded search;
//! MDS matrices make random choices succeed almost immediately), caches
//! `A⁻¹`, and then every edge's modifier is a single matrix–vector product.

use scfi_gf2::{BitMatrix, BitVec};
use scfi_mds::MdsMatrix;

use crate::{PadPolicy, ScfiError};

/// Input/output placement and solver for one 32-bit MDS instance.
#[derive(Clone, Debug)]
pub struct InstanceLayout {
    /// `(instance input position, global state bit)` pairs.
    pub state_in: Vec<(usize, usize)>,
    /// `(instance input position, global control bit)` pairs.
    pub control_in: Vec<(usize, usize)>,
    /// `(instance input position, global modifier bit)` pairs.
    pub mod_in: Vec<(usize, usize)>,
    /// `(instance output position, global state bit)` pairs — this
    /// instance's share of the encoded next state.
    pub state_out: Vec<(usize, usize)>,
    /// Instance output positions holding error-detection bits.
    pub error_out: Vec<usize>,
    /// Inverse of `M[out_rows, mod_cols]`, cached for modifier solving.
    solve_inv: BitMatrix,
}

impl InstanceLayout {
    /// The constrained output rows: state share then error bits.
    fn out_rows(&self) -> Vec<usize> {
        self.state_out
            .iter()
            .map(|&(pos, _)| pos)
            .chain(self.error_out.iter().copied())
            .collect()
    }
}

/// The complete mix-layer layout across all instances.
///
/// Build with [`MixLayout::build`]; solve per-edge modifiers with
/// [`MixLayout::solve_modifier`]; evaluate the (software) forward function
/// with [`MixLayout::apply`].
#[derive(Clone, Debug)]
pub struct MixLayout {
    instances: Vec<InstanceLayout>,
    state_width: usize,
    control_width: usize,
    mod_width: usize,
    error_bits: usize,
    width: usize,
}

impl MixLayout {
    /// Computes a layout for `state_width` encoded state bits and
    /// `control_width` encoded control bits with `error_bits` error bits
    /// per instance.
    ///
    /// The instance count is the smallest `k` such that every instance can
    /// host its state share twice (input + matching modifier capacity),
    /// its control share, and `error_bits` modifier slots:
    /// `k = ⌈(2·sw + xw) / (32 − e)⌉`, adjusted upward if rounding leaves
    /// any single instance oversubscribed.
    ///
    /// # Errors
    ///
    /// [`ScfiError::ErrorBitsTooLarge`] if `error_bits` leaves no room, or
    /// [`ScfiError::LayoutUnsolvable`] if no invertible modifier placement
    /// is found (not expected for MDS matrices).
    pub fn build(
        state_width: usize,
        control_width: usize,
        error_bits: usize,
        mds: &MdsMatrix,
        seed: u64,
        pad: PadPolicy,
    ) -> Result<MixLayout, ScfiError> {
        let width = mds.width();
        if error_bits == 0 || error_bits >= width / 2 {
            return Err(ScfiError::ErrorBitsTooLarge { error_bits });
        }
        let capacity = width - error_bits;
        let need = 2 * state_width + control_width;
        let mut k = need.div_ceil(capacity).max(1);
        // Bump k until the balanced per-instance shares fit.
        loop {
            let s_max = state_width.div_ceil(k);
            let x_max = control_width.div_ceil(k);
            if 2 * s_max + x_max + error_bits <= width {
                break;
            }
            k += 1;
        }

        let matrix = mds.matrix();
        let mut rng = seed.max(1);
        let mut next_rand = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545F4914F6CDD1D)
        };

        let mut instances = Vec::with_capacity(k);
        let mut mod_cursor = 0usize;
        for j in 0..k {
            // Balanced round-robin shares.
            let state_share: Vec<usize> = (0..state_width).filter(|g| g % k == j).collect();
            let control_share: Vec<usize> = (0..control_width).filter(|g| g % k == j).collect();
            let n_mod = state_share.len() + error_bits;

            // Output rows: state share low, error bits topmost.
            let state_out: Vec<(usize, usize)> = state_share
                .iter()
                .enumerate()
                .map(|(i, &g)| (i, g))
                .collect();
            let error_out: Vec<usize> = (width - error_bits..width).collect();
            let rows: Vec<usize> = state_out
                .iter()
                .map(|&(p, _)| p)
                .chain(error_out.iter().copied())
                .collect();

            // Modifier placement: the selected output rows of the full-rank
            // MDS matrix form a full-row-rank n_mod × 32 matrix, so its
            // pivot columns (over a seeded column permutation, for
            // placement diversity) give a guaranteed-invertible square
            // solver submatrix.
            let mut perm: Vec<usize> = (0..width).collect();
            for i in 0..width - 1 {
                let r = (next_rand() as usize) % (width - i);
                perm.swap(i, i + r);
            }
            let permuted = matrix.select(&rows, &perm);
            let pivots = permuted.pivot_columns();
            if pivots.len() != n_mod {
                return Err(ScfiError::LayoutUnsolvable {
                    instance: j,
                    tried: 1,
                });
            }
            let mut mod_positions: Vec<usize> = pivots.iter().map(|&i| perm[i]).collect();
            mod_positions.sort_unstable();
            let solve_inv = matrix.select(&rows, &mod_positions).inverse().ok_or(
                ScfiError::LayoutUnsolvable {
                    instance: j,
                    tried: 1,
                },
            )?;
            let mod_in: Vec<(usize, usize)> = mod_positions
                .iter()
                .map(|&p| {
                    let g = mod_cursor;
                    mod_cursor += 1;
                    (p, g)
                })
                .collect();

            // Knowns fill the remaining positions: state share first, then
            // the control share; leftovers are tied to constant zero.
            let free: Vec<usize> = (0..width).filter(|p| !mod_positions.contains(p)).collect();
            assert!(
                free.len() >= state_share.len() + control_share.len(),
                "k sizing guarantees capacity"
            );
            let mut state_in: Vec<(usize, usize)> = state_share
                .iter()
                .enumerate()
                .map(|(i, &g)| (free[i], g))
                .collect();
            let mut control_in: Vec<(usize, usize)> = control_share
                .iter()
                .enumerate()
                .map(|(i, &g)| (free[state_share.len() + i], g))
                .collect();
            // Padding: either leave the leftover positions to constant
            // zero (they fold away downstream) or absorb duplicates of the
            // full encoded state/control word so the complete 32-bit
            // matrix is exercised, as in the paper's implementation.
            if pad == PadPolicy::Replicate {
                let n_known = state_share.len() + control_share.len();
                for (idx, &p) in free[n_known..].iter().enumerate() {
                    let g = idx % (state_width + control_width);
                    if g < state_width {
                        state_in.push((p, g));
                    } else {
                        control_in.push((p, g - state_width));
                    }
                }
            }
            instances.push(InstanceLayout {
                state_in,
                control_in,
                mod_in,
                state_out,
                error_out,
                solve_inv,
            });
        }
        Ok(MixLayout {
            instances,
            state_width,
            control_width,
            mod_width: mod_cursor,
            error_bits,
            width,
        })
    }

    /// Number of MDS instances (`k` in Fig. 5).
    pub fn k(&self) -> usize {
        self.instances.len()
    }

    /// Per-instance layouts.
    pub fn instances(&self) -> &[InstanceLayout] {
        &self.instances
    }

    /// Encoded state width `|S_Ne|`.
    pub fn state_width(&self) -> usize {
        self.state_width
    }

    /// Encoded control width `|X_e|`.
    pub fn control_width(&self) -> usize {
        self.control_width
    }

    /// Total modifier width across instances.
    pub fn mod_width(&self) -> usize {
        self.mod_width
    }

    /// Error bits per instance.
    pub fn error_bits(&self) -> usize {
        self.error_bits
    }

    /// Total error bits (`k · e`, the `|E|` of the paper's success-probability
    /// formula).
    pub fn total_error_bits(&self) -> usize {
        self.error_bits * self.instances.len()
    }

    /// Assembles the 32-bit input vector of instance `j`.
    fn instance_input(
        &self,
        j: usize,
        state: &BitVec,
        control: &BitVec,
        modifier: &BitVec,
    ) -> BitVec {
        let inst = &self.instances[j];
        let mut v = BitVec::zeros(self.width);
        for &(pos, g) in &inst.state_in {
            if state.get(g) {
                v.set(pos, true);
            }
        }
        for &(pos, g) in &inst.control_in {
            if control.get(g) {
                v.set(pos, true);
            }
        }
        for &(pos, g) in &inst.mod_in {
            if modifier.get(g) {
                v.set(pos, true);
            }
        }
        v
    }

    /// Software forward evaluation of `φ_FH`: returns
    /// `(next_state, error_bits)` where `error_bits` concatenates every
    /// instance's error positions (all ones ⇔ fault-free valid edge).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn apply(
        &self,
        mds: &MdsMatrix,
        state: &BitVec,
        control: &BitVec,
        modifier: &BitVec,
    ) -> (BitVec, BitVec) {
        assert_eq!(state.len(), self.state_width, "state width");
        assert_eq!(control.len(), self.control_width, "control width");
        assert_eq!(modifier.len(), self.mod_width, "modifier width");
        let mut next = BitVec::zeros(self.state_width);
        let mut errors = BitVec::zeros(self.total_error_bits());
        let mut err_cursor = 0usize;
        for (j, inst) in self.instances.iter().enumerate() {
            let out = mds.mul(&self.instance_input(j, state, control, modifier));
            for &(pos, g) in &inst.state_out {
                if out.get(pos) {
                    next.set(g, true);
                }
            }
            for &pos in &inst.error_out {
                if out.get(pos) {
                    errors.set(err_cursor, true);
                }
                err_cursor += 1;
            }
        }
        (next, errors)
    }

    /// Solves the modifier for one CFG edge:
    /// `MDS(S_Ce, X_e, Mod) = S_Ne` with all error bits forced to one
    /// (requirement R4 / the `MDS(S_Ce, X_e, Mod) = S_Ne` equation of
    /// §5.1).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn solve_modifier(
        &self,
        mds: &MdsMatrix,
        from: &BitVec,
        control: &BitVec,
        target: &BitVec,
    ) -> BitVec {
        assert_eq!(from.len(), self.state_width, "state width");
        assert_eq!(control.len(), self.control_width, "control width");
        assert_eq!(target.len(), self.state_width, "target width");
        let matrix = mds.matrix();
        let zero_mod = BitVec::zeros(self.mod_width);
        let mut modifier = BitVec::zeros(self.mod_width);
        for (j, inst) in self.instances.iter().enumerate() {
            // Contribution of the known inputs with modifier zero.
            let known = matrix.mul_vec(&self.instance_input(j, from, control, &zero_mod));
            let rows = inst.out_rows();
            // Desired outputs: target state share, then all-ones errors.
            let mut residual = BitVec::zeros(rows.len());
            for (i, &(pos, g)) in inst.state_out.iter().enumerate() {
                let want = target.get(g);
                if want != known.get(pos) {
                    residual.set(i, true);
                }
            }
            for (i, &pos) in inst.error_out.iter().enumerate() {
                if !known.get(pos) {
                    residual.set(inst.state_out.len() + i, true);
                }
            }
            let solution = inst.solve_inv.mul_vec(&residual);
            for (i, &(_pos, g)) in inst.mod_in.iter().enumerate() {
                if solution.get(i) {
                    modifier.set(g, true);
                }
            }
        }
        modifier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_mds::MdsSpec;

    use crate::PadPolicy;

    fn mds() -> MdsMatrix {
        MdsSpec::ScfiLightweight.build()
    }

    #[test]
    fn small_layout_fits_one_instance() {
        // sw=6, xw=5, e=2 → (12+5)/30 → k=1.
        let l = MixLayout::build(6, 5, 2, &mds(), 1, PadPolicy::Zero).unwrap();
        assert_eq!(l.k(), 1);
        assert_eq!(l.mod_width(), 6 + 2);
        assert_eq!(l.total_error_bits(), 2);
    }

    #[test]
    fn larger_layout_spans_instances() {
        // sw=11, xw=10, e=4 → (22+10)/28 → k=2.
        let l = MixLayout::build(11, 10, 4, &mds(), 1, PadPolicy::Zero).unwrap();
        assert_eq!(l.k(), 2);
        assert_eq!(l.mod_width(), 11 + 2 * 4);
        // Every global state/control/mod bit appears exactly once.
        let mut seen_state = [0; 11];
        let mut seen_ctrl = [0; 10];
        let mut seen_mod = vec![0; l.mod_width()];
        for inst in l.instances() {
            for &(_, g) in &inst.state_in {
                seen_state[g] += 1;
            }
            for &(_, g) in &inst.control_in {
                seen_ctrl[g] += 1;
            }
            for &(_, g) in &inst.mod_in {
                seen_mod[g] += 1;
            }
        }
        assert!(seen_state.iter().all(|&c| c == 1));
        assert!(seen_ctrl.iter().all(|&c| c == 1));
        assert!(seen_mod.iter().all(|&c| c == 1));
    }

    #[test]
    fn positions_are_disjoint_within_instances() {
        let l = MixLayout::build(9, 7, 3, &mds(), 42, PadPolicy::Zero).unwrap();
        for inst in l.instances() {
            let mut used = std::collections::HashSet::new();
            for &(p, _) in inst
                .state_in
                .iter()
                .chain(&inst.control_in)
                .chain(&inst.mod_in)
            {
                assert!(used.insert(p), "position {p} reused");
                assert!(p < 32);
            }
        }
    }

    #[test]
    fn solve_then_apply_round_trips() {
        let mds = mds();
        let l = MixLayout::build(6, 5, 2, &mds, 7, PadPolicy::Zero).unwrap();
        let from = BitVec::from_u64(0b101011, 6);
        let ctrl = BitVec::from_u64(0b11001, 5);
        let target = BitVec::from_u64(0b010111, 6);
        let m = l.solve_modifier(&mds, &from, &ctrl, &target);
        let (next, errors) = l.apply(&mds, &from, &ctrl, &m);
        assert_eq!(next, target);
        assert_eq!(errors.count_ones(), errors.len(), "all error bits one");
    }

    #[test]
    fn round_trip_across_many_edges_and_sizes() {
        let mds = mds();
        for (sw, xw, e) in [(5, 4, 2), (8, 8, 3), (11, 10, 4), (13, 6, 2)] {
            let l = MixLayout::build(sw, xw, e, &mds, 3, PadPolicy::Zero).unwrap();
            let mut rng = 0x1234_5678u64;
            for _ in 0..25 {
                let mut draw = |w: usize| {
                    rng ^= rng >> 12;
                    rng ^= rng << 25;
                    rng ^= rng >> 27;
                    BitVec::from_u64(rng.wrapping_mul(0x2545F4914F6CDD1D) & ((1u64 << w) - 1), w)
                };
                let from = draw(sw);
                let ctrl = draw(xw);
                let target = draw(sw);
                let m = l.solve_modifier(&mds, &from, &ctrl, &target);
                let (next, errors) = l.apply(&mds, &from, &ctrl, &m);
                assert_eq!(next, target, "sw={sw} xw={xw} e={e}");
                assert_eq!(errors.count_ones(), errors.len());
            }
        }
    }

    #[test]
    fn wrong_modifier_breaks_errors_or_state() {
        // Using edge A's modifier with edge B's inputs must not produce a
        // clean (target, all-ones) result — this is the core of the
        // modifier-selection fault argument (§6.3 step 2).
        let mds = mds();
        let l = MixLayout::build(6, 5, 2, &mds, 7, PadPolicy::Zero).unwrap();
        let from_a = BitVec::from_u64(0b101011, 6);
        let ctrl_a = BitVec::from_u64(0b11001, 5);
        let target_a = BitVec::from_u64(0b010111, 6);
        let m_a = l.solve_modifier(&mds, &from_a, &ctrl_a, &target_a);
        let from_b = BitVec::from_u64(0b110101, 6);
        let (next, errors) = l.apply(&mds, &from_b, &ctrl_a, &m_a);
        let clean = next == target_a && errors.count_ones() == errors.len();
        assert!(!clean, "cross-edge modifier reuse must corrupt the output");
    }

    #[test]
    fn error_bit_bounds_rejected() {
        let m = mds();
        assert!(matches!(
            MixLayout::build(6, 5, 0, &m, 1, PadPolicy::Zero),
            Err(ScfiError::ErrorBitsTooLarge { .. })
        ));
        assert!(matches!(
            MixLayout::build(6, 5, 16, &m, 1, PadPolicy::Zero),
            Err(ScfiError::ErrorBitsTooLarge { .. })
        ));
    }

    #[test]
    fn replicate_padding_fills_every_position() {
        let mds = mds();
        let l = MixLayout::build(6, 5, 2, &mds, 7, PadPolicy::Replicate).unwrap();
        for inst in l.instances() {
            let occupied = inst.state_in.len() + inst.control_in.len() + inst.mod_in.len();
            assert_eq!(occupied, 32, "every MDS input position must be driven");
            let mut used = std::collections::HashSet::new();
            for &(p, _) in inst
                .state_in
                .iter()
                .chain(&inst.control_in)
                .chain(&inst.mod_in)
            {
                assert!(used.insert(p), "position {p} reused");
            }
        }
    }

    #[test]
    fn replicate_padding_round_trips() {
        let mds = mds();
        for (sw, xw, e) in [(6, 5, 2), (11, 10, 4)] {
            let l = MixLayout::build(sw, xw, e, &mds, 3, PadPolicy::Replicate).unwrap();
            let mut rng = 0xABCDu64;
            for _ in 0..20 {
                let mut draw = |w: usize| {
                    rng ^= rng >> 12;
                    rng ^= rng << 25;
                    rng ^= rng >> 27;
                    BitVec::from_u64(rng.wrapping_mul(0x2545F4914F6CDD1D) & ((1u64 << w) - 1), w)
                };
                let from = draw(sw);
                let ctrl = draw(xw);
                let target = draw(sw);
                let m = l.solve_modifier(&mds, &from, &ctrl, &target);
                let (next, errors) = l.apply(&mds, &from, &ctrl, &m);
                assert_eq!(next, target, "sw={sw} xw={xw} e={e}");
                assert_eq!(errors.count_ones(), errors.len());
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = mds();
        let a = MixLayout::build(9, 7, 3, &m, 11, PadPolicy::Zero).unwrap();
        let b = MixLayout::build(9, 7, 3, &m, 11, PadPolicy::Zero).unwrap();
        for (ia, ib) in a.instances().iter().zip(b.instances()) {
            assert_eq!(ia.mod_in, ib.mod_in);
        }
    }

    #[test]
    fn input_faults_avalanche_into_errors() {
        // Flipping any single *input* bit of a solved edge must corrupt the
        // output (state ≠ target or some error bit cleared) — FT1/FT2.
        let mds = mds();
        let l = MixLayout::build(6, 5, 2, &mds, 7, PadPolicy::Zero).unwrap();
        let from = BitVec::from_u64(0b101011, 6);
        let ctrl = BitVec::from_u64(0b11001, 5);
        let target = BitVec::from_u64(0b010111, 6);
        let m = l.solve_modifier(&mds, &from, &ctrl, &target);
        for bit in 0..6 {
            let mut f = from.clone();
            f.set(bit, !f.get(bit));
            let (next, errors) = l.apply(&mds, &f, &ctrl, &m);
            assert!(
                next != target || errors.count_ones() != errors.len(),
                "state bit {bit} flip undetected"
            );
        }
        for bit in 0..5 {
            let mut c = ctrl.clone();
            c.set(bit, !c.get(bit));
            let (next, errors) = l.apply(&mds, &from, &c, &m);
            assert!(
                next != target || errors.count_ones() != errors.len(),
                "control bit {bit} flip undetected"
            );
        }
    }
}
