//! The SCFI pass: fault-hardening FSM next-state logic with an MDS-based
//! `φ_FH`, plus the classical redundancy baseline it is evaluated against.
//!
//! This crate is the paper's primary contribution (§4–§5), reimplemented on
//! the reproduction's substrates:
//!
//! * [`ScfiConfig`] — protection level `N`, MDS matrix choice, error-bit
//!   count, XOR lowering strategy (the knobs §5.1 exposes),
//! * [`MixLayout`] — the mix layer of Fig. 5: how the triple
//!   `{S_Ce, X_e, Mod}` is distributed over `k` 32-bit MDS instances, with
//!   the per-instance linear solver that computes modifiers,
//! * [`harden`] / [`HardenedFsm`] — the full pass of Fig. 7: input pattern
//!   matching → modifier selection → mix → diffusion → unmix → error AND,
//!   producing a gate-level netlist with a non-escapable all-zero ERROR
//!   state and an `alert` output,
//! * [`redundancy`] / [`RedundantFsm`] — the manually-protected comparison
//!   point of §6.1: `N`-fold instantiation of the unprotected next-state
//!   logic with a register-mismatch detector,
//! * [`verify`] — lock-step equivalence checks of either protected netlist
//!   against the behavioral FSM (the fault-free `FSM_F̄` of §3.2).
//!
//! # Example
//!
//! ```
//! use scfi_core::{harden, ScfiConfig};
//! use scfi_fsm::parse_fsm;
//!
//! let fsm = parse_fsm(
//!     "fsm t { inputs go; state A { if go -> B; } state B { goto A; } }",
//! )?;
//! let hardened = harden(&fsm, &ScfiConfig::new(3))?;
//! assert!(hardened.state_code().min_distance() >= 3);
//! hardened.check_equivalence(200, 7)?; // lock-step vs the behavioral model
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod config;
mod error;
mod harden;
mod layout;
mod redundancy;
pub mod verify;

pub use config::{PadPolicy, ScfiConfig};
pub use error::ScfiError;
pub use harden::{harden, HardenRegions, HardenReport, HardenedFsm, StateDecode};
pub use layout::{InstanceLayout, MixLayout};
pub use redundancy::{redundancy, RedundantFsm};
