//! The `scfi serve` HTTP job server: a hand-rolled HTTP/1.1 endpoint
//! over [`std::net::TcpListener`] (the workspace has zero external
//! dependencies — no async runtime, no HTTP library) in front of the
//! campaign and certification engines.
//!
//! # Protocol
//!
//! | Method & path            | Purpose                                  |
//! |--------------------------|------------------------------------------|
//! | `POST /v1/jobs`          | Submit a job (JSON [`JobSpec`] body)     |
//! | `GET /v1/jobs/{id}`      | Status: state, progress, cache hit       |
//! | `GET /v1/jobs/{id}/result` | Result document once finished          |
//! | `DELETE /v1/jobs/{id}`   | Cooperative cancellation                 |
//! | `GET /v1/healthz`        | Liveness, queue depth, cache counters    |
//!
//! Every connection handles one request (`Connection: close`).
//! Submissions land in a bounded sharded queue drained by a fixed worker
//! pool; a full queue answers `429` with `Retry-After` instead of
//! accepting unbounded work. Each job runs under its own [`RunControl`]
//! (deadline armed at run start, injection budget, cancel token) and is
//! wrapped in [`std::panic::catch_unwind`] — a poisoned job fails alone,
//! the server keeps serving.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use scfi_faultsim::{RunControl, StopReason};
use scfi_telemetry::Telemetry;

use crate::cache::CompileCache;
use crate::jobs::{ApiError, JobOutcome, JobSpec};
use crate::json::{obj, parse, Json};

/// Tuning knobs for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before `429`.
    pub queue_capacity: usize,
    /// Maximum cached compiled models.
    pub cache_capacity: usize,
    /// How long a finished job (done, failed or cancelled) stays
    /// retrievable before the registry retires it. Expired jobs are swept
    /// on submission, so the registry stays bounded under sustained load
    /// instead of growing forever.
    pub job_ttl: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 32,
            job_ttl: Duration::from_secs(900),
        }
    }
}

/// A job's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

struct JobInner {
    state: JobState,
    /// Result document (success, or the marked partial of an
    /// interrupted run).
    result: Option<(String, &'static str)>,
    /// Failure / stop description.
    error: Option<String>,
    /// Live control handle once the job is running.
    control: Option<RunControl>,
    /// Set by `DELETE` — honored before start and at wave boundaries.
    cancel_requested: bool,
    /// Whether the compiled model came from the cache.
    cache_hit: Option<bool>,
    /// Canonical-DSL digest of the prepared model.
    digest: Option<u64>,
    /// When the job reached a terminal state (feeds TTL retirement).
    finished_at: Option<Instant>,
}

struct Job {
    id: u64,
    spec: JobSpec,
    /// Submission instant (feeds the queue-wait histogram).
    submitted_at: Instant,
    inner: Mutex<JobInner>,
}

impl Job {
    fn new(id: u64, spec: JobSpec) -> Job {
        Job {
            id,
            spec,
            submitted_at: Instant::now(),
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                result: None,
                error: None,
                control: None,
                cancel_requested: false,
                cache_hit: None,
                digest: None,
                finished_at: None,
            }),
        }
    }
}

/// A bounded multi-shard FIFO: submissions round-robin across shards,
/// workers drain their own shard first and steal from the others, and a
/// shared length counter enforces the global bound (full ⇒ `429`).
///
/// Workers block on a condvar instead of polling: a push signals one
/// waiter, so an idle server burns no CPU and a submission starts running
/// with signal latency instead of a fixed poll interval.
struct ShardedQueue {
    shards: Vec<Mutex<std::collections::VecDeque<Arc<Job>>>>,
    len: AtomicUsize,
    capacity: usize,
    next: AtomicUsize,
    /// Guards nothing — pairs with `signal` for the work-arrival wait.
    signal_lock: Mutex<()>,
    signal: Condvar,
}

impl ShardedQueue {
    fn new(shards: usize, capacity: usize) -> ShardedQueue {
        ShardedQueue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            len: AtomicUsize::new(0),
            capacity: capacity.max(1),
            next: AtomicUsize::new(0),
            signal_lock: Mutex::new(()),
            signal: Condvar::new(),
        }
    }

    /// Enqueues the job, or hands it back when the queue is at capacity.
    fn push(&self, job: Arc<Job>) -> Result<(), Arc<Job>> {
        // Reserve a length slot first so concurrent submitters can never
        // jointly exceed the capacity.
        let mut len = self.len.load(Ordering::Relaxed);
        loop {
            if len >= self.capacity {
                return Err(job);
            }
            match self
                .len
                .compare_exchange_weak(len, len + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => len = actual,
            }
        }
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard]
            .lock()
            .expect("queue shard")
            .push_back(job);
        // Take the signal lock before notifying so a worker that found the
        // queue empty either sees the new depth in its locked re-check or
        // is already parked in `wait` and receives this notification —
        // the push can never fall into the gap between the two.
        let _guard = self.signal_lock.lock().expect("queue signal");
        self.signal.notify_one();
        Ok(())
    }

    /// Parks the calling worker until work may be available (or the wait
    /// times out as a liveness backstop). `should_stop` is re-checked
    /// under the signal lock so a shutdown broadcast is never missed.
    fn wait_for_work(&self, should_stop: impl Fn() -> bool) {
        let guard = self.signal_lock.lock().expect("queue signal");
        if should_stop() || self.depth() > 0 {
            return;
        }
        let _ = self
            .signal
            .wait_timeout(guard, Duration::from_millis(250))
            .expect("queue signal");
    }

    /// Wakes every parked worker (shutdown broadcast).
    fn wake_all(&self) {
        let _guard = self.signal_lock.lock().expect("queue signal");
        self.signal.notify_all();
    }

    /// Pops from `home` first, then steals round-robin from the rest.
    fn pop(&self, home: usize) -> Option<Arc<Job>> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = (home + i) % n;
            let job = self.shards[shard].lock().expect("queue shard").pop_front();
            if let Some(job) = job {
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn depth(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

struct Registry {
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    queue: ShardedQueue,
    cache: CompileCache,
    shutdown: AtomicBool,
    options: ServerOptions,
    /// The server's recording telemetry: request/queue/job latency
    /// histograms plus every campaign and certification series the
    /// engines emit while running jobs. Exported by `GET /v1/metrics`.
    telemetry: Telemetry,
}

impl Registry {
    fn counts(&self) -> [usize; 5] {
        let jobs = self.jobs.lock().expect("job registry");
        let mut counts = [0usize; 5];
        for job in jobs.values() {
            let idx = match job.inner.lock().expect("job").state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            };
            counts[idx] += 1;
        }
        counts
    }

    /// Retires finished jobs older than the configured TTL. Called on
    /// every submission, so the registry size is bounded by the arrival
    /// rate times the TTL rather than by the server's lifetime.
    fn sweep_expired(&self) {
        let ttl = self.options.job_ttl;
        let mut evicted = 0u64;
        {
            let mut jobs = self.jobs.lock().expect("job registry");
            jobs.retain(|_, job| {
                let keep = match job.inner.lock().expect("job").finished_at {
                    Some(at) => at.elapsed() <= ttl,
                    None => true,
                };
                if !keep {
                    evicted += 1;
                }
                keep
            });
            self.telemetry
                .gauge("scfi_serve_registry_jobs")
                .set(jobs.len() as u64);
        }
        if evicted > 0 {
            self.telemetry
                .counter("scfi_serve_jobs_evicted_total")
                .add(evicted);
        }
    }
}

/// A running `scfi serve` instance. Binding spawns the accept loop and
/// the worker pool; [`Server::shutdown`] (or drop) stops both.
pub struct Server {
    registry: Arc<Registry>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// starts serving in background threads.
    pub fn bind(addr: &str, options: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(Registry {
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            queue: ShardedQueue::new(options.workers, options.queue_capacity),
            cache: CompileCache::new(options.cache_capacity),
            shutdown: AtomicBool::new(false),
            options,
            telemetry: Telemetry::recording(),
        });

        let workers = (0..options.workers.max(1))
            .map(|home| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || worker_loop(&registry, home))
            })
            .collect();

        let accept_registry = Arc::clone(&registry);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_registry));

        Ok(Server {
            registry,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels running jobs, and joins every thread.
    pub fn shutdown(&mut self) {
        self.registry.shutdown.store(true, Ordering::Relaxed);
        {
            let jobs = self.registry.jobs.lock().expect("job registry");
            for job in jobs.values() {
                let inner = job.inner.lock().expect("job");
                if let Some(control) = &inner.control {
                    control.cancel();
                }
            }
        }
        // Wake the parked workers and the blocking accept (a throwaway
        // local connection — the accept loop re-checks the flag per
        // connection, so one wake suffices).
        self.registry.queue.wake_all();
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the server shuts down (used by the CLI, which serves
    /// until killed).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, registry: &Arc<Registry>) {
    // Blocking accept: no poll interval between a client's connect and
    // the dispatch of its connection. `Server::shutdown` unblocks the
    // loop with a throwaway local connection after setting the flag.
    while !registry.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if registry.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let registry = Arc::clone(registry);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &registry);
                });
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(registry: &Arc<Registry>, home: usize) {
    while !registry.shutdown.load(Ordering::Relaxed) {
        let Some(job) = registry.queue.pop(home) else {
            registry
                .queue
                .wait_for_work(|| registry.shutdown.load(Ordering::Relaxed));
            continue;
        };
        run_one(registry, &job);
    }
}

/// Executes one job end to end, with panic isolation: a panicking
/// prepare or campaign marks this job failed and the worker survives.
fn run_one(registry: &Registry, job: &Job) {
    registry
        .telemetry
        .histogram("scfi_serve_queue_wait_ns")
        .observe_duration(job.submitted_at.elapsed());
    // Claim the job, honoring a cancellation that arrived while queued.
    {
        let mut inner = job.inner.lock().expect("job");
        if inner.cancel_requested {
            inner.state = JobState::Cancelled;
            inner.error = Some("cancelled while queued".to_string());
            inner.finished_at = Some(Instant::now());
            return;
        }
        inner.state = JobState::Running;
    }
    let run_start = Instant::now();

    let spec = &job.spec;
    let prepared = catch_unwind(AssertUnwindSafe(|| {
        registry
            .cache
            .get_or_prepare(&spec.fsm, spec.config, spec.level)
    }));
    let (prepared, cache_hit) = match prepared {
        Ok(Ok(pair)) => pair,
        Ok(Err(message)) => {
            let mut inner = job.inner.lock().expect("job");
            inner.state = JobState::Failed;
            inner.error = Some(message);
            inner.finished_at = Some(Instant::now());
            return;
        }
        Err(payload) => {
            let mut inner = job.inner.lock().expect("job");
            inner.state = JobState::Failed;
            inner.error = Some(format!(
                "model preparation panicked: {}",
                panic_text(&payload)
            ));
            inner.finished_at = Some(Instant::now());
            return;
        }
    };

    // Arm the control handle (deadline starts now, not at submission)
    // and expose it for DELETE; re-check cancellation under the same
    // lock so a cancel racing this window is never lost.
    let control = spec.run_control();
    {
        let mut inner = job.inner.lock().expect("job");
        inner.cache_hit = Some(cache_hit);
        inner.digest = Some(prepared.digest);
        inner.control = Some(control.clone());
        if inner.cancel_requested {
            control.cancel();
        }
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        crate::jobs::run_job(spec, &prepared, &control, &registry.telemetry)
    }));
    let run_elapsed = run_start.elapsed();
    registry
        .telemetry
        .histogram("scfi_serve_job_run_ns")
        .observe_duration(run_elapsed);
    registry
        .telemetry
        .counter("scfi_serve_worker_busy_ns_total")
        .add(run_elapsed.as_nanos() as u64);
    registry
        .telemetry
        .record_span("serve_job", run_start, run_elapsed);

    let mut inner = job.inner.lock().expect("job");
    match outcome {
        Ok(JobOutcome::Done { body, content_type }) => {
            inner.state = JobState::Done;
            inner.result = Some((body, content_type));
        }
        Ok(JobOutcome::Stopped { reason, body }) => {
            inner.state = match reason {
                StopReason::Cancelled => JobState::Cancelled,
                _ => JobState::Failed,
            };
            inner.error = Some(format!("stopped early: {reason}"));
            inner.result = Some((body, "application/json"));
        }
        Ok(JobOutcome::Failed { message }) => {
            inner.state = JobState::Failed;
            inner.error = Some(message);
        }
        Err(payload) => {
            inner.state = JobState::Failed;
            inner.error = Some(format!("job panicked: {}", panic_text(&payload)));
        }
    }
    inner.finished_at = Some(Instant::now());
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Largest accepted request body (a DSL FSM is a few KiB; this is far
/// above any legitimate request).
const MAX_BODY: usize = 1 << 20;

fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_BODY {
            return Err("headers too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-UTF-8 headers")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err("body too large".to_string());
    }

    let body_start = header_end + 4;
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "non-UTF-8 body")?;
    Ok(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: Option<u64>,
}

impl Response {
    fn json(status: u16, doc: Json) -> Response {
        let mut body = doc.encode();
        body.push('\n');
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    fn error(e: &ApiError) -> Response {
        Response {
            status: e.status,
            content_type: "application/json",
            body: e.body(),
            retry_after: None,
        }
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason_phrase(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// Stable per-endpoint label for the request-latency histograms (the
/// metric name embeds the endpoint class, keeping the exposition free of
/// label syntax the hand-rolled renderer would have to escape).
fn endpoint_class(method: &str, path: &str) -> &'static str {
    let path = path.trim_end_matches('/');
    match (method, path) {
        ("GET", "/v1/healthz") => "healthz",
        ("GET", "/v1/metrics") => "metrics",
        ("POST", "/v1/jobs") => "submit",
        (method, path) if path.starts_with("/v1/jobs/") => match method {
            "DELETE" => "cancel",
            "GET" if path.ends_with("/result") => "result",
            "GET" => "status",
            _ => "other",
        },
        _ => "other",
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Arc<Registry>) -> std::io::Result<()> {
    let start = Instant::now();
    let (resp, endpoint) = match read_request(&mut stream) {
        Ok(req) => (
            route(&req, registry),
            endpoint_class(&req.method, &req.path),
        ),
        Err(message) => (
            Response::error(&ApiError::bad_request("bad_request", message)),
            "other",
        ),
    };
    let result = write_response(&mut stream, &resp);
    registry
        .telemetry
        .counter("scfi_serve_requests_total")
        .inc();
    registry
        .telemetry
        .histogram(&format!("scfi_serve_request_{endpoint}_ns"))
        .observe_duration(start.elapsed());
    result
}

fn route(req: &Request, registry: &Arc<Registry>) -> Response {
    let path = req.path.trim_end_matches('/');
    match (req.method.as_str(), path) {
        ("GET", "/v1/healthz") => health(registry),
        ("GET", "/v1/metrics") => metrics(registry),
        ("POST", "/v1/jobs") => submit(req, registry),
        (method, path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            let (id_text, want_result) = match rest.strip_suffix("/result") {
                Some(id) => (id, true),
                None => (rest, false),
            };
            let Ok(id) = id_text.parse::<u64>() else {
                return Response::error(&ApiError {
                    status: 404,
                    code: "unknown_job",
                    message: format!("no job `{id_text}`"),
                });
            };
            let job = registry
                .jobs
                .lock()
                .expect("job registry")
                .get(&id)
                .cloned();
            let Some(job) = job else {
                return Response::error(&ApiError {
                    status: 404,
                    code: "unknown_job",
                    message: format!("no job {id}"),
                });
            };
            match (method, want_result) {
                ("GET", false) => status(&job),
                ("GET", true) => result(&job),
                ("DELETE", false) => cancel(&job),
                _ => Response::error(&ApiError {
                    status: 405,
                    code: "bad_method",
                    message: format!("{} not allowed here", req.method),
                }),
            }
        }
        ("POST", _) | ("GET", _) | ("DELETE", _) => Response::error(&ApiError {
            status: 404,
            code: "unknown_path",
            message: format!("no route for {path}"),
        }),
        (method, _) => Response::error(&ApiError {
            status: 405,
            code: "bad_method",
            message: format!("method {method} not supported"),
        }),
    }
}

fn health(registry: &Registry) -> Response {
    let [queued, running, done, failed, cancelled] = registry.counts();
    Response::json(
        200,
        obj(vec![
            ("status", Json::Str("ok".into())),
            (
                "jobs",
                obj(vec![
                    ("queued", Json::Int(queued as i64)),
                    ("running", Json::Int(running as i64)),
                    ("done", Json::Int(done as i64)),
                    ("failed", Json::Int(failed as i64)),
                    ("cancelled", Json::Int(cancelled as i64)),
                ]),
            ),
            (
                "cache",
                obj(vec![
                    ("hits", Json::Int(registry.cache.hits() as i64)),
                    ("misses", Json::Int(registry.cache.misses() as i64)),
                    ("entries", Json::Int(registry.cache.len() as i64)),
                ]),
            ),
            (
                "queue",
                obj(vec![
                    ("depth", Json::Int(registry.queue.depth() as i64)),
                    (
                        "capacity",
                        Json::Int(registry.options.queue_capacity as i64),
                    ),
                ]),
            ),
        ]),
    )
}

/// `GET /v1/metrics`: the full telemetry registry in Prometheus text
/// exposition format. The point-in-time gauges (queue depth, cache
/// counters, registry size) are refreshed from the same live sources
/// `/v1/healthz` reads, so the two endpoints can never disagree.
fn metrics(registry: &Registry) -> Response {
    let t = &registry.telemetry;
    t.gauge("scfi_serve_queue_depth")
        .set(registry.queue.depth() as u64);
    t.gauge("scfi_serve_cache_hits").set(registry.cache.hits());
    t.gauge("scfi_serve_cache_misses")
        .set(registry.cache.misses());
    t.gauge("scfi_serve_cache_entries")
        .set(registry.cache.len() as u64);
    t.gauge("scfi_serve_registry_jobs")
        .set(registry.jobs.lock().expect("job registry").len() as u64);
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: t.render_prometheus(),
        retry_after: None,
    }
}

fn submit(req: &Request, registry: &Arc<Registry>) -> Response {
    registry.sweep_expired();
    registry
        .telemetry
        .counter("scfi_serve_jobs_submitted_total")
        .inc();
    let doc = match parse(&req.body) {
        Ok(doc) => doc,
        Err(e) => {
            return Response::error(&ApiError::bad_request("bad_json", e.to_string()));
        }
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(e) => return Response::error(&e),
    };
    let id = registry.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job::new(id, spec));
    registry
        .jobs
        .lock()
        .expect("job registry")
        .insert(id, Arc::clone(&job));
    if registry.queue.push(Arc::clone(&job)).is_err() {
        // Backpressure: drop the registration again — the job never
        // existed as far as clients are concerned.
        registry.jobs.lock().expect("job registry").remove(&id);
        let e = ApiError {
            status: 429,
            code: "queue_full",
            message: format!(
                "job queue is at capacity ({}); retry shortly",
                registry.options.queue_capacity
            ),
        };
        let mut resp = Response::error(&e);
        resp.retry_after = Some(1);
        return resp;
    }
    Response::json(
        202,
        obj(vec![
            ("id", Json::Int(id as i64)),
            ("status", Json::Str("queued".into())),
        ]),
    )
}

fn status(job: &Job) -> Response {
    let inner = job.inner.lock().expect("job");
    let mut fields = vec![
        ("id", Json::Int(job.id as i64)),
        ("kind", Json::Str(job.spec.kind.name().to_string())),
        ("status", Json::Str(inner.state.name().to_string())),
        (
            "progress",
            obj(vec![(
                "injections",
                Json::Int(
                    inner
                        .control
                        .as_ref()
                        .map(|c| c.admitted() as i64)
                        .unwrap_or(0),
                ),
            )]),
        ),
    ];
    if let Some(hit) = inner.cache_hit {
        fields.push(("cache_hit", Json::Bool(hit)));
    }
    if let Some(digest) = inner.digest {
        fields.push(("digest", Json::Str(format!("{digest:016x}"))));
    }
    if let Some(error) = &inner.error {
        fields.push(("error", Json::Str(error.clone())));
    }
    Response::json(200, obj(fields))
}

fn result(job: &Job) -> Response {
    let inner = job.inner.lock().expect("job");
    match (&inner.result, inner.state) {
        (Some((body, content_type)), _) => Response {
            status: 200,
            content_type,
            body: body.clone(),
            retry_after: None,
        },
        (None, JobState::Failed | JobState::Cancelled) => Response::error(&ApiError {
            status: 500,
            code: "job_failed",
            message: inner
                .error
                .clone()
                .unwrap_or_else(|| "job failed without a result".to_string()),
        }),
        (None, _) => Response::error(&ApiError {
            status: 409,
            code: "not_finished",
            message: format!("job {} is {}", job.id, inner.state.name()),
        }),
    }
}

fn cancel(job: &Job) -> Response {
    let mut inner = job.inner.lock().expect("job");
    inner.cancel_requested = true;
    if let Some(control) = &inner.control {
        control.cancel();
    }
    Response::json(
        202,
        obj(vec![
            ("id", Json::Int(job.id as i64)),
            ("status", Json::Str("cancel_requested".into())),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_queue_bounds_and_steals() {
        let q = ShardedQueue::new(2, 3);
        let job = |id| {
            Arc::new(Job::new(
                id,
                JobSpec::from_json(
                    &parse(r#"{"kind": "certify", "suite": "aes_control"}"#).unwrap(),
                )
                .unwrap(),
            ))
        };
        assert!(q.push(job(1)).is_ok());
        assert!(q.push(job(2)).is_ok());
        assert!(q.push(job(3)).is_ok());
        assert!(q.push(job(4)).is_err(), "capacity 3 refuses the 4th");
        assert_eq!(q.depth(), 3);
        // Worker 1's home shard may be empty — stealing still drains all.
        let mut seen = vec![];
        while let Some(j) = q.pop(1) {
            seen.push(j.id);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
