//! Job specifications and execution for the `scfi serve` HTTP API.
//!
//! A [`JobSpec`] is the validated form of a `POST /v1/jobs` body: which
//! experiment to run (`analyze` or `certify`), on which FSM (inline DSL
//! or a bundled suite name), under which configuration and knobs. Parsing
//! is strict — unknown fields, contradictory knobs and malformed values
//! are typed 4xx [`ApiError`]s, never silent defaults — because a job
//! server that guesses runs the wrong experiment at a distance.
//!
//! [`run_job`] then executes a spec against a cached [`Prepared`] model
//! under a [`RunControl`] handle. The rendered result bytes are exactly
//! what the CLI would print for the same experiment (the [`wire`]
//! writers are shared), which is what the determinism conformance suite
//! pins.

use std::sync::Arc;
use std::time::Duration;

use scfi_faultsim::{
    enumerate_faults, CampaignConfig, CampaignError, Fault, FaultEffect, FaultTarget,
    RedundancyTarget, RunControl, ScfiTarget, StopReason, UnprotectedTarget, VulnerabilityMap,
};
use scfi_fsm::{parse_fsm, Fsm};
use scfi_netlist::Module;
use scfi_symbolic::{Certifier, CertifyBudget, CertifyModel, JointReport, JointVerdict};
use scfi_telemetry::Telemetry;

use crate::cache::{ConfigKind, Prepared, PreparedModel};
use crate::json::{obj, Json};
use crate::wire;

/// The CLI's fixed protocol-walk seed, mirrored here so a served
/// protocol campaign analyzes the identical scenario set as
/// `scfi analyze --protocol K` on the same FSM.
pub const WALK_SEED: u64 = 0x5CF1_3007;

/// A typed request failure: HTTP status plus a stable machine-readable
/// code and a human message, rendered as
/// `{"error": {"code": …, "message": …}}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Stable error code for clients to branch on.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl ApiError {
    /// A 400 with the given code.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code,
            message: message.into(),
        }
    }

    /// The JSON error body.
    pub fn body(&self) -> String {
        let doc = obj(vec![(
            "error",
            obj(vec![
                ("code", Json::Str(self.code.to_string())),
                ("message", Json::Str(self.message.clone())),
            ]),
        )]);
        let mut s = doc.encode();
        s.push('\n');
        s
    }
}

/// Which experiment a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Exhaustive campaign → per-site vulnerability map.
    Analyze,
    /// BDD certification → per-site or joint verdicts.
    Certify,
}

impl JobKind {
    /// The canonical name used in job status documents.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Analyze => "analyze",
            JobKind::Certify => "certify",
        }
    }
}

/// Output rendering for analyze results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// The pinned `scfi analyze --format json` layout.
    Json,
    /// The pinned `scfi analyze --format csv` layout.
    Csv,
}

/// A validated job request.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Experiment kind.
    pub kind: JobKind,
    /// The FSM to run against.
    pub fsm: Fsm,
    /// Protection configuration.
    pub config: ConfigKind,
    /// Protection level N.
    pub level: usize,
    /// Campaign backend (analyze).
    pub backend: scfi_faultsim::Backend,
    /// Packed-engine lane words (analyze).
    pub lane_words: usize,
    /// Multi-cycle protocol walk depth (analyze).
    pub protocol: Option<usize>,
    /// Adversarial input fuzzing over protocol walks (analyze).
    pub fuzz_inputs: bool,
    /// Analyze result rendering.
    pub format: Format,
    /// Include stuck-at effects in the fault space.
    pub stuck_at: bool,
    /// Include per-pin faults in the fault space.
    pub pin_faults: bool,
    /// Joint multi-fault certification instead of per-site (certify).
    pub joint: bool,
    /// Cardinality bound for `joint` (default: N − 1).
    pub max_active: Option<usize>,
    /// Certify the whole gate space instead of the register region.
    pub all_gates: bool,
    /// Wall-clock deadline, armed when the job starts running.
    pub timeout_secs: Option<u64>,
    /// Injection budget (analyze).
    pub max_injections: Option<u64>,
    /// BDD node budget (certify).
    pub max_bdd_nodes: Option<usize>,
}

fn field_str(doc: &Json, key: &str) -> Result<Option<String>, ApiError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ApiError::bad_request("bad_field", format!("`{key}` must be a string"))),
    }
}

fn field_uint(doc: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ApiError::bad_request(
                "bad_field",
                format!("`{key}` must be a non-negative integer"),
            )
        }),
    }
}

fn field_bool(doc: &Json, key: &str) -> Result<bool, ApiError> {
    match doc.get(key) {
        None => Ok(false),
        Some(v) => v.as_bool().ok_or_else(|| {
            ApiError::bad_request("bad_field", format!("`{key}` must be a boolean"))
        }),
    }
}

/// Every field name `POST /v1/jobs` accepts.
const KNOWN_FIELDS: &[&str] = &[
    "kind",
    "fsm",
    "suite",
    "config",
    "level",
    "backend",
    "lanes",
    "protocol",
    "fuzz_inputs",
    "format",
    "stuck_at",
    "pin_faults",
    "joint",
    "max_active",
    "all_gates",
    "timeout_secs",
    "max_injections",
    "max_bdd_nodes",
];

impl JobSpec {
    /// Parses and validates a `POST /v1/jobs` body.
    pub fn from_json(doc: &Json) -> Result<JobSpec, ApiError> {
        let fields = doc.as_obj().ok_or_else(|| {
            ApiError::bad_request("bad_body", "request body must be a JSON object")
        })?;
        for (key, _) in fields {
            if !KNOWN_FIELDS.contains(&key.as_str()) {
                return Err(ApiError::bad_request(
                    "unknown_field",
                    format!("unknown field `{key}`"),
                ));
            }
        }

        let kind = match field_str(doc, "kind")?.as_deref() {
            Some("analyze") => JobKind::Analyze,
            Some("certify") => JobKind::Certify,
            Some(other) => {
                return Err(ApiError::bad_request(
                    "bad_kind",
                    format!("`kind` must be analyze or certify (got `{other}`)"),
                ))
            }
            None => return Err(ApiError::bad_request("bad_kind", "missing `kind`")),
        };

        let fsm = match (field_str(doc, "fsm")?, field_str(doc, "suite")?) {
            (Some(_), Some(_)) => {
                return Err(ApiError::bad_request(
                    "bad_fsm",
                    "`fsm` and `suite` are mutually exclusive",
                ))
            }
            (Some(dsl), None) => parse_fsm(&dsl)
                .map_err(|e| ApiError::bad_request("bad_dsl", format!("parsing `fsm`: {e}")))?,
            (None, Some(name)) => scfi_opentitan::by_name(&name)
                .map(|b| b.fsm)
                .or_else(|| {
                    scfi_opentitan::protocol_workloads()
                        .into_iter()
                        .find(|f| f.name() == name)
                })
                .ok_or(ApiError {
                    status: 404,
                    code: "unknown_suite",
                    message: format!("no bundled FSM named `{name}`"),
                })?,
            (None, None) => {
                return Err(ApiError::bad_request(
                    "bad_fsm",
                    "one of `fsm` (inline DSL) or `suite` (bundled name) is required",
                ))
            }
        };

        let config = match field_str(doc, "config")?.as_deref() {
            None => ConfigKind::Scfi,
            Some(name) => ConfigKind::parse(name).ok_or_else(|| {
                ApiError::bad_request(
                    "bad_config",
                    format!("`config` must be scfi, redundancy or unprotected (got `{name}`)"),
                )
            })?,
        };
        let level = field_uint(doc, "level")?.unwrap_or(3) as usize;

        let backend = match field_str(doc, "backend")?.as_deref() {
            None => scfi_faultsim::Backend::default(),
            Some(name) => scfi_faultsim::Backend::parse(name).ok_or_else(|| {
                ApiError::bad_request(
                    "bad_backend",
                    format!("`backend` must be scalar, packed or simd (got `{name}`)"),
                )
            })?,
        };
        let lane_words = match field_uint(doc, "lanes")? {
            None | Some(256) => 4,
            Some(64) => 1,
            Some(128) => 2,
            Some(other) => {
                return Err(ApiError::bad_request(
                    "bad_lanes",
                    format!("`lanes` must be 64, 128 or 256 (got {other})"),
                ))
            }
        };
        let protocol = match field_uint(doc, "protocol")? {
            None => None,
            Some(0) => {
                return Err(ApiError::bad_request(
                    "bad_protocol",
                    "`protocol` must be a positive walk depth",
                ))
            }
            Some(depth) => Some(depth as usize),
        };
        let fuzz_inputs = field_bool(doc, "fuzz_inputs")?;
        if fuzz_inputs && protocol.is_none() {
            return Err(ApiError::bad_request(
                "bad_knobs",
                "`fuzz_inputs` biases protocol walks; it requires `protocol`",
            ));
        }
        let format = match field_str(doc, "format")?.as_deref() {
            None | Some("json") => Format::Json,
            Some("csv") => Format::Csv,
            Some(other) => {
                return Err(ApiError::bad_request(
                    "bad_format",
                    format!("`format` must be json or csv (got `{other}`)"),
                ))
            }
        };
        let joint = field_bool(doc, "joint")?;
        let max_active = field_uint(doc, "max_active")?.map(|v| v as usize);

        // Per-kind knob validation: a knob that silently did nothing
        // would make the served experiment diverge from what the client
        // believes it requested.
        match kind {
            JobKind::Analyze => {
                if joint || max_active.is_some() || field_bool(doc, "all_gates")? {
                    return Err(ApiError::bad_request(
                        "bad_knobs",
                        "`joint`, `max_active` and `all_gates` are certify knobs",
                    ));
                }
                if doc.get("max_bdd_nodes").is_some() {
                    return Err(ApiError::bad_request(
                        "bad_knobs",
                        "`max_bdd_nodes` bounds certification, not campaigns",
                    ));
                }
            }
            JobKind::Certify => {
                if doc.get("backend").is_some()
                    || doc.get("lanes").is_some()
                    || protocol.is_some()
                    || fuzz_inputs
                    || doc.get("format").is_some()
                    || doc.get("max_injections").is_some()
                {
                    return Err(ApiError::bad_request(
                        "bad_knobs",
                        "`backend`, `lanes`, `protocol`, `fuzz_inputs`, `format` and \
                         `max_injections` are analyze knobs",
                    ));
                }
                if max_active.is_some() && !joint {
                    return Err(ApiError::bad_request(
                        "bad_knobs",
                        "`max_active` sets the `joint` fault bound",
                    ));
                }
            }
        }

        Ok(JobSpec {
            kind,
            fsm,
            config,
            level,
            backend,
            lane_words,
            protocol,
            fuzz_inputs,
            format,
            stuck_at: field_bool(doc, "stuck_at")?,
            pin_faults: field_bool(doc, "pin_faults")?,
            joint,
            max_active,
            all_gates: field_bool(doc, "all_gates")?,
            timeout_secs: field_uint(doc, "timeout_secs")?,
            max_injections: field_uint(doc, "max_injections")?,
            max_bdd_nodes: field_uint(doc, "max_bdd_nodes")?.map(|v| v as usize),
        })
    }

    /// Builds the run-control handle for this job, arming the deadline
    /// now (at run start, not at submission).
    pub fn run_control(&self) -> RunControl {
        let mut control = RunControl::unlimited();
        if let Some(secs) = self.timeout_secs {
            control = control.with_deadline(Duration::from_secs(secs));
        }
        if let Some(budget) = self.max_injections {
            control = control.with_injection_budget(budget);
        }
        control
    }
}

/// Enumerates the certification fault space — the shared definition used
/// by the per-site and the joint engines (and by `scfi certify`).
pub fn certify_fault_set(
    module: &Module,
    all_gates: bool,
    stuck_at: bool,
    pin_faults: bool,
) -> Vec<Fault> {
    let mut effects = vec![FaultEffect::Flip];
    if stuck_at {
        effects.push(FaultEffect::Stuck0);
        effects.push(FaultEffect::Stuck1);
    }
    let mut fault_config = CampaignConfig::new().effects(effects).with_register_flips();
    if !all_gates {
        // The paper's FT1 claim: the state registers (stored-bit flips
        // plus the register-region nets).
        fault_config = fault_config.register_region(module);
    }
    if pin_faults {
        fault_config = fault_config.with_pin_faults();
    }
    enumerate_faults(module, &fault_config)
}

/// How a job run ended.
pub enum JobOutcome {
    /// Completed; `body` is the full result document.
    Done {
        /// Result bytes.
        body: String,
        /// `application/json` or `text/csv`.
        content_type: &'static str,
    },
    /// Interrupted at a wave boundary; `body` is the clearly marked
    /// partial-result document.
    Stopped {
        /// Which limit stopped the run.
        reason: StopReason,
        /// Partial-result bytes.
        body: String,
    },
    /// The run failed outright (no result document).
    Failed {
        /// What went wrong.
        message: String,
    },
}

/// Executes a validated spec against its prepared model under `control`,
/// emitting engine telemetry (campaign wave counters, BDD statistics)
/// into `telemetry`.
///
/// Analyze campaigns honor `control` cooperatively at wave boundaries
/// (cancellation, deadline, injection budget → [`JobOutcome::Stopped`]
/// with the completed prefix). Certification maps `timeout_secs` and
/// `max_bdd_nodes` onto its [`CertifyBudget`] and polls `control`'s
/// cancel flag inside the BDD step loop, so `DELETE` on a running
/// certify job aborts within a few thousand symbolic operation steps —
/// the same responsiveness class as a campaign's wave boundary.
pub fn run_job(
    spec: &JobSpec,
    prepared: &Prepared,
    control: &RunControl,
    telemetry: &Telemetry,
) -> JobOutcome {
    match spec.kind {
        JobKind::Analyze => run_analyze(spec, prepared, control, telemetry),
        JobKind::Certify => run_certify(spec, prepared, control, telemetry),
    }
}

fn run_analyze(
    spec: &JobSpec,
    prepared: &Prepared,
    control: &RunControl,
    telemetry: &Telemetry,
) -> JobOutcome {
    let mut effects = vec![FaultEffect::Flip];
    if spec.stuck_at {
        effects.push(FaultEffect::Stuck0);
        effects.push(FaultEffect::Stuck1);
    }
    let mut config = CampaignConfig::new()
        .effects(effects)
        .threads(2)
        .lane_words(spec.lane_words)
        .backend(spec.backend)
        .telemetry(telemetry.clone())
        .precompiled(Arc::clone(&prepared.packed));
    if spec.pin_faults {
        config = config.with_pin_faults();
    }

    let result = match &prepared.model {
        PreparedModel::Scfi(hardened) => {
            let target = match (spec.protocol, spec.fuzz_inputs) {
                (Some(depth), true) => ScfiTarget::with_fuzzed_protocol(hardened, depth, WALK_SEED),
                (Some(depth), false) => ScfiTarget::with_protocol(hardened, depth, WALK_SEED),
                (None, _) => ScfiTarget::new(hardened),
            };
            analyze_target(&target, spec, prepared.module(), &config, control)
        }
        PreparedModel::Redundancy(redundant) => {
            let target = match (spec.protocol, spec.fuzz_inputs) {
                (Some(depth), true) => {
                    RedundancyTarget::with_fuzzed_protocol(redundant, depth, WALK_SEED)
                }
                (Some(depth), false) => {
                    RedundancyTarget::with_protocol(redundant, depth, WALK_SEED)
                }
                (None, _) => RedundancyTarget::new(redundant),
            };
            analyze_target(&target, spec, prepared.module(), &config, control)
        }
        PreparedModel::Unprotected(u) => {
            let target = match (spec.protocol, spec.fuzz_inputs) {
                (Some(depth), true) => {
                    UnprotectedTarget::with_fuzzed_protocol(&u.fsm, &u.lowered, depth, WALK_SEED)
                }
                (Some(depth), false) => {
                    UnprotectedTarget::with_protocol(&u.fsm, &u.lowered, depth, WALK_SEED)
                }
                (None, _) => UnprotectedTarget::new(&u.fsm, &u.lowered),
            };
            analyze_target(&target, spec, prepared.module(), &config, control)
        }
    };
    match result {
        Ok(outcome) => outcome,
        Err(e) => JobOutcome::Failed {
            message: format!("campaign failed: {e}"),
        },
    }
}

fn analyze_target<T: FaultTarget>(
    target: &T,
    spec: &JobSpec,
    module: &Module,
    config: &CampaignConfig,
    control: &RunControl,
) -> Result<JobOutcome, CampaignError> {
    match VulnerabilityMap::try_analyze(target, config, control) {
        Ok(map) => {
            let mut body = String::new();
            let content_type = match spec.format {
                Format::Json => {
                    wire::write_sites_json(&mut body, module, &map);
                    "application/json"
                }
                Format::Csv => {
                    wire::write_sites_csv(&mut body, module, &map);
                    "text/csv"
                }
            };
            Ok(JobOutcome::Done { body, content_type })
        }
        Err(CampaignError::Interrupted { reason, partial }) => {
            let mut body = String::new();
            wire::write_partial_json(&mut body, reason, &partial);
            Ok(JobOutcome::Stopped { reason, body })
        }
        Err(other) => Err(other),
    }
}

fn run_certify(
    spec: &JobSpec,
    prepared: &Prepared,
    control: &RunControl,
    telemetry: &Telemetry,
) -> JobOutcome {
    match &prepared.model {
        PreparedModel::Scfi(h) => certify_model(h.as_ref(), spec, control, telemetry),
        PreparedModel::Redundancy(r) => certify_model(r.as_ref(), spec, control, telemetry),
        PreparedModel::Unprotected(u) => certify_model(&u.lowered, spec, control, telemetry),
    }
}

fn certify_model<M: CertifyModel>(
    model: &M,
    spec: &JobSpec,
    control: &RunControl,
    telemetry: &Telemetry,
) -> JobOutcome {
    let module = model.module();
    let faults = certify_fault_set(module, spec.all_gates, spec.stuck_at, spec.pin_faults);
    let mut budget = CertifyBudget::unlimited();
    if let Some(secs) = spec.timeout_secs {
        budget = budget.timeout(Duration::from_secs(secs));
    }
    if let Some(nodes) = spec.max_bdd_nodes {
        budget = budget.max_nodes(nodes);
    }
    let instruments =
        || Certifier::with_instruments(model, budget, telemetry.clone(), Some(control.clone()));
    let mut body = String::new();
    if spec.joint {
        // The paper's §3 bound: up to N − 1 simultaneous faults.
        let max_active = spec.max_active.unwrap_or(spec.level.saturating_sub(1));
        let report = match instruments() {
            Ok(mut certifier) => certifier.certify_joint(&faults, max_active),
            Err(overflow) => JointReport {
                config: model.config_name(),
                module: module.name().to_string(),
                sites: faults.len(),
                max_active,
                reachable_states: 0,
                verdict: JointVerdict::Unknown {
                    reason: overflow.to_string(),
                },
            },
        };
        wire::write_joint_json(&mut body, &report);
    } else {
        let report = match instruments() {
            Ok(mut certifier) => certifier.certify_all(&faults),
            Err(overflow) => Certifier::degraded_report(model, &faults, overflow),
        };
        wire::write_certify_json(&mut body, module, &report);
    }
    // A cancelled certification aborts inside the BDD step loop and
    // surfaces as Unknown verdicts; report it as a stopped job (with the
    // clearly degraded document as the partial body), not a completion.
    if control.is_cancelled() {
        return JobOutcome::Stopped {
            reason: StopReason::Cancelled,
            body,
        };
    }
    JobOutcome::Done {
        body,
        content_type: "application/json",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const DEMO: &str = "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }";

    fn spec(body: &str) -> Result<JobSpec, ApiError> {
        JobSpec::from_json(&parse(body).expect("test body parses"))
    }

    #[test]
    fn minimal_analyze_spec_gets_the_cli_defaults() {
        let s = spec(&format!(r#"{{"kind": "analyze", "fsm": {}}}"#, dsl_lit())).unwrap();
        assert_eq!(s.kind, JobKind::Analyze);
        assert_eq!(s.config, ConfigKind::Scfi);
        assert_eq!(s.level, 3);
        assert_eq!(s.backend, scfi_faultsim::Backend::Packed);
        assert_eq!(s.lane_words, 4);
        assert_eq!(s.format, Format::Json);
        assert_eq!(s.fsm.name(), "demo");
    }

    fn dsl_lit() -> String {
        Json::Str(DEMO.to_string()).encode()
    }

    #[test]
    fn suite_names_resolve_and_unknown_is_404() {
        let s = spec(r#"{"kind": "certify", "suite": "aes_control"}"#).unwrap();
        assert_eq!(s.fsm.name(), "aes_control");
        let e = spec(r#"{"kind": "certify", "suite": "ghost"}"#).unwrap_err();
        assert_eq!(e.status, 404);
        assert_eq!(e.code, "unknown_suite");
    }

    #[test]
    fn unknown_fields_and_bad_values_are_typed_400s() {
        for (body, code) in [
            (
                r#"{"kind": "analyze", "suite": "aes_control", "turbo": true}"#,
                "unknown_field",
            ),
            (r#"{"suite": "aes_control"}"#, "bad_kind"),
            (
                r#"{"kind": "meditate", "suite": "aes_control"}"#,
                "bad_kind",
            ),
            (r#"{"kind": "analyze"}"#, "bad_fsm"),
            (
                r#"{"kind": "analyze", "fsm": "x", "suite": "aes_control"}"#,
                "bad_fsm",
            ),
            (r#"{"kind": "analyze", "fsm": "not a dsl"}"#, "bad_dsl"),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "config": "tmr"}"#,
                "bad_config",
            ),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "backend": "gpu"}"#,
                "bad_backend",
            ),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "lanes": 96}"#,
                "bad_lanes",
            ),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "protocol": 0}"#,
                "bad_protocol",
            ),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "fuzz_inputs": true}"#,
                "bad_knobs",
            ),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "format": "xml"}"#,
                "bad_format",
            ),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "joint": true}"#,
                "bad_knobs",
            ),
            (
                r#"{"kind": "analyze", "suite": "aes_control", "max_bdd_nodes": 8}"#,
                "bad_knobs",
            ),
            (
                r#"{"kind": "certify", "suite": "aes_control", "backend": "simd"}"#,
                "bad_knobs",
            ),
            (
                r#"{"kind": "certify", "suite": "aes_control", "max_active": 2}"#,
                "bad_knobs",
            ),
            (
                r#"{"kind": "certify", "suite": "aes_control", "level": "three"}"#,
                "bad_field",
            ),
            (
                r#"{"kind": "certify", "suite": "aes_control", "joint": "yes"}"#,
                "bad_field",
            ),
            (r#"[1, 2]"#, "bad_body"),
        ] {
            let e = spec(body).expect_err(body);
            assert_eq!(e.code, code, "body: {body} → {e:?}");
            assert!(e.status == 400, "body: {body} → {e:?}");
            // Error bodies are valid JSON with the documented shape.
            let doc = parse(&ApiError::bad_request(e.code, e.message.clone()).body()).unwrap();
            assert_eq!(
                doc.get("error").unwrap().get("code").unwrap().as_str(),
                Some(e.code)
            );
        }
    }

    #[test]
    fn run_control_maps_the_budget_knobs() {
        let s = spec(&format!(
            r#"{{"kind": "analyze", "fsm": {}, "max_injections": 5}}"#,
            dsl_lit()
        ))
        .unwrap();
        let control = s.run_control();
        assert!(control.admit(5).is_ok());
        assert!(control.admit(1).is_err());
    }
}
