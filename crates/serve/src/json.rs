//! A minimal JSON value model with a recursive-descent parser and a
//! compact encoder — the workspace's single (std-only, zero-dependency)
//! JSON implementation.
//!
//! The wire module's *writers* keep their hand-formatted layouts (the
//! `scfi analyze --format json` bytes are a pinned artifact), so this
//! module's job is the other three quarters of the protocol: parsing
//! request bodies, building ad-hoc response objects, and re-parsing
//! served artifacts in tests to check structural equality. Object keys
//! preserve insertion order; numbers distinguish integers from floats so
//! encode∘parse round-trips integer-valued documents exactly.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (duplicates keep the last
    /// occurrence on lookup, all occurrences on encode).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins); `None` off objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer-valued number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as unsigned, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Any number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact (single-line, no spaces) encoding of the value.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    // JSON has no Inf/NaN literal; degrade to null rather
                    // than emit an unparseable document.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructor for object literals.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// JSON string escaping, appended to `out` (quotes included).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth cap — far beyond any legitimate request, small enough
/// that a hostile deeply-nested body cannot blow the parse stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos past the digits; skip the
                            // outer `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b < 0xE0 => 2,
                        b if b < 0xF0 => 3,
                        _ => 4,
                    };
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_preserving_order() {
        let v = parse(r#"{"b": [1, 2, {"c": null}], "a": "x"}"#).unwrap();
        let fields = v.as_obj().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("a\"b\\c\n\t\r\u{8}\u{c}\u{1}é∎".into());
        let encoded = original.encode();
        assert_eq!(parse(&encoded).unwrap(), original);
        // Unicode escapes and surrogate pairs decode.
        assert_eq!(
            parse(r#""\u00e9 \ud83d\ude00""#).unwrap(),
            Json::Str("é 😀".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "\"\\q\"",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\" 1}",
            "[1 2]",
            r#""\ud800x""#,
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn deep_nesting_is_refused_not_a_stack_overflow() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        let e = parse(&deep).expect_err("too deep");
        assert!(e.message.contains("deep"));
    }

    #[test]
    fn encode_parse_round_trips_structures() {
        let v = obj(vec![
            ("name", Json::Str("x\"y".into())),
            ("n", Json::Int(-3)),
            ("rate", Json::Float(0.5)),
            ("tags", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("empty", Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn duplicate_keys_keep_last_on_lookup() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
    }
}
