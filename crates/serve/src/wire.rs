//! The shared wire formats: every machine-readable rendering of an SCFI
//! result lives here, used identically by `scfi analyze --format csv|json`
//! and by the `scfi serve` HTTP endpoints.
//!
//! [`write_sites_csv`] and [`write_sites_json`] are the CLI's original
//! streaming writers, hoisted verbatim — their byte layout is pinned by
//! the CLI golden tests (`crates/cli/tests/golden/`), so a served analyze
//! result is byte-identical to the `scfi analyze --format json` output
//! for the same FSM and knobs. The certification, joint and partial-result
//! writers are new with the job server and render through the
//! [`json`](crate::json) value model (compact, parseable encoding).

use std::fmt::Write as _;

use scfi_faultsim::{PartialReport, StopReason, VulnerabilityMap};
use scfi_netlist::Module;
use scfi_symbolic::{
    describe_fault, CertificationReport, JointReport, JointVerdict, Verdict, Witness,
};

use crate::json::{obj, Json};

/// Streams the per-site vulnerability map as CSV (one row per fault
/// cell, header first).
pub fn write_sites_csv(out: &mut String, module: &Module, map: &VulnerabilityMap) {
    let _ = writeln!(
        out,
        "cell,kind,name,masked,detected,hijacked,total,hijack_rate"
    );
    for (cell, stats) in map.sites() {
        let c = module.cell(cell);
        let rate = if stats.total() == 0 {
            0.0
        } else {
            stats.hijacked as f64 / stats.total() as f64
        };
        let _ = writeln!(
            out,
            "c{},{},{},{},{},{},{},{:.6}",
            cell.0,
            c.kind.mnemonic(),
            c.name.as_deref().unwrap_or(""),
            stats.masked,
            stats.detected,
            stats.hijacked,
            stats.total(),
            rate
        );
    }
}

/// Streams the per-site vulnerability map as JSON.
pub fn write_sites_json(out: &mut String, module: &Module, map: &VulnerabilityMap) {
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"module\": \"{}\",", module.name());
    let _ = writeln!(out, "  \"injections\": {},", map.total_injections());
    let _ = writeln!(out, "  \"hijacks\": {},", map.total_hijacks());
    let _ = writeln!(out, "  \"sites\": [");
    let sites: Vec<_> = map.sites().collect();
    for (i, (cell, stats)) in sites.iter().enumerate() {
        let c = module.cell(*cell);
        let comma = if i + 1 < sites.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"cell\": {}, \"kind\": \"{}\", \"name\": \"{}\", \
             \"masked\": {}, \"detected\": {}, \"hijacked\": {}}}{comma}",
            cell.0,
            c.kind.mnemonic(),
            c.name.as_deref().unwrap_or(""),
            stats.masked,
            stats.detected,
            stats.hijacked
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
}

fn bits(word: &[bool]) -> String {
    word.iter().map(|&v| if v { '1' } else { '0' }).collect()
}

fn witness_json(w: &Witness) -> Json {
    obj(vec![
        ("state", Json::Str(bits(&w.regs))),
        ("inputs", Json::Str(bits(&w.inputs))),
        ("replay_confirmed", Json::Bool(w.confirmed)),
    ])
}

/// Renders a per-site certification report as one JSON document
/// (a trailing newline after the compact encoding).
pub fn write_certify_json(out: &mut String, module: &Module, report: &CertificationReport) {
    let sites = report
        .sites
        .iter()
        .map(|site| {
            let mut fields = vec![
                ("fault", Json::Str(describe_fault(module, site.fault))),
                ("verdict", Json::Str(verdict_tag(&site.verdict).to_string())),
            ];
            match &site.verdict {
                Verdict::Counterexample(w) => fields.push(("witness", witness_json(w))),
                Verdict::Unknown { reason } => fields.push(("reason", Json::Str(reason.clone()))),
                _ => {}
            }
            obj(fields)
        })
        .collect();
    let doc = obj(vec![
        ("config", Json::Str(report.config.to_string())),
        ("module", Json::Str(report.module.clone())),
        (
            "reachable_states",
            Json::Int(report.reachable_states as i64),
        ),
        ("state_bits", Json::Int(report.state_bits as i64)),
        ("input_bits", Json::Int(report.input_bits as i64)),
        (
            "proven_detected",
            Json::Int(report.proven_detected() as i64),
        ),
        ("proven_masked", Json::Int(report.proven_masked() as i64)),
        (
            "counterexamples",
            Json::Int(report.counterexamples() as i64),
        ),
        ("unknown", Json::Int(report.unknown() as i64)),
        ("all_proven", Json::Bool(report.all_proven())),
        ("sites", Json::Arr(sites)),
    ]);
    let _ = writeln!(out, "{}", doc.encode());
}

fn verdict_tag(v: &Verdict) -> &'static str {
    match v {
        Verdict::ProvenDetected => "proven-detected",
        Verdict::ProvenMasked => "proven-masked",
        Verdict::Counterexample(_) => "counterexample",
        Verdict::Unknown { .. } => "unknown",
    }
}

/// Renders a joint multi-fault certification report as one JSON document.
pub fn write_joint_json(out: &mut String, report: &JointReport) {
    let verdict = match &report.verdict {
        JointVerdict::Proved => obj(vec![("kind", Json::Str("proved".into()))]),
        JointVerdict::Counterexample(w) => obj(vec![
            ("kind", Json::Str("counterexample".into())),
            ("state", Json::Str(bits(&w.regs))),
            ("inputs", Json::Str(bits(&w.inputs))),
        ]),
        JointVerdict::Unknown { reason } => obj(vec![
            ("kind", Json::Str("unknown".into())),
            ("reason", Json::Str(reason.clone())),
        ]),
    };
    let doc = obj(vec![
        ("config", Json::Str(report.config.to_string())),
        ("module", Json::Str(report.module.clone())),
        ("sites", Json::Int(report.sites as i64)),
        ("max_active", Json::Int(report.max_active as i64)),
        (
            "reachable_states",
            Json::Int(report.reachable_states as i64),
        ),
        ("verdict", verdict),
    ]);
    let _ = writeln!(out, "{}", doc.encode());
}

/// Renders the completed prefix of an interrupted campaign, clearly
/// marked `"partial": true` with the stop reason — mirroring the CLI's
/// `PARTIAL RESULT (stopped early: …)` banner.
pub fn write_partial_json(out: &mut String, reason: StopReason, partial: &PartialReport) {
    let doc = obj(vec![
        ("partial", Json::Bool(true)),
        ("stopped_early", Json::Str(reason.to_string())),
        ("completed", Json::Int(partial.completed as i64)),
        ("total", Json::Int(partial.total() as i64)),
        ("masked", Json::Int(partial.report.masked as i64)),
        ("detected", Json::Int(partial.report.detected as i64)),
        ("hijacked", Json::Int(partial.report.hijacked as i64)),
    ]);
    let _ = writeln!(out, "{}", doc.encode());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use scfi_core::{harden, ScfiConfig};
    use scfi_faultsim::{CampaignConfig, ScfiTarget};
    use scfi_fsm::parse_fsm;
    use scfi_symbolic::Certifier;

    fn demo_map() -> (scfi_core::HardenedFsm, VulnerabilityMap) {
        let fsm = parse_fsm("fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }")
            .expect("demo parses");
        let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("demo hardens");
        let target = ScfiTarget::new(&hardened);
        let map = VulnerabilityMap::analyze(&target, &CampaignConfig::new());
        (hardened, map)
    }

    /// The hoisted JSON writer's output must parse with the crate's own
    /// parser and agree field-for-field with the map it rendered.
    #[test]
    fn sites_json_round_trips_through_the_parser() {
        let (hardened, map) = demo_map();
        let mut out = String::new();
        write_sites_json(&mut out, hardened.module(), &map);
        let doc = parse(&out).expect("sites JSON parses");
        assert_eq!(doc.get("module").unwrap().as_str(), Some("demo_scfi"));
        assert_eq!(
            doc.get("injections").unwrap().as_u64(),
            Some(map.total_injections() as u64)
        );
        assert_eq!(
            doc.get("hijacks").unwrap().as_u64(),
            Some(map.total_hijacks() as u64)
        );
        let sites = doc.get("sites").unwrap().as_arr().expect("sites array");
        assert_eq!(sites.len(), map.sites().count());
        for (site, (cell, stats)) in sites.iter().zip(map.sites()) {
            assert_eq!(site.get("cell").unwrap().as_u64(), Some(cell.0 as u64));
            assert_eq!(
                site.get("masked").unwrap().as_u64(),
                Some(stats.masked as u64)
            );
            assert_eq!(
                site.get("detected").unwrap().as_u64(),
                Some(stats.detected as u64)
            );
            assert_eq!(
                site.get("hijacked").unwrap().as_u64(),
                Some(stats.hijacked as u64)
            );
        }
    }

    #[test]
    fn sites_csv_has_one_row_per_site_plus_header() {
        let (hardened, map) = demo_map();
        let mut out = String::new();
        write_sites_csv(&mut out, hardened.module(), &map);
        let mut lines = out.lines();
        assert_eq!(
            lines.next(),
            Some("cell,kind,name,masked,detected,hijacked,total,hijack_rate")
        );
        let rows: Vec<_> = lines.collect();
        assert_eq!(rows.len(), map.sites().count());
        assert!(rows.iter().all(|r| r.split(',').count() == 8));
    }

    #[test]
    fn certify_json_counts_agree_with_the_report() {
        let fsm = parse_fsm("fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }")
            .expect("demo parses");
        let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("demo hardens");
        let faults = crate::jobs::certify_fault_set(hardened.module(), false, false, false);
        let mut certifier = Certifier::new(&hardened);
        let report = certifier.certify_all(&faults);
        let mut out = String::new();
        write_certify_json(&mut out, hardened.module(), &report);
        let doc = parse(&out).expect("certify JSON parses");
        assert_eq!(doc.get("config").unwrap().as_str(), Some("scfi"));
        assert_eq!(doc.get("all_proven").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.get("sites").unwrap().as_arr().unwrap().len(),
            report.sites.len()
        );
        assert_eq!(
            doc.get("proven_detected").unwrap().as_u64(),
            Some(report.proven_detected() as u64)
        );
        assert_eq!(doc.get("counterexamples").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn joint_json_renders_every_verdict_kind() {
        let base = |verdict| JointReport {
            config: "scfi",
            module: "demo_scfi".into(),
            sites: 9,
            max_active: 2,
            reachable_states: 2,
            verdict,
        };
        let mut out = String::new();
        write_joint_json(&mut out, &base(JointVerdict::Proved));
        assert_eq!(
            parse(&out)
                .unwrap()
                .get("verdict")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("proved")
        );
        out.clear();
        write_joint_json(
            &mut out,
            &base(JointVerdict::Unknown {
                reason: "node budget".into(),
            }),
        );
        let doc = parse(&out).unwrap();
        assert_eq!(
            doc.get("verdict").unwrap().get("reason").unwrap().as_str(),
            Some("node budget")
        );
        assert_eq!(doc.get("max_active").unwrap().as_u64(), Some(2));
    }
}
