//! The compiled-model cache: hardening/lowering plus the
//! [`PackedNetlist`] compilation for a given `(FSM, config, N)` is pure
//! and deterministic, so the job server computes it once and shares the
//! result across every job that asks for the same key.
//!
//! The cache is a bounded FIFO guarded by one mutex (preparation itself
//! runs *outside* the lock; two concurrent misses on the same key both
//! compile and one insert wins — wasted work, never wrong results) with
//! atomic hit/miss counters surfaced by `GET /v1/healthz`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use scfi_core::{harden, redundancy, HardenedFsm, RedundantFsm, ScfiConfig};
use scfi_fsm::{lower_unprotected, Fsm, LoweredFsm};
use scfi_netlist::{Module, PackedNetlist};

/// Which protection configuration a job targets — the same three-way
/// choice as `scfi certify --config`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConfigKind {
    /// The paper's SCFI hardening.
    Scfi,
    /// Plain N-way redundancy (the paper's comparison baseline).
    Redundancy,
    /// The unprotected binary-encoded lowering.
    Unprotected,
}

impl ConfigKind {
    /// Parses a config name as accepted by the `"config"` request field.
    pub fn parse(name: &str) -> Option<ConfigKind> {
        match name {
            "scfi" => Some(ConfigKind::Scfi),
            "redundancy" => Some(ConfigKind::Redundancy),
            "unprotected" => Some(ConfigKind::Unprotected),
            _ => None,
        }
    }

    /// The canonical name (`parse`'s inverse).
    pub fn name(self) -> &'static str {
        match self {
            ConfigKind::Scfi => "scfi",
            ConfigKind::Redundancy => "redundancy",
            ConfigKind::Unprotected => "unprotected",
        }
    }
}

/// A prepared (hardened/lowered) model ready for campaign or
/// certification jobs.
pub enum PreparedModel {
    /// SCFI-hardened (boxed: the hardened model is much larger than the
    /// other variants).
    Scfi(Box<HardenedFsm>),
    /// N-way redundant.
    Redundancy(Box<RedundantFsm>),
    /// Unprotected lowering (keeps the source FSM for target
    /// construction).
    Unprotected(Box<UnprotectedModel>),
}

/// The unprotected configuration keeps both the parsed FSM (the fault
/// targets need it to drive representative inputs) and its lowering.
pub struct UnprotectedModel {
    /// The parsed FSM.
    pub fsm: Fsm,
    /// Its binary-encoded lowering.
    pub lowered: LoweredFsm,
}

/// One cache entry: the prepared model plus its packed netlist, compiled
/// once and handed to every campaign run via
/// [`CampaignConfig::precompiled`](scfi_faultsim::CampaignConfig::precompiled).
pub struct Prepared {
    /// The prepared model.
    pub model: PreparedModel,
    /// The compiled wave-engine netlist for [`Self::module`].
    pub packed: Arc<PackedNetlist>,
    /// FNV-1a digest of the canonical DSL (diagnostic identity shown in
    /// job status).
    pub digest: u64,
}

impl Prepared {
    /// The gate-level module the jobs run against.
    pub fn module(&self) -> &Module {
        match &self.model {
            PreparedModel::Scfi(h) => h.module(),
            PreparedModel::Redundancy(r) => r.module(),
            PreparedModel::Unprotected(u) => u.lowered.module(),
        }
    }
}

/// FNV-1a over `bytes` — a stable, dependency-free content digest for
/// cache keys and job-status display.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Prepares a model outside the cache: parse-level inputs in, hardened
/// module plus compiled netlist out. Deterministic, so cached and fresh
/// preparations are interchangeable.
pub fn prepare(fsm: &Fsm, kind: ConfigKind, level: usize) -> Result<Prepared, String> {
    let digest = fnv1a(fsm.to_dsl().as_bytes());
    let model = match kind {
        ConfigKind::Scfi => {
            let hardened = harden(fsm, &ScfiConfig::new(level))
                .map_err(|e| format!("hardening failed: {e}"))?;
            hardened
                .check_all_edges()
                .map_err(|e| format!("internal verification failed: {e}"))?;
            PreparedModel::Scfi(Box::new(hardened))
        }
        ConfigKind::Redundancy => PreparedModel::Redundancy(Box::new(
            redundancy(fsm, level).map_err(|e| format!("redundancy transform failed: {e}"))?,
        )),
        ConfigKind::Unprotected => {
            let lowered = lower_unprotected(fsm).map_err(|e| format!("lowering failed: {e}"))?;
            PreparedModel::Unprotected(Box::new(UnprotectedModel {
                fsm: fsm.clone(),
                lowered,
            }))
        }
    };
    let module = match &model {
        PreparedModel::Scfi(h) => h.module(),
        PreparedModel::Redundancy(r) => r.module(),
        PreparedModel::Unprotected(u) => u.lowered.module(),
    };
    let packed = Arc::new(PackedNetlist::compile(module));
    Ok(Prepared {
        model,
        packed,
        digest,
    })
}

/// The cache key: the *full* canonical DSL (not just its digest —
/// collisions must never alias two FSMs) plus config kind and level.
#[derive(Clone, PartialEq, Eq)]
struct Key {
    dsl: String,
    kind: ConfigKind,
    level: usize,
}

/// A bounded FIFO cache of [`Prepared`] models with hit/miss counters.
pub struct CompileCache {
    entries: Mutex<VecDeque<(Key, Arc<Prepared>)>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    /// An empty cache holding at most `capacity` prepared models.
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached model for `(fsm, kind, level)`, preparing and
    /// inserting it on a miss. The boolean is `true` on a cache hit.
    pub fn get_or_prepare(
        &self,
        fsm: &Fsm,
        kind: ConfigKind,
        level: usize,
    ) -> Result<(Arc<Prepared>, bool), String> {
        let key = Key {
            dsl: fsm.to_dsl(),
            kind,
            level,
        };
        if let Some(found) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((found, true));
        }
        // Prepare outside the lock; a concurrent miss on the same key
        // duplicates the compile but both arrive at identical artifacts.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(prepare(fsm, kind, level)?);
        let mut entries = self.entries.lock().expect("cache lock");
        if !entries.iter().any(|(k, _)| *k == key) {
            if entries.len() >= self.capacity {
                entries.pop_front();
            }
            entries.push_back((key, Arc::clone(&prepared)));
        }
        Ok((prepared, false))
    }

    fn lookup(&self, key: &Key) -> Option<Arc<Prepared>> {
        let entries = self.entries.lock().expect("cache lock");
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| Arc::clone(v))
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Prepared models currently resident.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_fsm::parse_fsm;

    fn demo(name: &str) -> Fsm {
        parse_fsm(&format!(
            "fsm {name} {{ inputs go; state A {{ if go -> B; }} state B {{ goto A; }} }}"
        ))
        .expect("demo parses")
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_same_artifacts() {
        let cache = CompileCache::new(4);
        let fsm = demo("demo");
        let (first, hit1) = cache.get_or_prepare(&fsm, ConfigKind::Scfi, 2).unwrap();
        let (second, hit2) = cache.get_or_prepare(&fsm, ConfigKind::Scfi, 2).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(first.digest, fnv1a(fsm.to_dsl().as_bytes()));
    }

    #[test]
    fn distinct_configs_and_levels_get_distinct_entries() {
        let cache = CompileCache::new(8);
        let fsm = demo("demo");
        let (scfi, _) = cache.get_or_prepare(&fsm, ConfigKind::Scfi, 2).unwrap();
        let (red, _) = cache
            .get_or_prepare(&fsm, ConfigKind::Redundancy, 2)
            .unwrap();
        let (lvl3, _) = cache.get_or_prepare(&fsm, ConfigKind::Scfi, 3).unwrap();
        assert!(!Arc::ptr_eq(&scfi, &red));
        assert!(!Arc::ptr_eq(&scfi, &lvl3));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        // The packed netlist matches the model's module shape.
        assert_eq!(scfi.packed.len(), scfi.module().len());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = CompileCache::new(2);
        let a = demo("a");
        let b = demo("b");
        let c = demo("c");
        cache
            .get_or_prepare(&a, ConfigKind::Unprotected, 2)
            .unwrap();
        cache
            .get_or_prepare(&b, ConfigKind::Unprotected, 2)
            .unwrap();
        cache
            .get_or_prepare(&c, ConfigKind::Unprotected, 2)
            .unwrap();
        assert_eq!(cache.len(), 2);
        // `a` was evicted: looking it up again is a miss.
        cache
            .get_or_prepare(&a, ConfigKind::Unprotected, 2)
            .unwrap();
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }
}
