//! `scfi-serve` — campaign-as-a-service over HTTP.
//!
//! Layer 6 of the workspace: a std-only HTTP/1.1 job server (no async
//! runtime, no HTTP crate — the workspace is dependency-free) exposing
//! the fault-campaign and certification engines as a JSON API:
//!
//! ```text
//! POST   /v1/jobs             submit analyze/certify (FSM DSL + knobs)
//! GET    /v1/jobs/{id}        status + live progress
//! GET    /v1/jobs/{id}/result result document once finished
//! DELETE /v1/jobs/{id}        cooperative cancellation
//! GET    /v1/healthz          liveness, queue depth, cache counters
//! ```
//!
//! The serving layer adds *no* semantics of its own: a served result is
//! byte-identical to the CLI output for the same experiment (the wire
//! writers in [`wire`] are shared with `scfi analyze --format csv|json`),
//! and the compiled-model cache in [`cache`] is a pure memoization of
//! deterministic preparation — the determinism conformance suite pins
//! both properties, cache-hit path included.
//!
//! ```no_run
//! use scfi_serve::{Server, ServerOptions};
//!
//! let server = Server::bind("127.0.0.1:8080", ServerOptions::default())?;
//! println!("listening on {}", server.local_addr());
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod jobs;
pub mod json;
pub mod server;
pub mod wire;

pub use cache::{CompileCache, ConfigKind, Prepared, PreparedModel};
pub use jobs::{ApiError, JobKind, JobOutcome, JobSpec, WALK_SEED};
pub use server::{Server, ServerOptions};
