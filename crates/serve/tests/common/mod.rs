//! Shared black-box HTTP client for the `scfi serve` integration
//! suites: a raw [`TcpStream`] HTTP/1.1 client (one request per
//! connection, exactly like the server speaks) plus polling helpers.

// Each test binary uses a different subset of these helpers.
#![allow(dead_code)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use scfi_serve::json::{parse, Json};

/// One HTTP exchange: status code, lower-cased header map, body.
pub struct Reply {
    pub status: u16,
    pub headers: HashMap<String, String>,
    pub body: String,
}

impl Reply {
    /// Parses the body as JSON (panics with the body on failure).
    pub fn json(&self) -> Json {
        parse(&self.body).unwrap_or_else(|e| panic!("unparseable body ({e}): {}", self.body))
    }
}

/// Performs one request against the server over a fresh connection.
pub fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect to scfi serve");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
         Content-Type: application/json\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in: {raw}"));
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

/// Submits a job body, asserting the 202 and returning the job id.
pub fn submit(addr: SocketAddr, body: &str) -> u64 {
    let reply = http(addr, "POST", "/v1/jobs", Some(body));
    assert_eq!(reply.status, 202, "submit failed: {}", reply.body);
    reply.json().get("id").unwrap().as_u64().expect("job id")
}

/// The job's current status string.
pub fn job_status(addr: SocketAddr, id: u64) -> String {
    let reply = http(addr, "GET", &format!("/v1/jobs/{id}"), None);
    assert_eq!(reply.status, 200, "{}", reply.body);
    reply
        .json()
        .get("status")
        .unwrap()
        .as_str()
        .expect("status string")
        .to_string()
}

/// Polls until the job reaches `wanted`, panicking if it reaches a
/// different terminal state or `timeout` passes first.
pub fn await_status(addr: SocketAddr, id: u64, wanted: &str, timeout: Duration) -> String {
    let start = Instant::now();
    loop {
        let status = job_status(addr, id);
        if status == wanted {
            return status;
        }
        let terminal = matches!(status.as_str(), "done" | "failed" | "cancelled");
        assert!(
            !terminal,
            "job {id} ended as `{status}` while waiting for `{wanted}`"
        );
        assert!(
            start.elapsed() < timeout,
            "job {id} still `{status}` after {timeout:?} waiting for `{wanted}`"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls until the job reaches any terminal state, returning it.
pub fn await_terminal(addr: SocketAddr, id: u64, timeout: Duration) -> String {
    let start = Instant::now();
    loop {
        let status = job_status(addr, id);
        if matches!(status.as_str(), "done" | "failed" | "cancelled") {
            return status;
        }
        assert!(
            start.elapsed() < timeout,
            "job {id} still `{status}` after {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Submits, waits for completion, asserts `done`, and returns the
/// result body.
pub fn run_to_result(addr: SocketAddr, body: &str) -> String {
    let id = submit(addr, body);
    let status = await_terminal(addr, id, Duration::from_secs(300));
    assert_eq!(status, "done", "job for body {body} ended as {status}");
    let reply = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(reply.status, 200, "{}", reply.body);
    reply.body
}
