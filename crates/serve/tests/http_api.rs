//! Black-box integration tests for the `scfi serve` HTTP API.
//!
//! Every test binds its own server on port 0 (an ephemeral port, so the
//! suite is hermetic and parallel-safe) and speaks to it exactly like an
//! external client would: raw [`std::net::TcpStream`] connections, one
//! HTTP/1.1 request each, no access to server internals.
//!
//! The slow job used by the cancellation and backpressure tests is the
//! i2c controller under a depth-2 protocol walk with stuck-at effects on
//! the scalar backend — measured at several seconds of campaign time, a
//! comfortably wide window for deterministic mid-run cancellation.

mod common;

use std::time::Duration;

use common::{await_status, await_terminal, http, job_status, run_to_result, submit};
use scfi_serve::{Server, ServerOptions};

/// A multi-second analyze campaign (see module docs).
const SLOW_JOB: &str = r#"{"kind": "analyze", "suite": "i2c_fsm", "level": 3,
    "backend": "scalar", "protocol": 2, "stuck_at": true}"#;

/// A sub-second analyze campaign on the two-state demo FSM.
const FAST_JOB: &str = r#"{"kind": "analyze",
    "fsm": "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }",
    "level": 2}"#;

fn boot(options: ServerOptions) -> Server {
    Server::bind("127.0.0.1:0", options).expect("bind an ephemeral port")
}

#[test]
fn healthz_reports_liveness_queue_and_cache() {
    let server = boot(ServerOptions::default());
    let reply = http(server.local_addr(), "GET", "/v1/healthz", None);
    assert_eq!(reply.status, 200);
    let doc = reply.json();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        doc.get("queue").unwrap().get("capacity").unwrap().as_u64(),
        Some(64)
    );
    assert_eq!(
        doc.get("cache").unwrap().get("hits").unwrap().as_u64(),
        Some(0)
    );
    assert_eq!(
        doc.get("jobs").unwrap().get("queued").unwrap().as_u64(),
        Some(0)
    );
}

#[test]
fn analyze_lifecycle_runs_to_a_result_and_caches_the_model() {
    let server = boot(ServerOptions::default());
    let addr = server.local_addr();

    let id = submit(addr, FAST_JOB);
    let status = await_terminal(addr, id, Duration::from_secs(120));
    assert_eq!(status, "done");

    // Status document: kind, cache outcome (first run misses), digest.
    let doc = http(addr, "GET", &format!("/v1/jobs/{id}"), None).json();
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("analyze"));
    assert_eq!(doc.get("cache_hit").unwrap().as_bool(), Some(false));
    let digest = doc.get("digest").unwrap().as_str().unwrap().to_string();
    assert_eq!(digest.len(), 16, "digest renders as 16 hex digits");
    assert!(doc.get("error").is_none());

    let reply = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.headers.get("content-type").map(String::as_str),
        Some("application/json")
    );
    let result = reply.json();
    assert_eq!(result.get("module").unwrap().as_str(), Some("demo_scfi"));
    assert!(result.get("injections").unwrap().as_u64().unwrap() > 0);
    assert!(!result.get("sites").unwrap().as_arr().unwrap().is_empty());

    // Resubmitting the identical job hits the compile cache and returns
    // byte-identical results.
    let second = submit(addr, FAST_JOB);
    assert_eq!(
        await_terminal(addr, second, Duration::from_secs(120)),
        "done"
    );
    let doc = http(addr, "GET", &format!("/v1/jobs/{second}"), None).json();
    assert_eq!(doc.get("cache_hit").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("digest").unwrap().as_str().unwrap(), digest);
    let rerun = http(addr, "GET", &format!("/v1/jobs/{second}/result"), None);
    assert_eq!(
        rerun.body, reply.body,
        "cache hit must not change the result"
    );

    let health = http(addr, "GET", "/v1/healthz", None).json();
    let cache = health.get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));
}

#[test]
fn certify_lifecycle_runs_to_a_verdict_document() {
    let server = boot(ServerOptions::default());
    let body = run_to_result(
        server.local_addr(),
        r#"{"kind": "certify", "suite": "aes_control", "level": 3}"#,
    );
    let doc = scfi_serve::json::parse(&body).expect("certify result is JSON");
    assert_eq!(doc.get("config").unwrap().as_str(), Some("scfi"));
    let sites = doc.get("sites").unwrap().as_arr().unwrap();
    assert!(!sites.is_empty());
    for site in sites {
        let verdict = site.get("verdict").unwrap().as_str().unwrap();
        assert!(
            [
                "proven-detected",
                "proven-masked",
                "counterexample",
                "unknown"
            ]
            .contains(&verdict),
            "unexpected verdict `{verdict}`"
        );
    }
    assert!(doc.get("all_proven").unwrap().as_bool().is_some());
}

#[test]
fn cancel_mid_run_yields_a_marked_partial_result() {
    // One worker so the slow job owns it; cancel once injections are
    // demonstrably flowing, so the stop lands mid-campaign.
    let server = boot(ServerOptions {
        workers: 1,
        ..ServerOptions::default()
    });
    let addr = server.local_addr();
    let id = submit(addr, SLOW_JOB);
    await_status(addr, id, "running", Duration::from_secs(120));
    let start = std::time::Instant::now();
    loop {
        let doc = http(addr, "GET", &format!("/v1/jobs/{id}"), None).json();
        let injections = doc
            .get("progress")
            .unwrap()
            .get("injections")
            .unwrap()
            .as_u64()
            .unwrap();
        if injections > 0 {
            break;
        }
        assert_eq!(doc.get("status").unwrap().as_str(), Some("running"));
        assert!(
            start.elapsed() < Duration::from_secs(120),
            "no injections admitted after 120s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let reply = http(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
    assert_eq!(reply.status, 202);
    assert_eq!(
        reply.json().get("status").unwrap().as_str(),
        Some("cancel_requested")
    );

    assert_eq!(
        await_terminal(addr, id, Duration::from_secs(120)),
        "cancelled"
    );
    let doc = http(addr, "GET", &format!("/v1/jobs/{id}"), None).json();
    assert_eq!(
        doc.get("error").unwrap().as_str(),
        Some("stopped early: cancelled")
    );

    // The partial result is served, clearly marked, with the completed
    // prefix of the campaign.
    let reply = http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(reply.status, 200);
    let partial = reply.json();
    assert_eq!(partial.get("partial").unwrap().as_bool(), Some(true));
    assert_eq!(
        partial.get("stopped_early").unwrap().as_str(),
        Some("cancelled")
    );
    let completed = partial.get("completed").unwrap().as_u64().unwrap();
    let total = partial.get("total").unwrap().as_u64().unwrap();
    assert!(completed > 0, "cancel landed before any work completed");
    assert!(
        completed < total,
        "cancel landed after the campaign finished"
    );
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    let server = boot(ServerOptions {
        workers: 1,
        queue_capacity: 1,
        ..ServerOptions::default()
    });
    let addr = server.local_addr();

    // Occupy the only worker, then fill the only queue slot.
    let running = submit(addr, SLOW_JOB);
    await_status(addr, running, "running", Duration::from_secs(120));
    let queued = submit(addr, FAST_JOB);
    assert_eq!(job_status(addr, queued), "queued");

    // A queued job has no result yet.
    let reply = http(addr, "GET", &format!("/v1/jobs/{queued}/result"), None);
    assert_eq!(reply.status, 409);
    assert_eq!(
        reply
            .json()
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str(),
        Some("not_finished")
    );

    // The next submission is refused with backpressure, and the refused
    // job is not registered.
    let reply = http(addr, "POST", "/v1/jobs", Some(FAST_JOB));
    assert_eq!(reply.status, 429);
    assert_eq!(
        reply.headers.get("retry-after").map(String::as_str),
        Some("1")
    );
    let doc = reply.json();
    assert_eq!(
        doc.get("error").unwrap().get("code").unwrap().as_str(),
        Some("queue_full")
    );
    let refused_id = queued + 1;
    let reply = http(addr, "GET", &format!("/v1/jobs/{refused_id}"), None);
    assert_eq!(reply.status, 404, "refused job must not be registered");

    // Cancel both pending jobs: the queued one first (while the worker
    // is still busy, so it is discarded before it can start), then the
    // running one, which stops mid-campaign.
    for id in [queued, running] {
        assert_eq!(
            http(addr, "DELETE", &format!("/v1/jobs/{id}"), None).status,
            202
        );
    }
    assert_eq!(
        await_terminal(addr, running, Duration::from_secs(120)),
        "cancelled"
    );
    assert_eq!(
        await_terminal(addr, queued, Duration::from_secs(120)),
        "cancelled"
    );
    let doc = http(addr, "GET", &format!("/v1/jobs/{queued}"), None).json();
    assert_eq!(
        doc.get("error").unwrap().as_str(),
        Some("cancelled while queued")
    );
    // Cancelled-while-queued means no result document at all.
    let reply = http(addr, "GET", &format!("/v1/jobs/{queued}/result"), None);
    assert_eq!(reply.status, 500);
    assert_eq!(
        reply
            .json()
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str(),
        Some("job_failed")
    );
}

#[test]
fn malformed_and_invalid_requests_get_typed_errors() {
    let server = boot(ServerOptions::default());
    let addr = server.local_addr();

    let cases: &[(&str, &str, Option<&str>, u16, &str)] = &[
        ("POST", "/v1/jobs", Some("{not json"), 400, "bad_json"),
        ("POST", "/v1/jobs", Some(""), 400, "bad_json"),
        ("POST", "/v1/jobs", Some("[1, 2]"), 400, "bad_body"),
        (
            "POST",
            "/v1/jobs",
            Some(r#"{"kind": "analyze", "suite": "ghost_fsm"}"#),
            404,
            "unknown_suite",
        ),
        (
            "POST",
            "/v1/jobs",
            Some(r#"{"kind": "analyze", "suite": "aes_control", "joint": true}"#),
            400,
            "bad_knobs",
        ),
        (
            "POST",
            "/v1/jobs",
            Some(r#"{"kind": "analyze", "suite": "aes_control", "turbo": true}"#),
            400,
            "unknown_field",
        ),
        ("GET", "/v1/jobs/999", None, 404, "unknown_job"),
        ("GET", "/v1/jobs/999/result", None, 404, "unknown_job"),
        ("DELETE", "/v1/jobs/999", None, 404, "unknown_job"),
        ("GET", "/v1/jobs/abc", None, 404, "unknown_job"),
        ("GET", "/v1/nope", None, 404, "unknown_path"),
        ("DELETE", "/v1/healthz", None, 404, "unknown_path"),
        ("PUT", "/v1/jobs", None, 405, "bad_method"),
    ];
    for &(method, path, body, status, code) in cases {
        let reply = http(addr, method, path, body);
        assert_eq!(
            reply.status, status,
            "{method} {path} with {body:?} → {}",
            reply.body
        );
        assert_eq!(
            reply
                .json()
                .get("error")
                .unwrap()
                .get("code")
                .unwrap()
                .as_str(),
            Some(code),
            "{method} {path} with {body:?}"
        );
    }
}

#[test]
fn post_to_a_job_id_is_method_not_allowed() {
    let server = boot(ServerOptions::default());
    let addr = server.local_addr();
    let id = submit(addr, FAST_JOB);
    let reply = http(addr, "POST", &format!("/v1/jobs/{id}"), Some("{}"));
    assert_eq!(reply.status, 405);
    assert_eq!(
        reply
            .json()
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str(),
        Some("bad_method")
    );
    // Drain the job so shutdown doesn't wait on it.
    assert_eq!(await_terminal(addr, id, Duration::from_secs(120)), "done");
}
