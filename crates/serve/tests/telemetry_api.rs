//! Black-box tests for the `/v1/metrics` Prometheus endpoint and the
//! observability-adjacent server behaviours it certifies: exposition
//! well-formedness, counter monotonicity across scrapes, agreement with
//! `/v1/healthz`, TTL retirement of finished jobs, and wave-boundary
//! responsive cancellation of a *running certify* job (the cancel token
//! is polled inside the BDD step loop, not just between jobs).

mod common;

use std::collections::HashMap;
use std::time::{Duration, Instant};

use common::{await_status, await_terminal, http, run_to_result, submit};
use scfi_serve::{Server, ServerOptions};

/// A sub-second analyze campaign on the two-state demo FSM.
const FAST_JOB: &str = r#"{"kind": "analyze",
    "fsm": "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }",
    "level": 2}"#;

/// A certify job measured in minutes when run to completion: the i2c
/// controller's full cell space (stuck-ats and pin faults included)
/// certified *jointly*. The cancellation test never lets it finish —
/// that is the point.
const SLOW_CERTIFY: &str = r#"{"kind": "certify", "suite": "i2c_fsm", "level": 3,
    "joint": true, "all_gates": true, "stuck_at": true, "pin_faults": true}"#;

fn boot(options: ServerOptions) -> Server {
    Server::bind("127.0.0.1:0", options).expect("bind an ephemeral port")
}

/// Scrapes `/v1/metrics`, asserting status and content type.
fn scrape(addr: std::net::SocketAddr) -> String {
    let reply = http(addr, "GET", "/v1/metrics", None);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let content_type = reply.headers.get("content-type").expect("content type");
    assert!(
        content_type.starts_with("text/plain"),
        "unexpected metrics content type {content_type}"
    );
    reply.body
}

/// The value of one exact sample line (`name value`), if present.
fn sample(exposition: &str, name: &str) -> Option<f64> {
    let key = format!("{name} ");
    exposition.lines().find(|l| l.starts_with(&key)).map(|l| {
        l.rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .expect("numeric sample")
    })
}

/// The value of one exact sample line, panicking when the series is
/// absent — used for series the endpoint *must* export.
fn required(exposition: &str, name: &str) -> f64 {
    sample(exposition, name)
        .unwrap_or_else(|| panic!("/v1/metrics is missing required series {name}"))
}

/// Parses the exposition strictly: every line is a `# TYPE` declaration
/// or a sample belonging to a previously declared family; every sample
/// value parses as a finite number. Returns the counter samples.
fn parse_strict(exposition: &str) -> HashMap<String, f64> {
    let mut families: HashMap<String, String> = HashMap::new();
    let mut counters = HashMap::new();
    for line in exposition.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split(' ');
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown family kind in `{line}`"
            );
            assert_eq!(parts.next(), None, "trailing tokens in `{line}`");
            families.insert(name.to_string(), kind.to_string());
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "only # TYPE comment lines are emitted, got `{line}`"
        );
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("non-numeric sample value in `{line}`");
        });
        assert!(value.is_finite(), "non-finite sample in `{line}`");
        // The series must belong to a declared family: exact name for
        // counters/gauges, `_bucket{le=...}`/`_sum`/`_count` suffixes
        // for histograms.
        let base = series
            .split_once("_bucket{")
            .map(|(b, _)| b)
            .or_else(|| series.strip_suffix("_sum"))
            .or_else(|| series.strip_suffix("_count"))
            .filter(|b| families.get(*b).map(String::as_str) == Some("histogram"));
        match (families.get(series).map(String::as_str), base) {
            (Some("counter"), _) => {
                counters.insert(series.to_string(), value);
            }
            (Some("gauge"), _) | (_, Some(_)) => {}
            other => panic!("sample `{line}` has no declared family ({other:?})"),
        }
    }
    counters
}

#[test]
fn metrics_exposition_is_well_formed_and_covers_all_layers() {
    let server = boot(ServerOptions::default());
    let addr = server.local_addr();
    // One analyze job populates the campaign-layer series; one certify
    // job populates the symbolic-layer series.
    run_to_result(addr, FAST_JOB);
    run_to_result(
        addr,
        r#"{"kind": "certify", "suite": "aes_control", "level": 3}"#,
    );

    let body = scrape(addr);
    parse_strict(&body);

    // Serve layer: request accounting, queue wait, job runtime, worker
    // utilization, submissions.
    assert!(required(&body, "scfi_serve_requests_total") >= 2.0);
    assert!(required(&body, "scfi_serve_request_submit_ns_count") >= 2.0);
    assert!(required(&body, "scfi_serve_queue_wait_ns_count") >= 2.0);
    assert!(required(&body, "scfi_serve_job_run_ns_count") >= 2.0);
    assert!(required(&body, "scfi_serve_worker_busy_ns_total") > 0.0);
    assert!(required(&body, "scfi_serve_jobs_submitted_total") >= 2.0);
    // Campaign layer, populated by the analyze job.
    assert!(required(&body, "scfi_campaign_waves_total") > 0.0);
    assert!(required(&body, "scfi_campaign_injections_total") > 0.0);
    // Symbolic layer, populated by the certify job.
    assert!(required(&body, "scfi_bdd_ite_cache_hits_total") > 0.0);
    assert!(required(&body, "scfi_bdd_nodes_high_water") > 0.0);
    assert!(required(&body, "scfi_certify_site_ns_count") > 0.0);
}

#[test]
fn metrics_counters_are_monotone_across_scrapes() {
    let server = boot(ServerOptions::default());
    let addr = server.local_addr();
    run_to_result(addr, FAST_JOB);

    let first_body = scrape(addr);
    let first = parse_strict(&first_body);
    // Generate more traffic, then scrape again.
    for _ in 0..3 {
        assert_eq!(http(addr, "GET", "/v1/healthz", None).status, 200);
    }
    let second_body = scrape(addr);
    let second = parse_strict(&second_body);
    for (name, &before) in &first {
        let after = second
            .get(name)
            .unwrap_or_else(|| panic!("counter {name} vanished between scrapes"));
        assert!(
            *after >= before,
            "counter {name} went backwards: {before} -> {after}"
        );
    }
    // The traffic we generated is visible: 3 healthz + 1 metrics scrape.
    assert!(second["scfi_serve_requests_total"] >= first["scfi_serve_requests_total"] + 4.0);
    // The healthz histogram may not exist before the first healthz hit.
    assert!(
        required(&second_body, "scfi_serve_request_healthz_ns_count")
            >= sample(&first_body, "scfi_serve_request_healthz_ns_count").unwrap_or(0.0) + 3.0
    );
}

#[test]
fn metrics_cache_gauges_agree_with_healthz() {
    let server = boot(ServerOptions::default());
    let addr = server.local_addr();
    // Same model twice: one compile-cache miss, then one hit.
    run_to_result(addr, FAST_JOB);
    run_to_result(addr, FAST_JOB);

    let health = http(addr, "GET", "/v1/healthz", None).json();
    let cache = health.get("cache").unwrap();
    let body = scrape(addr);
    assert_eq!(
        required(&body, "scfi_serve_cache_hits") as u64,
        cache.get("hits").unwrap().as_u64().unwrap()
    );
    assert_eq!(
        required(&body, "scfi_serve_cache_misses") as u64,
        cache.get("misses").unwrap().as_u64().unwrap()
    );
    assert_eq!(
        required(&body, "scfi_serve_cache_entries") as u64,
        cache.get("entries").unwrap().as_u64().unwrap()
    );
    assert!(required(&body, "scfi_serve_cache_hits") >= 1.0);
}

/// The TTL soak: with a tiny `job_ttl`, finished jobs are retired on
/// subsequent submissions, the registry stays bounded, and the eviction
/// counter records every retirement.
#[test]
fn finished_jobs_are_retired_after_their_ttl() {
    let server = boot(ServerOptions {
        job_ttl: Duration::from_millis(50),
        ..ServerOptions::default()
    });
    let addr = server.local_addr();

    let mut ids = Vec::new();
    for _ in 0..12 {
        let id = submit(addr, FAST_JOB);
        assert_eq!(await_terminal(addr, id, Duration::from_secs(120)), "done");
        ids.push(id);
        // Let the finished job age past its TTL before the next submit
        // sweeps the registry.
        std::thread::sleep(Duration::from_millis(80));
    }

    let body = scrape(addr);
    assert!(
        required(&body, "scfi_serve_jobs_evicted_total") >= 10.0,
        "evictions not recorded: {body}"
    );
    assert!(
        required(&body, "scfi_serve_registry_jobs") <= 2.0,
        "registry not bounded: {body}"
    );
    // A retired job is gone from the API, exactly like an unknown id.
    let reply = http(addr, "GET", &format!("/v1/jobs/{}", ids[0]), None);
    assert_eq!(reply.status, 404, "{}", reply.body);
}

/// DELETE on a *running certify* job lands inside the BDD step loop:
/// the job reaches `cancelled` in seconds, not after the minutes the
/// joint certification would otherwise run.
#[test]
fn cancel_running_certify_is_responsive() {
    let server = boot(ServerOptions {
        workers: 1,
        ..ServerOptions::default()
    });
    let addr = server.local_addr();
    let id = submit(addr, SLOW_CERTIFY);
    await_status(addr, id, "running", Duration::from_secs(120));
    // Let the certifier get deep into BDD work before pulling the plug.
    std::thread::sleep(Duration::from_millis(300));

    let reply = http(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
    assert_eq!(reply.status, 202, "{}", reply.body);
    let cancelled_at = Instant::now();
    assert_eq!(
        await_terminal(addr, id, Duration::from_secs(60)),
        "cancelled"
    );
    assert!(
        cancelled_at.elapsed() < Duration::from_secs(30),
        "cancel took {:?} — the BDD loop is not polling the token",
        cancelled_at.elapsed()
    );
    let doc = http(addr, "GET", &format!("/v1/jobs/{id}"), None).json();
    assert_eq!(
        doc.get("error").unwrap().as_str(),
        Some("stopped early: cancelled")
    );
}
