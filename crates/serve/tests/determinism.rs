//! Determinism conformance: results served by `scfi serve` must be
//! **byte-identical** to direct library runs of the same experiment.
//!
//! The server adds machinery between the client and the engines — the
//! compile cache with its [`precompiled`](scfi_faultsim::CampaignConfig::precompiled)
//! hint, worker threads, the HTTP layer — and none of it may perturb a
//! single result byte. Each test therefore computes the expected document
//! through the plain library path (fresh hardening, *no* precompiled
//! netlist, same knobs as the job defaults) and compares it against what
//! the wire delivers, on first submission (cache miss) and on
//! resubmission (cache hit).
//!
//! The property test at the bottom drives a server with many concurrent
//! clients submitting a random mix of jobs and cancellations, and checks
//! every completed result against its serial replay.

mod common;

use std::sync::OnceLock;
use std::time::Duration;

use common::{await_terminal, http, submit};
use scfi_core::{harden, redundancy, ScfiConfig};
use scfi_faultsim::{Backend, CampaignConfig, FaultEffect, VulnerabilityMap};
use scfi_faultsim::{RedundancyTarget, ScfiTarget, UnprotectedTarget};
use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};
use scfi_serve::jobs::certify_fault_set;
use scfi_serve::{wire, ConfigKind, Server, ServerOptions};
use scfi_symbolic::{Certifier, CertifyBudget, CertifyModel};

const DEMO: &str = "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }";

/// Table-1 FSMs exercised by the analyze conformance sweep (a spread of
/// sizes; the full bundle is covered by the opentitan suite itself).
const ANALYZE_SUITES: &[&str] = &["aes_control", "otbn_controller", "pwrmgr_fsm"];

/// Table-1 FSMs exercised by the (more expensive) certify sweep.
const CERTIFY_SUITES: &[&str] = &["aes_control", "otbn_controller"];

const CONFIGS: &[ConfigKind] = &[
    ConfigKind::Scfi,
    ConfigKind::Redundancy,
    ConfigKind::Unprotected,
];

fn suite_fsm(name: &str) -> Fsm {
    scfi_opentitan::by_name(name).expect("bundled suite").fsm
}

/// The campaign knobs a default analyze job runs under — mirrored from
/// the job defaults, but *without* the precompiled-netlist hint, so this
/// is a genuinely independent path to the result.
fn direct_campaign_config() -> CampaignConfig {
    CampaignConfig::new()
        .effects(vec![FaultEffect::Flip])
        .threads(2)
        .lane_words(4)
        .backend(Backend::default())
}

/// `scfi analyze --format json` through the library, no server, no cache.
fn direct_analyze_json(fsm: &Fsm, kind: ConfigKind, level: usize) -> String {
    let config = direct_campaign_config();
    let mut body = String::new();
    match kind {
        ConfigKind::Scfi => {
            let hardened = harden(fsm, &ScfiConfig::new(level)).expect("hardening succeeds");
            hardened.check_all_edges().expect("hardened FSM verifies");
            let map = VulnerabilityMap::analyze(&ScfiTarget::new(&hardened), &config);
            wire::write_sites_json(&mut body, hardened.module(), &map);
        }
        ConfigKind::Redundancy => {
            let redundant = redundancy(fsm, level).expect("redundancy succeeds");
            let map = VulnerabilityMap::analyze(&RedundancyTarget::new(&redundant), &config);
            wire::write_sites_json(&mut body, redundant.module(), &map);
        }
        ConfigKind::Unprotected => {
            let lowered = lower_unprotected(fsm).expect("lowering succeeds");
            let map = VulnerabilityMap::analyze(&UnprotectedTarget::new(fsm, &lowered), &config);
            wire::write_sites_json(&mut body, lowered.module(), &map);
        }
    }
    body
}

fn certify_bytes<M: CertifyModel>(model: &M) -> String {
    let module = model.module();
    let faults = certify_fault_set(module, false, false, false);
    let report = match Certifier::with_budget(model, CertifyBudget::unlimited()) {
        Ok(mut certifier) => certifier.certify_all(&faults),
        Err(overflow) => Certifier::degraded_report(model, &faults, overflow),
    };
    let mut body = String::new();
    wire::write_certify_json(&mut body, module, &report);
    body
}

/// `scfi certify` (per-site, default fault space) through the library.
fn direct_certify_json(fsm: &Fsm, kind: ConfigKind, level: usize) -> String {
    match kind {
        ConfigKind::Scfi => {
            let hardened = harden(fsm, &ScfiConfig::new(level)).expect("hardening succeeds");
            hardened.check_all_edges().expect("hardened FSM verifies");
            certify_bytes(&hardened)
        }
        ConfigKind::Redundancy => {
            certify_bytes(&redundancy(fsm, level).expect("redundancy succeeds"))
        }
        ConfigKind::Unprotected => {
            certify_bytes(&lower_unprotected(fsm).expect("lowering succeeds"))
        }
    }
}

/// Submits the job twice: the first run must miss the compile cache, the
/// second must hit it, and both must serve byte-identical results.
fn served_twice(server: &Server, body: &str) -> String {
    let addr = server.local_addr();
    let first = submit(addr, body);
    assert_eq!(
        await_terminal(addr, first, Duration::from_secs(300)),
        "done"
    );
    let miss = http(addr, "GET", &format!("/v1/jobs/{first}"), None).json();
    assert_eq!(
        miss.get("cache_hit").unwrap().as_bool(),
        Some(false),
        "first submission of {body} should compile"
    );
    let result = http(addr, "GET", &format!("/v1/jobs/{first}/result"), None);
    assert_eq!(result.status, 200);

    let second = submit(addr, body);
    assert_eq!(
        await_terminal(addr, second, Duration::from_secs(300)),
        "done"
    );
    let hit = http(addr, "GET", &format!("/v1/jobs/{second}"), None).json();
    assert_eq!(
        hit.get("cache_hit").unwrap().as_bool(),
        Some(true),
        "resubmission of {body} should hit the cache"
    );
    let rerun = http(addr, "GET", &format!("/v1/jobs/{second}/result"), None);
    assert_eq!(
        rerun.body, result.body,
        "cache hit changed the result for {body}"
    );
    result.body
}

#[test]
fn served_analyze_is_byte_identical_to_direct_runs() {
    let server = Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind");
    for &suite in ANALYZE_SUITES {
        let fsm = suite_fsm(suite);
        for &config in CONFIGS {
            let expected = direct_analyze_json(&fsm, config, 3);
            let body = format!(
                r#"{{"kind": "analyze", "suite": "{suite}", "config": "{}", "level": 3}}"#,
                config.name()
            );
            let served = served_twice(&server, &body);
            assert_eq!(
                served,
                expected,
                "served analyze diverged from the direct run: {suite} / {}",
                config.name()
            );
        }
    }
}

#[test]
fn served_certify_is_byte_identical_to_direct_runs() {
    let server = Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind");
    for &suite in CERTIFY_SUITES {
        let fsm = suite_fsm(suite);
        for &config in CONFIGS {
            let expected = direct_certify_json(&fsm, config, 3);
            let body = format!(
                r#"{{"kind": "certify", "suite": "{suite}", "config": "{}", "level": 3}}"#,
                config.name()
            );
            let served = served_twice(&server, &body);
            assert_eq!(
                served,
                expected,
                "served certify diverged from the direct run: {suite} / {}",
                config.name()
            );
        }
    }
}

#[test]
fn served_csv_rendering_matches_the_direct_writer() {
    let fsm = parse_fsm(DEMO).expect("demo parses");
    let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("hardening succeeds");
    hardened.check_all_edges().expect("hardened FSM verifies");
    let map = VulnerabilityMap::analyze(&ScfiTarget::new(&hardened), &direct_campaign_config());
    let mut expected = String::new();
    wire::write_sites_csv(&mut expected, hardened.module(), &map);

    let server = Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind");
    let body = format!(
        r#"{{"kind": "analyze", "fsm": {}, "level": 2, "format": "csv"}}"#,
        scfi_serve::json::Json::Str(DEMO.to_string()).encode()
    );
    let id = submit(server.local_addr(), &body);
    assert_eq!(
        await_terminal(server.local_addr(), id, Duration::from_secs(120)),
        "done"
    );
    let reply = http(
        server.local_addr(),
        "GET",
        &format!("/v1/jobs/{id}/result"),
        None,
    );
    assert_eq!(
        reply.headers.get("content-type").map(String::as_str),
        Some("text/csv")
    );
    assert_eq!(reply.body, expected);
}

// ---------------------------------------------------------------------
// Concurrent-clients property test
// ---------------------------------------------------------------------

use proptest::prelude::*;

/// The randomized job menu: small demo-FSM experiments covering both
/// kinds, both analyze formats and two configurations.
const MENU: usize = 4;

fn menu_body(pick: usize) -> String {
    let dsl = scfi_serve::json::Json::Str(DEMO.to_string()).encode();
    match pick {
        0 => format!(r#"{{"kind": "analyze", "fsm": {dsl}, "level": 2}}"#),
        1 => format!(r#"{{"kind": "analyze", "fsm": {dsl}, "level": 2, "format": "csv"}}"#),
        2 => format!(r#"{{"kind": "analyze", "fsm": {dsl}, "level": 2, "config": "redundancy"}}"#),
        _ => format!(r#"{{"kind": "certify", "fsm": {dsl}, "level": 2}}"#),
    }
}

/// Serial replays of the menu, computed once through the direct library
/// path (shared across property cases — the replay is deterministic).
fn menu_expected(pick: usize) -> &'static str {
    static EXPECTED: OnceLock<[String; MENU]> = OnceLock::new();
    &EXPECTED.get_or_init(|| {
        let fsm = parse_fsm(DEMO).expect("demo parses");
        let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("hardening succeeds");
        hardened.check_all_edges().expect("hardened FSM verifies");
        let map = VulnerabilityMap::analyze(&ScfiTarget::new(&hardened), &direct_campaign_config());
        let mut csv = String::new();
        wire::write_sites_csv(&mut csv, hardened.module(), &map);
        [
            direct_analyze_json(&fsm, ConfigKind::Scfi, 2),
            csv,
            direct_analyze_json(&fsm, ConfigKind::Redundancy, 2),
            direct_certify_json(&fsm, ConfigKind::Scfi, 2),
        ]
    })[pick]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// N concurrent clients submit a random mix of jobs, some racing a
    /// cancellation right behind the submission. Every job that reports
    /// `done` must serve exactly its serial replay; every cancelled job
    /// must carry the documented early-stop marker.
    #[test]
    fn concurrent_random_jobs_match_their_serial_replays(
        plan in proptest::collection::vec((0usize..MENU, any::<bool>()), 1..9),
    ) {
        let server = Server::bind("127.0.0.1:0", ServerOptions::default()).expect("bind");
        let addr = server.local_addr();
        let clients: Vec<_> = plan
            .into_iter()
            .map(|(pick, cancel)| {
                std::thread::spawn(move || {
                    let id = submit(addr, &menu_body(pick));
                    if cancel {
                        let reply = http(addr, "DELETE", &format!("/v1/jobs/{id}"), None);
                        assert_eq!(reply.status, 202);
                    }
                    let status = await_terminal(addr, id, Duration::from_secs(300));
                    match status.as_str() {
                        "done" => {
                            let reply =
                                http(addr, "GET", &format!("/v1/jobs/{id}/result"), None);
                            assert_eq!(reply.status, 200);
                            assert_eq!(
                                reply.body,
                                menu_expected(pick),
                                "job {id} (menu {pick}) diverged from its serial replay"
                            );
                        }
                        "cancelled" => {
                            assert!(cancel, "job {id} cancelled without a request");
                            let doc = http(addr, "GET", &format!("/v1/jobs/{id}"), None).json();
                            let error = doc.get("error").unwrap().as_str().unwrap().to_string();
                            assert!(
                                error == "cancelled while queued"
                                    || error == "stopped early: cancelled",
                                "job {id}: unexpected cancel marker `{error}`"
                            );
                        }
                        other => panic!("job {id} (menu {pick}) ended as `{other}`"),
                    }
                })
            })
            .collect();
        for client in clients {
            prop_assert!(client.join().is_ok(), "a client thread failed");
        }
    }
}
