//! Golden-file test for the batched per-site export: `scfi analyze
//! --format csv` on a fixed FSM must reproduce the checked-in golden
//! output byte for byte.
//!
//! Campaign execution is deterministic by construction (outcomes are
//! written by work-list slot, independent of thread count, wave width and
//! lane order), so the whole per-site map — not just aggregate counts —
//! is a stable artifact. If the hardening pass changes the emitted
//! netlist intentionally, regenerate with:
//!
//! ```text
//! printf 'fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }' > demo.dsl
//! cargo run -p scfi-cli -- analyze demo.dsl --level 2 --format csv \
//!   > crates/cli/tests/golden/analyze_demo_sites.csv
//! ```

const DEMO: &str = "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }";

fn run(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    scfi_cli::run(&args, &mut out).expect("command succeeds");
    out
}

#[test]
fn analyze_csv_matches_the_golden_file() {
    let path = std::env::temp_dir().join(format!("scfi_golden_demo_{}.dsl", std::process::id()));
    std::fs::write(&path, DEMO).expect("writable temp dir");
    let csv = run(&[
        "analyze",
        path.to_str().expect("utf8"),
        "--level",
        "2",
        "--format",
        "csv",
    ]);
    let _ = std::fs::remove_file(&path);
    let golden = include_str!("golden/analyze_demo_sites.csv");
    assert_eq!(
        csv, golden,
        "per-site CSV drifted from the golden file; see the module docs \
         for the regeneration command"
    );
}

/// The JSON export was captured *before* the writer moved from this
/// crate into `scfi_serve::wire`; matching it byte for byte proves the
/// hoist changed nothing. It is also the layout the job server streams,
/// so any drift here would desynchronize served and CLI results.
#[test]
fn analyze_json_matches_the_golden_file() {
    let path = std::env::temp_dir().join(format!("scfi_golden_json_g_{}.dsl", std::process::id()));
    std::fs::write(&path, DEMO).expect("writable temp dir");
    let json = run(&[
        "analyze",
        path.to_str().expect("utf8"),
        "--level",
        "2",
        "--format",
        "json",
    ]);
    let _ = std::fs::remove_file(&path);
    let golden = include_str!("golden/analyze_demo_sites.json");
    assert_eq!(
        json, golden,
        "per-site JSON drifted from the golden file captured before the \
         writer was hoisted into scfi-serve"
    );
}

#[test]
fn analyze_json_agrees_with_the_csv_totals() {
    let path = std::env::temp_dir().join(format!("scfi_golden_json_{}.dsl", std::process::id()));
    std::fs::write(&path, DEMO).expect("writable temp dir");
    let p = path.to_str().expect("utf8");
    let csv = run(&["analyze", p, "--level", "2", "--format", "csv"]);
    let json = run(&["analyze", p, "--level", "2", "--format", "json"]);
    let _ = std::fs::remove_file(&path);
    // Same site count in both exports (rows minus header vs JSON site
    // objects), and the same total injections.
    let rows = csv.lines().count() - 1;
    assert_eq!(json.matches("\"cell\":").count(), rows);
    let total: usize = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(6).unwrap().parse::<usize>().unwrap())
        .sum();
    let injections: usize = json
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"injections\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .expect("injections field");
    assert_eq!(total, injections);
}
