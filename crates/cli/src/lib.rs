//! Implementation of the `scfi` command-line tool.
//!
//! The binary is a thin wrapper around [`run`], which parses an argument
//! vector and writes to the provided output — keeping everything testable
//! without spawning processes:
//!
//! ```text
//! scfi harden <fsm.dsl|-> [--level N] [--adaptive] [--rails R]
//!             [--protect-outputs] [--pad zero|replicate]
//!             [--emit verilog|dot|report]
//! scfi analyze <fsm.dsl|-> [--level N] [--region all|diffusion|selector]
//!              [--pin-faults] [--stuck-at] [--rank] [--multi M --runs K]
//!              [--protocol K] [--fuzz-inputs] [--fault-windows]
//!              [--lanes 64|128|256] [--format text|csv|json]
//!              [--timeout-secs T] [--max-injections K]
//!              [--stats [text|json]] [--trace-out FILE]
//! scfi certify <fsm.dsl|-> [--level N] [--config scfi|redundancy|unprotected]
//!              [--all-gates] [--stuck-at] [--pin-faults] [--per-site]
//!              [--joint] [--max-active K] [--expect-proof]
//!              [--timeout-secs T] [--max-bdd-nodes K]
//!              [--stats [text|json]] [--trace-out FILE]
//! scfi area <fsm.dsl|-> [--level N]
//! scfi suite [name]
//! scfi serve [--addr HOST:PORT] [--workers N] [--queue-capacity K]
//!            [--cache-capacity K]
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use scfi_core::{harden, redundancy, PadPolicy, ScfiConfig};
use scfi_faultsim::{
    try_run_exhaustive, try_run_multi_fault, CampaignConfig, CampaignError, FaultEffect,
    RunControl, ScfiTarget, StopReason,
};
use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};
use scfi_stdcell::Library;
use scfi_symbolic::{
    describe_fault, CertificationReport, Certifier, CertifyBudget, CertifyModel, JointReport,
    JointVerdict, Verdict,
};
use scfi_telemetry::Telemetry;

/// A CLI failure: message for stderr plus the process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested exit code (1 = usage, 2 = input, 3 = processing,
    /// 4 = cancelled or timed out with partial results printed,
    /// 5 = resource budget exhausted).
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError {
        message: format!("{}\n\n{}", message.into(), USAGE),
        code: 1,
    }
}

/// Top-level usage text.
pub const USAGE: &str = "usage:
  scfi harden <fsm.dsl|-> [--level N] [--adaptive] [--rails R]
              [--protect-outputs] [--pad zero|replicate]
              [--emit verilog|dot|report]
  scfi analyze <fsm.dsl|-> [--level N] [--region all|diffusion|selector]
               [--pin-faults] [--stuck-at] [--rank] [--multi M --runs K]
               [--protocol K] [--fuzz-inputs] [--fault-windows]
               [--backend scalar|packed|simd]
               [--lanes 64|128|256] [--format text|csv|json]
               [--timeout-secs T] [--max-injections K]
               [--stats [text|json]] [--trace-out FILE]
  scfi certify <fsm.dsl|-> [--level N] [--config scfi|redundancy|unprotected]
               [--all-gates] [--stuck-at] [--pin-faults] [--per-site]
               [--joint] [--max-active K] [--expect-proof]
               [--timeout-secs T] [--max-bdd-nodes K]
               [--stats [text|json]] [--trace-out FILE]
  scfi area <fsm.dsl|-> [--level N]
  scfi suite [name]
  scfi serve [--addr HOST:PORT] [--workers N] [--queue-capacity K]
             [--cache-capacity K]

`scfi serve` runs the campaign-as-a-service HTTP job server (default
address 127.0.0.1:3007): POST /v1/jobs submits an analyze or certify
job, GET /v1/jobs/{id} polls status, GET /v1/jobs/{id}/result fetches
the result document, DELETE /v1/jobs/{id} cancels cooperatively, and
GET /v1/healthz reports queue depth and compile-cache counters. Served
results are byte-identical to the corresponding CLI output.

`-` reads the FSM DSL from standard input. `scfi suite` lists the bundled
OpenTitan-like benchmark FSMs; `scfi suite <name>` prints one as DSL.
`--protocol K` runs a multi-cycle campaign over depth-K CFG walks, each
step glitched transiently, instead of the single-transition experiment.
`--backend` picks the campaign engine (default `packed`): `scalar` is
the one-injection-at-a-time reference, `packed` the bit-parallel wave
engine, `simd` the fixed 512-lane vectorization-shaped wave engine.
`--lanes` picks the packed backend's wave width (default 256; accepted:
64, 128, 256). The report is identical for every backend, width and
thread count, only throughput changes. `--format csv|json` streams the
per-site vulnerability map instead of the text summary.

`--fuzz-inputs` (requires `--protocol`) biases the protocol walks
adversarially: each cycle's condition word is sampled toward valid
codewords closest to a *wrong* edge's word, the inputs a glitch is most
likely to confuse. `--fault-windows` (requires `--multi`) arms each
drawn fault on its own independently sampled cycle of the schedule
instead of one shared window — the paper's §3 temporal attacker.

`scfi analyze` *samples* the detection claim with simulation campaigns
over concrete scenarios; `scfi certify` *proves* it, building BDDs of
every fault's escape condition over all reachable states and all valid
encoded input words (and refuting it with a replayed witness where no
proof exists — e.g. the unprotected configuration). `--expect-proof`
exits non-zero unless every certified site is proven. `--joint` proves
the claim *jointly*: one selector variable per fault site plus a
cardinality constraint certify every combination of up to
`--max-active` simultaneous faults (default: protection level minus
one, the paper's N − 1 bound) in a single emptiness check. With
`--all-gates`, escaping sites are additionally aggregated into a
ranked per-cell designer report.

Observability: `--stats` appends a per-run telemetry block (counters,
gauges, histograms) after the report — `--stats text` is human-readable,
`--stats json` a strict-JSON document; a bare `--stats` means text.
`--trace-out FILE` writes the run's phase spans as a chrome://tracing
JSON document (load it at chrome://tracing or ui.perfetto.dev). Neither
flag changes the report itself: campaign and certification output is
byte-identical with telemetry on or off.

Budgets: `--timeout-secs`/`--max-injections` stop an `analyze` campaign
cleanly at the next wave boundary and print the completed prefix marked
PARTIAL RESULT (every printed count is byte-identical to the same slots
of an uninterrupted run). `--timeout-secs`/`--max-bdd-nodes` bound
certification: over-budget sites degrade to UNKNOWN verdicts — never a
fabricated proof. Exit codes: 0 success, 1 usage, 2 input, 3 processing
failure (including a refuted `--expect-proof`), 4 cancelled or timed
out with partial results printed, 5 resource budget exhausted.";

/// Runs the CLI on an argument vector (without the program name), writing
/// the result into `out`.
///
/// # Errors
///
/// Returns a [`CliError`] with a message and exit code on any usage,
/// input, or processing failure.
pub fn run(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut args = args.iter();
    match args.next().map(String::as_str) {
        Some("harden") => cmd_harden(&args.cloned().collect::<Vec<_>>(), out),
        Some("analyze") => cmd_analyze(&args.cloned().collect::<Vec<_>>(), out),
        Some("certify") => cmd_certify(&args.cloned().collect::<Vec<_>>(), out),
        Some("area") => cmd_area(&args.cloned().collect::<Vec<_>>(), out),
        Some("suite") => cmd_suite(&args.cloned().collect::<Vec<_>>(), out),
        Some("serve") => cmd_serve(&args.cloned().collect::<Vec<_>>()),
        Some("--help") | Some("-h") | Some("help") => {
            let _ = writeln!(out, "{USAGE}");
            Ok(())
        }
        Some(other) => Err(usage_err(format!("unknown command `{other}`"))),
        None => Err(usage_err("missing command")),
    }
}

/// Simple flag cursor over the remaining arguments.
struct Flags<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags {
            args,
            used: vec![false; args.len()],
        }
    }

    /// The first unused non-flag argument (the input path).
    fn positional(&mut self) -> Option<&'a str> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && !a.starts_with("--") {
                self.used[i] = true;
                return Some(a);
            }
        }
        None
    }

    fn switch(&mut self, name: &str) -> bool {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                let Some(v) = self.args.get(i + 1) else {
                    return Err(usage_err(format!("{name} needs a value")));
                };
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// A flag whose value is optional: consumes the flag itself, and the
    /// following argument only when it is one of `allowed` exactly (so
    /// `--stats --rank` treats `--rank` as the next flag, not a value).
    /// Returns `None` when the flag is absent, `Some(None)` when it is
    /// present bare, `Some(Some(v))` when an accepted value follows.
    fn optional_value(&mut self, name: &str, allowed: &[&str]) -> Option<Option<&'a str>> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                if let Some(v) = self.args.get(i + 1) {
                    if !self.used[i + 1] && allowed.contains(&v.as_str()) {
                        self.used[i + 1] = true;
                        return Some(Some(v));
                    }
                }
                return Some(None);
            }
        }
        None
    }

    fn finish(&self) -> Result<(), CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] {
                return Err(usage_err(format!("unexpected argument `{a}`")));
            }
        }
        Ok(())
    }
}

fn load_fsm(path: &str) -> Result<Fsm, CliError> {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| CliError {
                message: format!("reading stdin: {e}"),
                code: 2,
            })?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError {
            message: format!("reading {path}: {e}"),
            code: 2,
        })?
    };
    parse_fsm(&text).map_err(|e| CliError {
        message: format!("parsing {path}: {e}"),
        code: 2,
    })
}

fn parse_config(flags: &mut Flags<'_>) -> Result<ScfiConfig, CliError> {
    let level: usize = match flags.value("--level")? {
        Some(v) => v
            .parse()
            .map_err(|_| usage_err("--level must be a number"))?,
        None => 3,
    };
    let mut config = ScfiConfig::new(level);
    if flags.switch("--adaptive") {
        config = config.adaptive_mds(true);
    }
    if let Some(r) = flags.value("--rails")? {
        let rails: usize = r
            .parse()
            .map_err(|_| usage_err("--rails must be a number"))?;
        if rails == 0 {
            return Err(usage_err("--rails must be at least 1"));
        }
        config = config.selector_rails(rails);
    }
    if flags.switch("--protect-outputs") {
        config = config.protect_outputs(true);
    }
    match flags.value("--pad")? {
        Some("zero") | None => {}
        Some("replicate") => config = config.pad(PadPolicy::Replicate),
        Some(other) => return Err(usage_err(format!("unknown pad policy `{other}`"))),
    }
    Ok(config)
}

fn harden_from(flags: &mut Flags<'_>) -> Result<(Fsm, scfi_core::HardenedFsm), CliError> {
    let Some(path) = flags.positional() else {
        return Err(usage_err("missing FSM input file"));
    };
    let fsm = load_fsm(path)?;
    let config = parse_config(flags)?;
    let hardened = harden(&fsm, &config).map_err(|e| CliError {
        message: format!("hardening failed: {e}"),
        code: 3,
    })?;
    hardened.check_all_edges().map_err(|e| CliError {
        message: format!("internal verification failed: {e}"),
        code: 3,
    })?;
    Ok((fsm, hardened))
}

fn cmd_harden(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut flags = Flags::new(args);
    let emit = flags.value("--emit")?.unwrap_or("verilog").to_string();
    let (_fsm, hardened) = harden_from(&mut flags)?;
    flags.finish()?;
    match emit.as_str() {
        "verilog" => {
            let _ = write!(out, "{}", hardened.module().to_verilog());
        }
        "dot" => {
            let _ = write!(out, "{}", hardened.module().to_dot());
        }
        "report" => {
            let _ = writeln!(out, "{}", hardened.report());
            let r = hardened.regions();
            let _ = writeln!(out, "regions (cells):");
            let _ = writeln!(out, "  pattern match   {:>6}", r.pattern_match.len());
            let _ = writeln!(out, "  modifier select {:>6}", r.modifier_select.len());
            let _ = writeln!(out, "  diffusion       {:>6}", r.diffusion.len());
            let _ = writeln!(out, "  error logic     {:>6}", r.error_logic.len());
            let _ = writeln!(out, "  output check    {:>6}", r.output_check.len());
        }
        other => return Err(usage_err(format!("unknown emit format `{other}`"))),
    }
    Ok(())
}

fn cmd_analyze(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut flags = Flags::new(args);
    let region = flags.value("--region")?.unwrap_or("all").to_string();
    let pin_faults = flags.switch("--pin-faults");
    let stuck_at = flags.switch("--stuck-at");
    let rank = flags.switch("--rank");
    let multi: Option<usize> = flags
        .value("--multi")?
        .map(|v| v.parse().map_err(|_| usage_err("--multi must be a number")))
        .transpose()?;
    let runs: usize = match flags.value("--runs")? {
        Some(v) => v
            .parse()
            .map_err(|_| usage_err("--runs must be a number"))?,
        None => 2000,
    };
    let protocol: Option<usize> = flags
        .value("--protocol")?
        .map(|v| {
            v.parse()
                .ok()
                .filter(|&k: &usize| k > 0)
                .ok_or_else(|| usage_err("--protocol must be a positive walk depth"))
        })
        .transpose()?;
    let fuzz_inputs = flags.switch("--fuzz-inputs");
    let fault_windows = flags.switch("--fault-windows");
    if fuzz_inputs && protocol.is_none() {
        return Err(usage_err(
            "--fuzz-inputs biases protocol walks; it requires --protocol",
        ));
    }
    if fault_windows && multi.is_none() {
        return Err(usage_err(
            "--fault-windows samples per-fault arming windows; it requires --multi",
        ));
    }
    let lane_words: usize = match flags.value("--lanes")? {
        Some("64") => 1,
        Some("128") => 2,
        Some("256") | None => 4,
        Some(other) => {
            return Err(usage_err(format!(
                "--lanes must be 64, 128 or 256 (got `{other}`)"
            )))
        }
    };
    let backend = match flags.value("--backend")? {
        None => scfi_faultsim::Backend::default(),
        Some(name) => scfi_faultsim::Backend::parse(name).ok_or_else(|| {
            usage_err(format!(
                "--backend must be scalar, packed or simd (got `{name}`)"
            ))
        })?,
    };
    let format = flags.value("--format")?.unwrap_or("text").to_string();
    let control = parse_run_control(&mut flags)?;
    let stats = parse_stats_options(&mut flags)?;
    let (_fsm, hardened) = harden_from(&mut flags)?;
    flags.finish()?;

    let mut effects = vec![FaultEffect::Flip];
    if stuck_at {
        effects.push(FaultEffect::Stuck0);
        effects.push(FaultEffect::Stuck1);
    }
    let mut config = CampaignConfig::new()
        .effects(effects)
        .threads(2)
        .lane_words(lane_words)
        .backend(backend)
        .telemetry(stats.telemetry.clone());
    let regions = hardened.regions();
    config = match region.as_str() {
        "all" => config,
        "diffusion" => config.region(regions.diffusion.clone()),
        "selector" => config.region(regions.pattern_match.start..regions.modifier_select.end),
        other => return Err(usage_err(format!("unknown region `{other}`"))),
    };
    if pin_faults {
        config = config.with_pin_faults();
    }
    if fault_windows {
        config = config.with_fault_windows();
    }

    let target = match protocol {
        // Walk seed fixed so repeated invocations analyze the same
        // protocol scenario set.
        Some(depth) if fuzz_inputs => {
            ScfiTarget::with_fuzzed_protocol(&hardened, depth, 0x5CF1_3007)
        }
        Some(depth) => ScfiTarget::with_protocol(&hardened, depth, 0x5CF1_3007),
        None => ScfiTarget::new(&hardened),
    };
    if let Some(depth) = protocol {
        let _ = writeln!(
            out,
            "multi-cycle campaign: depth-{depth} {}protocol walks, {} scenarios",
            if fuzz_inputs {
                "adversarially fuzzed "
            } else {
                ""
            },
            scfi_faultsim::FaultTarget::scenario_count(&target)
        );
    }
    match format.as_str() {
        "text" => {
            let report = match multi {
                Some(m) => try_run_multi_fault(&target, m, runs, &config, &control),
                None => try_run_exhaustive(&target, &config, &control),
            }
            .map_err(|e| campaign_error(e, out))?;
            let _ = writeln!(out, "{report}");
            let _ = writeln!(
                out,
                "analytic success probability (paper formula): {:.3e}",
                scfi_faultsim::paper_success_probability(&hardened)
            );
            if rank {
                if multi.is_some() {
                    return Err(usage_err("--rank applies to exhaustive campaigns only"));
                }
                let map = scfi_faultsim::VulnerabilityMap::try_analyze(&target, &config, &control)
                    .map_err(|e| campaign_error(e, out))?;
                let _ = writeln!(out, "{map}");
            }
        }
        "csv" | "json" => {
            if multi.is_some() {
                return Err(usage_err(
                    "--format csv|json streams the exhaustive per-site map; \
                     it cannot be combined with --multi",
                ));
            }
            if rank {
                return Err(usage_err(
                    "--rank is the text ranking; --format csv|json already \
                     exports every site",
                ));
            }
            let map = scfi_faultsim::VulnerabilityMap::try_analyze(&target, &config, &control)
                .map_err(|e| campaign_error(e, out))?;
            if format == "csv" {
                scfi_serve::wire::write_sites_csv(out, hardened.module(), &map);
            } else {
                scfi_serve::wire::write_sites_json(out, hardened.module(), &map);
            }
        }
        other => return Err(usage_err(format!("unknown format `{other}`"))),
    }
    stats.emit(out)?;
    Ok(())
}

/// Parses the shared campaign-budget flags (`--timeout-secs`,
/// `--max-injections`) into a [`RunControl`] handle.
fn parse_run_control(flags: &mut Flags<'_>) -> Result<RunControl, CliError> {
    let mut control = RunControl::unlimited();
    if let Some(v) = flags.value("--timeout-secs")? {
        let secs: u64 = v
            .parse()
            .map_err(|_| usage_err("--timeout-secs must be a whole number of seconds"))?;
        control = control.with_deadline(Duration::from_secs(secs));
    }
    if let Some(v) = flags.value("--max-injections")? {
        let budget: u64 = v
            .parse()
            .map_err(|_| usage_err("--max-injections must be a number"))?;
        control = control.with_injection_budget(budget);
    }
    Ok(control)
}

/// Converts a campaign failure into its exit code, writing the completed
/// prefix (clearly marked) into `out` first: 4 for a cancelled or
/// deadline-stopped run, 5 for an exhausted injection budget, 3 for
/// anything else (worker panics, overflows).
fn campaign_error(e: CampaignError, out: &mut String) -> CliError {
    match e {
        CampaignError::Interrupted { reason, partial } => {
            let code = match reason {
                StopReason::Cancelled | StopReason::DeadlineExpired => 4,
                StopReason::InjectionBudgetExhausted => 5,
            };
            let _ = writeln!(
                out,
                "PARTIAL RESULT (stopped early: {reason}) — {} of {} injections completed",
                partial.completed,
                partial.total()
            );
            let _ = writeln!(out, "{}", partial.report);
            CliError {
                message: format!("campaign interrupted: {reason}"),
                code,
            }
        }
        other => CliError {
            message: format!("campaign failed: {other}"),
            code: 3,
        },
    }
}

/// Parsed observability flags (`--stats [text|json]`, `--trace-out FILE`)
/// plus the telemetry handle they imply: recording when either flag is
/// present, the free no-op handle otherwise.
struct StatsOptions {
    stats: Option<String>,
    trace_out: Option<String>,
    telemetry: Telemetry,
}

impl StatsOptions {
    /// Appends the requested stats block to `out` and writes the
    /// chrome://tracing document. Called after the report is complete so
    /// the report bytes themselves are never perturbed.
    fn emit(&self, out: &mut String) -> Result<(), CliError> {
        match self.stats.as_deref() {
            Some("json") => out.push_str(&self.telemetry.render_stats_json()),
            Some(_) => out.push_str(&self.telemetry.render_stats_text()),
            None => {}
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, self.telemetry.render_chrome_trace()).map_err(|e| CliError {
                message: format!("writing trace file {path}: {e}"),
                code: 2,
            })?;
        }
        Ok(())
    }
}

/// Parses the shared observability flags for `analyze` and `certify`.
fn parse_stats_options(flags: &mut Flags<'_>) -> Result<StatsOptions, CliError> {
    let stats = flags
        .optional_value("--stats", &["text", "json"])
        .map(|v| v.unwrap_or("text").to_string());
    let trace_out = flags.value("--trace-out")?.map(str::to_string);
    let telemetry = if stats.is_some() || trace_out.is_some() {
        Telemetry::recording()
    } else {
        Telemetry::off()
    };
    Ok(StatsOptions {
        stats,
        trace_out,
        telemetry,
    })
}

/// `scfi serve`: boots the campaign-as-a-service HTTP job server and
/// blocks until the process is killed. The listening line is printed
/// straight to stdout (not the deferred output buffer) so scripts can
/// scrape the actual bound port before the server blocks.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut flags = Flags::new(args);
    let addr = flags
        .value("--addr")?
        .unwrap_or("127.0.0.1:3007")
        .to_string();
    let mut options = scfi_serve::ServerOptions::default();
    if let Some(v) = flags.value("--workers")? {
        options.workers = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| usage_err("--workers must be a positive number"))?;
    }
    if let Some(v) = flags.value("--queue-capacity")? {
        options.queue_capacity = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| usage_err("--queue-capacity must be a positive number"))?;
    }
    if let Some(v) = flags.value("--cache-capacity")? {
        options.cache_capacity = v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| usage_err("--cache-capacity must be a positive number"))?;
    }
    flags.finish()?;
    let server = scfi_serve::Server::bind(&addr, options).map_err(|e| CliError {
        message: format!("binding {addr}: {e}"),
        code: 2,
    })?;
    println!("scfi serve listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    Ok(())
}

/// `scfi certify`: formal per-site fault certification via the
/// `scfi-symbolic` BDD engine.
fn cmd_certify(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut flags = Flags::new(args);
    let config_kind = flags.value("--config")?.unwrap_or("scfi").to_string();
    let all_gates = flags.switch("--all-gates");
    let stuck_at = flags.switch("--stuck-at");
    let pin_faults = flags.switch("--pin-faults");
    let per_site = flags.switch("--per-site");
    let joint = flags.switch("--joint");
    let max_active: Option<usize> = flags
        .value("--max-active")?
        .map(|v| {
            v.parse()
                .map_err(|_| usage_err("--max-active must be a number"))
        })
        .transpose()?;
    let expect_proof = flags.switch("--expect-proof");
    let budget = parse_certify_budget(&mut flags)?;
    let stats = parse_stats_options(&mut flags)?;
    let Some(path) = flags.positional() else {
        return Err(usage_err("missing FSM input file"));
    };
    let fsm = load_fsm(path)?;
    let scfi_config = parse_config(&mut flags)?;
    flags.finish()?;
    let level = scfi_config.protection_level();
    if max_active.is_some() && !joint {
        return Err(usage_err("--max-active sets the --joint fault bound"));
    }
    if joint && per_site {
        return Err(usage_err(
            "--per-site lists per-site verdicts; the --joint claim has a single verdict",
        ));
    }
    if joint {
        // The paper's §3 bound: up to N − 1 simultaneous faults.
        let max_active = max_active.unwrap_or(level.saturating_sub(1));
        let report = match config_kind.as_str() {
            "scfi" => {
                let hardened = harden(&fsm, &scfi_config).map_err(|e| CliError {
                    message: format!("hardening failed: {e}"),
                    code: 3,
                })?;
                certify_joint_model(
                    &hardened, all_gates, stuck_at, pin_faults, max_active, budget, &stats, out,
                )
            }
            "redundancy" => {
                let r = redundancy(&fsm, level).map_err(|e| CliError {
                    message: format!("redundancy transform failed: {e}"),
                    code: 3,
                })?;
                certify_joint_model(
                    &r, all_gates, stuck_at, pin_faults, max_active, budget, &stats, out,
                )
            }
            "unprotected" => {
                let lowered = lower_unprotected(&fsm).map_err(|e| CliError {
                    message: format!("lowering failed: {e}"),
                    code: 3,
                })?;
                certify_joint_model(
                    &lowered, all_gates, stuck_at, pin_faults, max_active, budget, &stats, out,
                )
            }
            other => return Err(usage_err(format!("unknown certify config `{other}`"))),
        };
        stats.emit(out)?;
        return match &report.verdict {
            JointVerdict::Proved => Ok(()),
            JointVerdict::Counterexample(_) if expect_proof => Err(CliError {
                message: format!(
                    "--expect-proof: a combination of at most {} fault(s) refutes the joint guarantee",
                    report.max_active
                ),
                code: 3,
            }),
            JointVerdict::Counterexample(_) => Ok(()),
            JointVerdict::Unknown { reason } => Err(CliError {
                message: format!("joint certification budget exhausted: claim undecided ({reason})"),
                code: if reason.contains("deadline") { 4 } else { 5 },
            }),
        };
    }

    let report = match config_kind.as_str() {
        "scfi" => {
            let hardened = harden(&fsm, &scfi_config).map_err(|e| CliError {
                message: format!("hardening failed: {e}"),
                code: 3,
            })?;
            certify_model(
                &hardened, all_gates, stuck_at, pin_faults, per_site, budget, &stats, out,
            )
        }
        "redundancy" => {
            let r = redundancy(&fsm, level).map_err(|e| CliError {
                message: format!("redundancy transform failed: {e}"),
                code: 3,
            })?;
            certify_model(
                &r, all_gates, stuck_at, pin_faults, per_site, budget, &stats, out,
            )
        }
        "unprotected" => {
            let lowered = lower_unprotected(&fsm).map_err(|e| CliError {
                message: format!("lowering failed: {e}"),
                code: 3,
            })?;
            certify_model(
                &lowered, all_gates, stuck_at, pin_faults, per_site, budget, &stats, out,
            )
        }
        other => return Err(usage_err(format!("unknown certify config `{other}`"))),
    };
    stats.emit(out)?;
    if expect_proof && report.counterexamples() > 0 {
        return Err(CliError {
            message: format!(
                "--expect-proof: {} counterexample site(s) refute the detection guarantee",
                report.counterexamples()
            ),
            code: 3,
        });
    }
    if report.unknown() > 0 {
        // The budget ran out before every site was decided. The report
        // (with its UNKNOWN verdicts) is already in `out`; exit with the
        // documented partial-result code so scripts can tell "undecided"
        // from "refuted".
        let deadline = report.sites.iter().any(
            |s| matches!(&s.verdict, Verdict::Unknown { reason } if reason.contains("deadline")),
        );
        return Err(CliError {
            message: format!(
                "certification budget exhausted: {} of {} site(s) undecided",
                report.unknown(),
                report.sites.len()
            ),
            code: if deadline { 4 } else { 5 },
        });
    }
    Ok(())
}

/// Parses the certification-budget flags (`--timeout-secs`,
/// `--max-bdd-nodes`) into a [`CertifyBudget`].
fn parse_certify_budget(flags: &mut Flags<'_>) -> Result<CertifyBudget, CliError> {
    let mut budget = CertifyBudget::unlimited();
    if let Some(v) = flags.value("--timeout-secs")? {
        let secs: u64 = v
            .parse()
            .map_err(|_| usage_err("--timeout-secs must be a whole number of seconds"))?;
        budget = budget.timeout(Duration::from_secs(secs));
    }
    if let Some(v) = flags.value("--max-bdd-nodes")? {
        let nodes: usize = v
            .parse()
            .map_err(|_| usage_err("--max-bdd-nodes must be a number"))?;
        budget = budget.max_nodes(nodes);
    }
    Ok(budget)
}

// The certification fault-space definition is shared with the job
// server (`scfi serve` certifies the identical fault set for the same
// knobs), so it lives in `scfi_serve::jobs`.
use scfi_serve::jobs::certify_fault_set;

/// Certifies the joint multi-fault claim for one model and renders the
/// report. A setup-phase budget overflow degrades the whole claim to
/// UNKNOWN — never a fabricated proof.
#[allow(clippy::too_many_arguments)]
fn certify_joint_model<M: CertifyModel>(
    model: &M,
    all_gates: bool,
    stuck_at: bool,
    pin_faults: bool,
    max_active: usize,
    budget: CertifyBudget,
    stats: &StatsOptions,
    out: &mut String,
) -> JointReport {
    let module = model.module();
    let faults = certify_fault_set(module, all_gates, stuck_at, pin_faults);
    let report = match Certifier::with_instruments(model, budget, stats.telemetry.clone(), None) {
        Ok(mut certifier) => {
            let report = certifier.certify_joint(&faults, max_active);
            let _ = writeln!(out, "{report}");
            if let JointVerdict::Counterexample(w) = &report.verdict {
                let bits = |word: &[bool]| -> String {
                    word.iter().map(|&v| if v { '1' } else { '0' }).collect()
                };
                let _ = writeln!(out, "  active: {}", certifier.describe_active(w));
                let _ = writeln!(
                    out,
                    "  from state {} under inputs {}",
                    bits(&w.regs),
                    bits(&w.inputs)
                );
            }
            report
        }
        Err(overflow) => {
            let report = JointReport {
                config: model.config_name(),
                module: module.name().to_string(),
                sites: faults.len(),
                max_active,
                reachable_states: 0,
                verdict: JointVerdict::Unknown {
                    reason: overflow.to_string(),
                },
            };
            let _ = writeln!(out, "{report}");
            report
        }
    };
    report
}

/// Certifies one model's fault space and renders the report.
#[allow(clippy::too_many_arguments)]
fn certify_model<M: CertifyModel>(
    model: &M,
    all_gates: bool,
    stuck_at: bool,
    pin_faults: bool,
    per_site: bool,
    budget: CertifyBudget,
    stats: &StatsOptions,
    out: &mut String,
) -> CertificationReport {
    let module = model.module();
    let faults = certify_fault_set(module, all_gates, stuck_at, pin_faults);

    // A budget overflow during setup means no certifier exists at all:
    // degrade every site to Unknown rather than fabricating a proof.
    let report = match Certifier::with_instruments(model, budget, stats.telemetry.clone(), None) {
        Ok(mut certifier) => certifier.certify_all(&faults),
        Err(overflow) => Certifier::degraded_report(model, &faults, overflow),
    };
    let _ = writeln!(out, "{report}");
    if per_site {
        for site in &report.sites {
            let tag = match &site.verdict {
                Verdict::ProvenDetected => "proven-detected",
                Verdict::ProvenMasked => "proven-masked  ",
                Verdict::Counterexample(_) => "COUNTEREXAMPLE ",
                Verdict::Unknown { .. } => "UNKNOWN        ",
            };
            let _ = writeln!(out, "  {tag}  {}", describe_fault(module, site.fault));
        }
    }
    let bits =
        |word: &[bool]| -> String { word.iter().map(|&v| if v { '1' } else { '0' }).collect() };
    for (fault, witness) in report.counterexample_sites() {
        let _ = writeln!(
            out,
            "  counterexample: {} from state {} under inputs {} ({})",
            describe_fault(module, *fault),
            bits(&witness.regs),
            bits(&witness.inputs),
            if witness.confirmed {
                "replay-confirmed hijack on the scalar simulator"
            } else {
                "NOT confirmed by replay — engine disagreement, please report"
            }
        );
    }
    if all_gates {
        // The designer's view of `--all-gates`: which cells the escapes
        // concentrate in, ranked like the campaign vulnerability map.
        let _ = writeln!(out, "{}", report.escape_ranking());
    }
    if report.all_proven() {
        let _ = writeln!(
            out,
            "GUARANTEE PROVED: no certified fault can silently hijack control flow \
             from any reachable state under any admissible input word."
        );
    } else if report.counterexamples() > 0 {
        let _ = writeln!(
            out,
            "guarantee REFUTED: {} of {} sites have escaping assignments.",
            report.counterexamples(),
            report.sites.len()
        );
    } else {
        let _ = writeln!(
            out,
            "PARTIAL RESULT: {} of {} sites exceeded the certification budget; \
             their verdicts are UNKNOWN, not proofs.",
            report.unknown(),
            report.sites.len()
        );
    }
    report
}

fn cmd_area(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut flags = Flags::new(args);
    let Some(path) = flags.positional() else {
        return Err(usage_err("missing FSM input file"));
    };
    let fsm = load_fsm(path)?;
    let config = parse_config(&mut flags)?;
    flags.finish()?;
    let n = config.protection_level();
    let lib = Library::nangate45_like();
    let unprot = lower_unprotected(&fsm).map_err(|e| CliError {
        message: format!("lowering failed: {e}"),
        code: 3,
    })?;
    let red = redundancy(&fsm, n).map_err(|e| CliError {
        message: format!("redundancy transform failed: {e}"),
        code: 3,
    })?;
    let hardened = harden(&fsm, &config).map_err(|e| CliError {
        message: format!("hardening failed: {e}"),
        code: 3,
    })?;
    let rows = [
        ("unprotected", lib.map(unprot.module())),
        ("redundancy", lib.map(red.module())),
        ("scfi", lib.map(hardened.module())),
    ];
    let _ = writeln!(out, "{} at protection level {n}:", fsm.name());
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>14} {:>12}",
        "config", "area [GE]", "min period ps", "max MHz"
    );
    for (name, mapped) in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>10.1} {:>14.0} {:>12.1}",
            name,
            mapped.area_ge(),
            mapped.min_period_ps(),
            mapped.max_frequency_mhz()
        );
    }
    Ok(())
}

fn cmd_suite(args: &[String], out: &mut String) -> Result<(), CliError> {
    let mut flags = Flags::new(args);
    let name = flags.positional().map(str::to_string);
    flags.finish()?;
    match name {
        None => {
            let _ = writeln!(out, "bundled benchmark FSMs (paper Table 1):");
            for b in scfi_opentitan::all() {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>3} states, {:>2} signals, module {:.0} GE",
                    b.name,
                    b.fsm.state_count(),
                    b.fsm.signals().len(),
                    b.paper_module_ge
                );
            }
            let _ = writeln!(out, "multi-cycle protocol workloads (not Table-1 rows):");
            for fsm in scfi_opentitan::protocol_workloads() {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>3} states, {:>2} signals (try `scfi analyze - --protocol 4`)",
                    fsm.name(),
                    fsm.state_count(),
                    fsm.signals().len()
                );
            }
        }
        Some(name) => {
            let fsm = scfi_opentitan::by_name(&name)
                .map(|b| b.fsm)
                .or_else(|| {
                    scfi_opentitan::protocol_workloads()
                        .into_iter()
                        .find(|f| f.name() == name)
                })
                .ok_or_else(|| CliError {
                    message: format!("no bundled FSM named `{name}` (try `scfi suite`)"),
                    code: 2,
                })?;
            let _ = write!(out, "{}", fsm.to_dsl());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        run(&args, &mut out).expect("command succeeds");
        out
    }

    fn run_err(args: &[&str]) -> CliError {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = String::new();
        run(&args, &mut out).expect_err("command fails")
    }

    fn write_demo() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("scfi_cli_demo_{}_{unique}.dsl", std::process::id()));
        std::fs::write(
            &path,
            "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }",
        )
        .expect("writable temp dir");
        path
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["--help"]).contains("usage:"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let e = run_err(&["frobnicate"]);
        assert_eq!(e.code, 1);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn suite_lists_and_dumps() {
        let listing = run_ok(&["suite"]);
        assert!(listing.contains("adc_ctrl_fsm"));
        assert!(listing.contains("pwrmgr_fsm"));
        assert!(listing.contains("secure_boot_fsm"));
        let dsl = run_ok(&["suite", "aes_control"]);
        assert!(dsl.starts_with("fsm aes_control {"));
        // The dump re-parses.
        assert!(parse_fsm(&dsl).is_ok());
        let boot = run_ok(&["suite", "secure_boot_fsm"]);
        assert!(boot.starts_with("fsm secure_boot_fsm {"));
        assert!(parse_fsm(&boot).is_ok());
        let e = run_err(&["suite", "ghost"]);
        assert_eq!(e.code, 2);
    }

    #[test]
    fn harden_emits_verilog_by_default() {
        let path = write_demo();
        let out = run_ok(&["harden", path.to_str().expect("utf8")]);
        assert!(out.contains("module demo_scfi"));
        assert!(out.contains("endmodule"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn harden_report_and_flags() {
        let path = write_demo();
        let out = run_ok(&[
            "harden",
            path.to_str().expect("utf8"),
            "--level",
            "2",
            "--adaptive",
            "--rails",
            "2",
            "--protect-outputs",
            "--emit",
            "report",
        ]);
        assert!(out.contains("SCFI:"));
        assert!(out.contains("pattern match"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_runs_a_campaign() {
        let path = write_demo();
        let out = run_ok(&[
            "analyze",
            path.to_str().expect("utf8"),
            "--level",
            "2",
            "--region",
            "diffusion",
            "--pin-faults",
        ]);
        assert!(out.contains("injections"));
        assert!(out.contains("analytic success probability"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_rank_attributes_cells() {
        let path = write_demo();
        let out = run_ok(&[
            "analyze",
            path.to_str().expect("utf8"),
            "--level",
            "2",
            "--rank",
        ]);
        assert!(out.contains("cells"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_protocol_runs_a_multicycle_campaign() {
        let path = write_demo();
        let out = run_ok(&[
            "analyze",
            path.to_str().expect("utf8"),
            "--level",
            "2",
            "--protocol",
            "3",
        ]);
        assert!(out.contains("depth-3 protocol walks"));
        assert!(out.contains("injections"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_protocol_depth_is_rejected() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        assert_eq!(run_err(&["analyze", p, "--protocol", "0"]).code, 1);
        assert_eq!(run_err(&["analyze", p, "--protocol", "x"]).code, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn lanes_flag_changes_width_not_results() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let wide = run_ok(&["analyze", p, "--level", "2", "--lanes", "256"]);
        let narrow = run_ok(&["analyze", p, "--level", "2", "--lanes", "64"]);
        let default = run_ok(&["analyze", p, "--level", "2"]);
        assert_eq!(wide, narrow, "wave width must not change the report");
        assert_eq!(wide, default);
        let _ = std::fs::remove_file(path);
    }

    /// The execution backend is a pure throughput knob: every `--backend`
    /// choice (including the ranked map) must print byte-identical output.
    #[test]
    fn backend_flag_changes_engine_not_results() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let base = ["analyze", p, "--level", "2", "--rank"];
        let default = run_ok(&base);
        for backend in ["scalar", "packed", "simd"] {
            let mut args = base.to_vec();
            args.extend(["--backend", backend]);
            assert_eq!(
                run_ok(&args),
                default,
                "--backend {backend} must not change the report"
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn backend_rejection_names_the_accepted_set() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        for bogus in ["avx512", "fast", "1"] {
            let e = run_err(&["analyze", p, "--backend", bogus]);
            assert_eq!(e.code, 1);
            assert!(
                e.message.contains("scalar, packed or simd"),
                "error for --backend {bogus} must name the accepted set: {}",
                e.message
            );
        }
        let _ = std::fs::remove_file(path);
    }

    /// Lane-width validation must *name* the accepted set, at both layers:
    /// the CLI flag error and the library builder panic.
    #[test]
    fn lanes_rejection_names_the_accepted_set() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        for bogus in ["96", "0", "512", "x"] {
            let e = run_err(&["analyze", p, "--lanes", bogus]);
            assert_eq!(e.code, 1);
            assert!(
                e.message.contains("64, 128 or 256"),
                "error for --lanes {bogus} must name the accepted set: {}",
                e.message
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_proves_the_scfi_demo() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let out = run_ok(&["certify", p, "--level", "2", "--expect-proof"]);
        assert!(out.contains("GUARANTEE PROVED"), "{out}");
        assert!(out.contains("counterexamples: 0"), "{out}");
        // Per-site listing names every certified site.
        let listed = run_ok(&["certify", p, "--level", "2", "--per-site"]);
        assert!(listed.contains("proven-detected"), "{listed}");
        assert!(listed.contains("stored-bit flip on register 0"), "{listed}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_refutes_the_unprotected_demo() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let out = run_ok(&["certify", p, "--config", "unprotected"]);
        assert!(out.contains("REFUTED"), "{out}");
        assert!(out.contains("replay-confirmed hijack"), "{out}");
        // --expect-proof turns the refutation into a processing error —
        // with the already-written report (verdicts, witnesses) still in
        // the output buffer, so the binary can print it before exiting.
        let args: Vec<String> = ["certify", p, "--config", "unprotected", "--expect-proof"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut report = String::new();
        let e = run(&args, &mut report).expect_err("refutation fails --expect-proof");
        assert_eq!(e.code, 3);
        assert!(e.message.contains("counterexample"), "{}", e.message);
        assert!(
            report.contains("REFUTED"),
            "report must survive the error: {report}"
        );
        assert!(report.contains("counterexample:"), "{report}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_covers_redundancy_and_all_gates() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let out = run_ok(&["certify", p, "--level", "2", "--config", "redundancy"]);
        assert!(out.contains("(redundancy)"), "{out}");
        assert!(out.contains("counterexamples: 0"), "{out}");
        // All-gates certification runs the whole cell space (stuck-ats and
        // pin faults included) without claiming a proof necessarily holds.
        let out = run_ok(&[
            "certify",
            p,
            "--level",
            "2",
            "--all-gates",
            "--stuck-at",
            "--pin-faults",
        ]);
        assert!(out.contains("fault sites"), "{out}");
        let e = run_err(&["certify", p, "--config", "bogus"]);
        assert_eq!(e.code, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_fuzzed_protocol_runs_and_requires_protocol() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let out = run_ok(&[
            "analyze",
            p,
            "--level",
            "2",
            "--protocol",
            "3",
            "--fuzz-inputs",
        ]);
        assert!(out.contains("adversarially fuzzed protocol walks"), "{out}");
        assert!(out.contains("injections"), "{out}");
        let e = run_err(&["analyze", p, "--fuzz-inputs"]);
        assert_eq!(e.code, 1);
        assert!(e.message.contains("--protocol"), "{}", e.message);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_fault_windows_runs_and_requires_multi() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let out = run_ok(&[
            "analyze",
            p,
            "--level",
            "2",
            "--protocol",
            "3",
            "--multi",
            "2",
            "--runs",
            "200",
            "--fault-windows",
        ]);
        assert!(out.contains("injections"), "{out}");
        let e = run_err(&["analyze", p, "--fault-windows"]);
        assert_eq!(e.code, 1);
        assert!(e.message.contains("--multi"), "{}", e.message);
        let _ = std::fs::remove_file(path);
    }

    /// `--stats` appends the telemetry block *after* the report, without
    /// perturbing a single report byte; `--stats json` emits the JSON
    /// document instead.
    #[test]
    fn analyze_stats_appends_after_an_unchanged_report() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let plain = run_ok(&["analyze", p, "--level", "2"]);
        let with_stats = run_ok(&["analyze", p, "--level", "2", "--stats"]);
        assert!(
            with_stats.starts_with(&plain),
            "--stats must only append, never change the report"
        );
        let block = &with_stats[plain.len()..];
        assert!(block.starts_with("run stats:"), "{block}");
        assert!(block.contains("scfi_campaign_waves_total"), "{block}");
        assert!(block.contains("scfi_campaign_injections_total"), "{block}");
        // Explicit `--stats text` is the same as bare `--stats`.
        let text = run_ok(&["analyze", p, "--level", "2", "--stats", "text"]);
        assert_eq!(text, with_stats);
        let json = run_ok(&["analyze", p, "--level", "2", "--stats", "json"]);
        assert!(json.starts_with(&plain));
        let block = &json[plain.len()..];
        assert!(block.starts_with("{\n  \"counters\": {"), "{block}");
        assert!(
            block.contains("\"scfi_campaign_injections_total\":"),
            "{block}"
        );
        assert!(block.contains("\"histograms\""), "{block}");
        let _ = std::fs::remove_file(path);
    }

    /// A value that is not `text`/`json` is left for `finish()` to reject
    /// — `--stats` never swallows the next flag as its value.
    #[test]
    fn stats_value_must_be_text_or_json() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let e = run_err(&["analyze", p, "--stats", "xml"]);
        assert_eq!(e.code, 1);
        assert!(e.message.contains("xml"), "{}", e.message);
        // `--stats` followed by another flag still parses that flag.
        let out = run_ok(&["analyze", p, "--level", "2", "--stats", "--rank"]);
        assert!(out.contains("cells"), "{out}");
        assert!(out.contains("run stats:"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_stats_reports_bdd_counters() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let plain = run_ok(&["certify", p, "--level", "2"]);
        let with_stats = run_ok(&["certify", p, "--level", "2", "--stats"]);
        assert!(
            with_stats.starts_with(&plain),
            "--stats must only append, never change the report"
        );
        let block = &with_stats[plain.len()..];
        assert!(block.contains("scfi_bdd_ite_cache_hits_total"), "{block}");
        assert!(block.contains("scfi_bdd_nodes_high_water"), "{block}");
        assert!(block.contains("scfi_certify_site_ns"), "{block}");
        // The joint path is instrumented through the same certifier.
        let joint = run_ok(&["certify", p, "--joint", "--stats"]);
        assert!(joint.contains("scfi_bdd_ite_cache_hits_total"), "{joint}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_out_writes_a_chrome_trace() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let trace =
            std::env::temp_dir().join(format!("scfi_cli_trace_{}.json", std::process::id()));
        let t = trace.to_str().expect("utf8");
        let out = run_ok(&["certify", p, "--level", "2", "--trace-out", t]);
        // --trace-out alone does not print a stats block.
        assert!(!out.contains("run stats:"), "{out}");
        let doc = std::fs::read_to_string(&trace).expect("trace file written");
        assert!(doc.starts_with("{\"traceEvents\": ["), "{doc}");
        assert!(doc.contains("\"certify_setup\""), "{doc}");
        assert!(doc.contains("\"certify_site\""), "{doc}");
        assert!(doc.contains("\"ph\": \"X\""), "{doc}");
        let e = run_err(&["certify", p, "--trace-out", "/nonexistent-dir/t.json"]);
        assert_eq!(e.code, 2);
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn certify_joint_proves_the_scfi_demo_and_refutes_unprotected() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        // N = 3 ⇒ the joint claim covers any 2 simultaneous faults.
        let out = run_ok(&["certify", p, "--joint", "--expect-proof"]);
        assert!(out.contains("PROVED"), "{out}");
        assert!(out.contains("at most 2 simultaneous faults"), "{out}");
        // Unprotected: one fault suffices; the witness is replayed.
        let out = run_ok(&["certify", p, "--joint", "--config", "unprotected"]);
        assert!(out.contains("REFUTED"), "{out}");
        assert!(out.contains("replay-confirmed"), "{out}");
        assert!(out.contains("active:"), "{out}");
        // --expect-proof turns the refutation into exit 3 with the report
        // preserved in the output buffer.
        let args: Vec<String> = [
            "certify",
            p,
            "--joint",
            "--config",
            "unprotected",
            "--expect-proof",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut report = String::new();
        let e = run(&args, &mut report).expect_err("refutation fails --expect-proof");
        assert_eq!(e.code, 3);
        assert!(report.contains("REFUTED"), "{report}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_joint_budget_exits_5_with_unknown() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let args: Vec<String> = [
            "certify",
            p,
            "--level",
            "2",
            "--joint",
            "--expect-proof",
            "--max-bdd-nodes",
            "8",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = String::new();
        let e = run(&args, &mut out).expect_err("8 BDD nodes cannot decide the joint claim");
        assert_eq!(e.code, 5, "{}", e.message);
        assert!(e.message.contains("undecided"), "{}", e.message);
        assert!(out.contains("UNKNOWN"), "{out}");
        assert!(
            !out.contains("PROVED"),
            "an exhausted budget must never claim the proof: {out}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_joint_flag_combinations_are_validated() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        assert_eq!(run_err(&["certify", p, "--max-active", "2"]).code, 1);
        assert_eq!(run_err(&["certify", p, "--joint", "--per-site"]).code, 1);
        assert_eq!(
            run_err(&["certify", p, "--joint", "--max-active", "x"]).code,
            1
        );
        // An explicit bound overrides the level-derived default.
        let out = run_ok(&[
            "certify",
            p,
            "--joint",
            "--max-active",
            "1",
            "--expect-proof",
        ]);
        assert!(out.contains("at most 1 simultaneous faults"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_all_gates_ranks_escaping_cells() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        // Unprotected with the full gate space: escapes exist and the
        // ranked per-cell report aggregates them.
        let out = run_ok(&["certify", p, "--config", "unprotected", "--all-gates"]);
        assert!(out.contains("escapes through"), "{out}");
        assert!(out.contains("escapes /"), "{out}");
        // A proved all-gates-free run still prints the (empty) ranking
        // header for script-stable output.
        let proved = run_ok(&["certify", p, "--level", "2", "--all-gates", "--stuck-at"]);
        assert!(proved.contains("certified sites"), "{proved}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_injection_budget_exits_5_with_partial_output() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let args: Vec<String> = ["analyze", p, "--level", "2", "--max-injections", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = String::new();
        let e = run(&args, &mut out).expect_err("budget of 1 cannot cover the campaign");
        assert_eq!(e.code, 5, "{}", e.message);
        assert!(
            e.message.contains("injection budget exhausted"),
            "{}",
            e.message
        );
        assert!(
            out.contains("PARTIAL RESULT (stopped early: injection budget exhausted)"),
            "partial output must be clearly marked: {out}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_expired_deadline_exits_4_with_partial_output() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let args: Vec<String> = ["analyze", p, "--level", "2", "--timeout-secs", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = String::new();
        let e = run(&args, &mut out).expect_err("a zero deadline stops before the first wave");
        assert_eq!(e.code, 4, "{}", e.message);
        assert!(e.message.contains("deadline expired"), "{}", e.message);
        assert!(out.contains("PARTIAL RESULT"), "{out}");
        assert!(out.contains("0 of"), "nothing completed: {out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_generous_budget_changes_nothing() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let plain = run_ok(&["analyze", p, "--level", "2"]);
        let budgeted = run_ok(&[
            "analyze",
            p,
            "--level",
            "2",
            "--timeout-secs",
            "3600",
            "--max-injections",
            "1000000000",
        ]);
        assert_eq!(
            plain, budgeted,
            "an unhit budget must not change the report"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_tiny_node_budget_degrades_to_unknown_and_exits_5() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let args: Vec<String> = [
            "certify",
            p,
            "--level",
            "2",
            "--per-site",
            "--max-bdd-nodes",
            "8",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = String::new();
        let e = run(&args, &mut out).expect_err("8 BDD nodes cannot certify anything");
        assert_eq!(e.code, 5, "{}", e.message);
        assert!(e.message.contains("budget exhausted"), "{}", e.message);
        assert!(out.contains("UNKNOWN"), "{out}");
        assert!(out.contains("unknown (budget exhausted)"), "{out}");
        assert!(out.contains("PARTIAL RESULT"), "{out}");
        assert!(
            !out.contains("GUARANTEE PROVED"),
            "an exhausted budget must never claim the proof: {out}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn certify_generous_budget_still_proves() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let out = run_ok(&[
            "certify",
            p,
            "--level",
            "2",
            "--expect-proof",
            "--timeout-secs",
            "3600",
            "--max-bdd-nodes",
            "100000000",
        ]);
        assert!(out.contains("GUARANTEE PROVED"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn budget_flag_values_are_validated() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        assert_eq!(run_err(&["analyze", p, "--timeout-secs", "x"]).code, 1);
        assert_eq!(run_err(&["analyze", p, "--max-injections", "-3"]).code, 1);
        assert_eq!(run_err(&["certify", p, "--max-bdd-nodes", "many"]).code, 1);
        assert_eq!(run_err(&["certify", p, "--timeout-secs", "1.5"]).code, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_format_streams_sites() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        let csv = run_ok(&["analyze", p, "--level", "2", "--format", "csv"]);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("cell,kind,name,masked,detected,hijacked,total,hijack_rate")
        );
        assert!(lines.clone().count() > 4, "one row per fault cell: {csv}");
        assert!(lines.all(|l| l.split(',').count() == 8), "{csv}");
        let json = run_ok(&["analyze", p, "--level", "2", "--format", "json"]);
        assert!(json.contains("\"module\": \"demo_scfi\""), "{json}");
        assert!(json.contains("\"sites\": ["), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced JSON braces: {json}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_format_error_paths() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        assert_eq!(run_err(&["analyze", p, "--format", "xml"]).code, 1);
        assert_eq!(
            run_err(&["analyze", p, "--format", "csv", "--multi", "2"]).code,
            1
        );
        assert_eq!(
            run_err(&["analyze", p, "--format", "csv", "--rank"]).code,
            1
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rank_with_multi_is_rejected() {
        let path = write_demo();
        let e = run_err(&[
            "analyze",
            path.to_str().expect("utf8"),
            "--rank",
            "--multi",
            "2",
        ]);
        assert_eq!(e.code, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn area_compares_three_configs() {
        let path = write_demo();
        let out = run_ok(&["area", path.to_str().expect("utf8"), "--level", "2"]);
        assert!(out.contains("unprotected"));
        assert!(out.contains("redundancy"));
        assert!(out.contains("scfi"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_flags_are_reported() {
        let path = write_demo();
        let p = path.to_str().expect("utf8");
        assert_eq!(run_err(&["harden", p, "--level", "x"]).code, 1);
        assert_eq!(run_err(&["harden", p, "--pad", "fancy"]).code, 1);
        assert_eq!(run_err(&["harden", p, "--bogus"]).code, 1);
        assert_eq!(run_err(&["harden"]).code, 1);
        assert_eq!(run_err(&["harden", "/nonexistent/x.dsl"]).code, 2);
        let _ = std::fs::remove_file(path);
    }

    /// `scfi serve` validates its flags before binding; a bad address is
    /// an input error (the server itself is exercised by the scfi-serve
    /// integration suites, not through the blocking CLI entry point).
    #[test]
    fn serve_flags_are_validated() {
        assert_eq!(run_err(&["serve", "--workers", "0"]).code, 1);
        assert_eq!(run_err(&["serve", "--workers", "x"]).code, 1);
        assert_eq!(run_err(&["serve", "--queue-capacity", "0"]).code, 1);
        assert_eq!(run_err(&["serve", "--cache-capacity", "-1"]).code, 1);
        assert_eq!(run_err(&["serve", "--bogus"]).code, 1);
        let e = run_err(&["serve", "--addr", "not-an-address"]);
        assert_eq!(e.code, 2);
        assert!(e.message.contains("not-an-address"), "{}", e.message);
    }

    #[test]
    fn level_one_is_a_processing_error() {
        let path = write_demo();
        let e = run_err(&["harden", path.to_str().expect("utf8"), "--level", "1"]);
        assert_eq!(e.code, 3);
        assert!(e.message.contains("below the minimum"));
        let _ = std::fs::remove_file(path);
    }
}
