//! `scfi` — command-line front end for the SCFI FSM hardening pass.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match scfi_cli::run(&args, &mut out) {
        Ok(()) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Output accumulated before the failure still reaches the
            // user — e.g. `scfi certify --expect-proof` writes the full
            // certification report (verdicts, witnesses) before turning
            // the refutation into a non-zero exit.
            print!("{out}");
            eprintln!("scfi: {e}");
            ExitCode::from(e.code.clamp(0, 255) as u8)
        }
    }
}
