//! BDD-based formal fault certification for SCFI netlists — the engine
//! that *proves* the detection guarantee the fault campaigns only sample.
//!
//! The SCFI paper's central claim (§3, §5) is universal: with protection
//! level N, any fault affecting fewer than N bits of the state vector is
//! always detected. Simulation campaigns (`scfi-faultsim`) check that
//! claim on concrete scenarios — one register preload and one input word
//! per injection — and can therefore only ever *sample* it. This crate
//! closes the gap with a symbolic engine:
//!
//! 1. [`Bdd`] — a small hash-consed ROBDD package (unique table,
//!    memoized `ite`, quantification, renaming, witness extraction).
//! 2. [`SymbolicEvaluator`] — runs a [`Module`](scfi_netlist::Module)
//!    for one clock cycle with fully symbolic inputs and register state;
//!    the 2-input `CellKind` set maps 1:1 onto BDD connectives, and the
//!    fault semantics mirror the scalar simulator's exactly.
//! 3. [`reachable_states`] — the least-fixpoint image computation over
//!    the DFF transition functions from the reset state.
//! 4. [`Certifier`] — for every fault site of the campaign fault model
//!    ([`Fault`](scfi_faultsim::Fault)), builds the BDD of "the faulty
//!    run diverges from the fault-free run AND escapes every detection
//!    mechanism", constrained to reachable states, and reports
//!    [`Verdict::ProvenDetected`] / [`Verdict::ProvenMasked`] proofs or
//!    a [`Verdict::Counterexample`] whose witness is replayed through
//!    the scalar simulator for confirmation.
//!
//! The engine is the repo's second, *independent* verdict oracle: the
//! workspace conformance suite cross-checks certification against
//! exhaustive campaign outcomes on every Table-1 FSM and all three §6.1
//! configurations.
//!
//! # Example
//!
//! ```
//! use scfi_core::{harden, ScfiConfig};
//! use scfi_faultsim::{enumerate_faults, CampaignConfig};
//! use scfi_fsm::parse_fsm;
//! use scfi_symbolic::Certifier;
//!
//! let fsm = parse_fsm(
//!     "fsm lock { inputs k; state L { if k -> O; } state O { goto L; } }",
//! )?;
//! let hardened = harden(&fsm, &ScfiConfig::new(3))?;
//!
//! // Certify every stored-bit flip — the paper's FT1 attacker.
//! let faults = enumerate_faults(
//!     hardened.module(),
//!     &CampaignConfig::new().effects(vec![]).with_register_flips(),
//! );
//! let report = Certifier::new(&hardened).certify_all(&faults);
//! assert!(report.all_proven()); // zero counterexamples: the claim is proved
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod bdd;
mod certify;
mod eval;
mod reach;
mod unroll;

pub use bdd::{Bdd, BddOverflow, BddRef};
pub use certify::{
    describe_fault, CertificationReport, Certifier, CertifyBudget, CertifyModel, EscapeRanking,
    SiteReport, Verdict, Witness,
};
pub use eval::{SymStep, SymbolicEvaluator, VarMap};
pub use reach::{reachable_states, state_cube, try_reachable_states, try_state_cube, Reachability};
pub use unroll::{JointReport, JointVerdict, JointWitness, KStepVerdict, KStepWitness};
