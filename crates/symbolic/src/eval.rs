//! Symbolic netlist evaluation: one clock cycle of a [`Module`] with
//! fully symbolic inputs and register state.
//!
//! Where the scalar [`Simulator`](scfi_netlist::Simulator) propagates one
//! Boolean per net, the symbolic evaluator propagates one BDD per net over
//! a variable universe of the module's input ports and stored register
//! bits. One evaluation therefore covers *every* input assignment and
//! *every* register preload at once — the per-net functions are exactly
//! the `2^(inputs+registers)`-row truth tables of the settled circuit.
//!
//! Fault semantics mirror the scalar simulator bit for bit (the
//! differential suites pin them against each other): stuck-at masks apply
//! before flips, pin faults apply at a single cell's read, and register
//! flips negate the stored-bit variable the faulty run starts from.

use std::collections::HashMap;

use scfi_faultsim::{Fault, FaultEffect, FaultSite};
use scfi_netlist::{CellKind, Module, NetId};

use crate::bdd::{Bdd, BddOverflow, BddRef};

/// Assignment of BDD variables to the module's symbolic sources, ordered
/// by the netlist's levelization.
///
/// Sources (input ports and register outputs) are ranked by the position
/// of their earliest consumer in the module's topological order, so
/// variables consumed early in the logic sit close to the BDD root —
/// the classical fanin-level ordering heuristic. Each register bit
/// additionally owns a *primed* next-state variable directly below its
/// current-state variable; the adjacency makes the image step's
/// primed→unprimed renaming order-preserving (see
/// [`Bdd::rename`]).
#[derive(Clone, Debug)]
pub struct VarMap {
    /// Current-state variable per register position
    /// (`Module::registers()` order).
    reg_current: Vec<u32>,
    /// Primed next-state variable per register position
    /// (`reg_current[i] + 1`).
    reg_next: Vec<u32>,
    /// Variable per input port (port order).
    inputs: Vec<u32>,
    /// Total variables allocated (current + primed + inputs).
    var_count: u32,
}

impl VarMap {
    /// Derives the variable order from `module`'s levelization.
    pub fn from_module(module: &Module) -> Self {
        // Earliest topological position at which each net is consumed.
        let mut first_use = vec![usize::MAX; module.len()];
        for (pos, &c) in module.topo_order().iter().enumerate() {
            for pin in &module.cell(c).pins {
                let slot = &mut first_use[pin.index()];
                *slot = (*slot).min(pos);
            }
        }
        // Register data inputs are consumed at commit time, after all
        // combinational logic.
        for &r in module.registers() {
            let pin = module.cell(r).pins[0];
            let slot = &mut first_use[pin.index()];
            *slot = (*slot).min(module.topo_order().len());
        }
        enum Source {
            Input(usize),
            Register(usize),
        }
        let mut sources: Vec<(usize, u32, Source)> = Vec::new();
        for (i, &net) in module.inputs().iter().enumerate() {
            sources.push((first_use[net.index()], net.0, Source::Input(i)));
        }
        for (i, &r) in module.registers().iter().enumerate() {
            sources.push((first_use[r.index()], r.0, Source::Register(i)));
        }
        sources.sort_by_key(|&(level, net, _)| (level, net));

        let mut reg_current = vec![0; module.registers().len()];
        let mut reg_next = vec![0; module.registers().len()];
        let mut inputs = vec![0; module.inputs().len()];
        let mut next_var = 0u32;
        for (_, _, source) in sources {
            match source {
                Source::Input(i) => {
                    inputs[i] = next_var;
                    next_var += 1;
                }
                Source::Register(i) => {
                    reg_current[i] = next_var;
                    reg_next[i] = next_var + 1;
                    next_var += 2;
                }
            }
        }
        VarMap {
            reg_current,
            reg_next,
            inputs,
            var_count: next_var,
        }
    }

    /// Current-state variable of register position `i`.
    pub fn reg_current(&self, i: usize) -> u32 {
        self.reg_current[i]
    }

    /// Primed next-state variable of register position `i`.
    pub fn reg_next(&self, i: usize) -> u32 {
        self.reg_next[i]
    }

    /// Variable of input port `i`.
    pub fn input(&self, i: usize) -> u32 {
        self.inputs[i]
    }

    /// All current-state variables, sorted ascending.
    pub fn current_vars(&self) -> Vec<u32> {
        let mut v = self.reg_current.clone();
        v.sort_unstable();
        v
    }

    /// All current-state and input variables, sorted ascending — the
    /// quantification set of the image step.
    pub fn unprimed_vars(&self) -> Vec<u32> {
        let mut v = self.reg_current.clone();
        v.extend_from_slice(&self.inputs);
        v.sort_unstable();
        v
    }

    /// Total variables allocated.
    pub fn var_count(&self) -> u32 {
        self.var_count
    }

    /// Decodes a (possibly partial) satisfying assignment into concrete
    /// register and input vectors; variables absent from the assignment
    /// default to `false` (they are don't-cares of the witness function).
    pub fn decode_assignment(&self, assignment: &[(u32, bool)]) -> (Vec<bool>, Vec<bool>) {
        let lookup: HashMap<u32, bool> = assignment.iter().copied().collect();
        let regs = self
            .reg_current
            .iter()
            .map(|v| lookup.get(v).copied().unwrap_or(false))
            .collect();
        let inputs = self
            .inputs
            .iter()
            .map(|v| lookup.get(v).copied().unwrap_or(false))
            .collect();
        (regs, inputs)
    }
}

/// The result of one symbolic cycle: per-net settled functions, the
/// next-state functions the flip-flops would commit, and the output-port
/// functions — all over the [`VarMap`]'s current-state and input
/// variables.
#[derive(Clone, Debug)]
pub struct SymStep {
    /// Settled function per net (indexed like `Module::cells()`).
    pub nets: Vec<BddRef>,
    /// Function committed into each register (`Module::registers()`
    /// order) — the symbolic transition functions `δ_i(state, inputs)`.
    pub next_regs: Vec<BddRef>,
    /// Function per output port (port order).
    pub outputs: Vec<BddRef>,
}

/// Per-net / per-pin fault transform: stuck value applied first, then an
/// optional flip — the scalar simulator's `apply_net_fault` order.
#[derive(Clone, Copy, Default)]
struct Transform {
    stuck: Option<bool>,
    flip: bool,
}

impl Transform {
    fn apply(self, b: &mut Bdd, raw: BddRef) -> Result<BddRef, BddOverflow> {
        let mut v = match self.stuck {
            Some(s) => b.constant(s),
            None => raw,
        };
        if self.flip {
            v = b.try_not(v)?;
        }
        Ok(v)
    }
}

/// Compiled fault set for one symbolic run.
#[derive(Default)]
struct FaultMasks {
    nets: HashMap<u32, Transform>,
    pins: HashMap<(u32, u8), Transform>,
    /// Register *positions* whose stored bit is flipped before the cycle.
    reg_flips: Vec<usize>,
}

impl FaultMasks {
    fn compile(module: &Module, faults: &[Fault]) -> Self {
        let mut masks = FaultMasks::default();
        let set = |t: &mut Transform, effect: FaultEffect| match effect {
            FaultEffect::Flip => t.flip = !t.flip,
            FaultEffect::Stuck0 => t.stuck = Some(false),
            FaultEffect::Stuck1 => t.stuck = Some(true),
        };
        for &fault in faults {
            match fault.site {
                FaultSite::CellOutput(c) => set(masks.nets.entry(c.0).or_default(), fault.effect),
                FaultSite::Pin(c, p) => set(masks.pins.entry((c.0, p)).or_default(), fault.effect),
                FaultSite::Register(c) => {
                    let pos = module
                        .register_position(c)
                        .unwrap_or_else(|| panic!("{c:?} is not a register"));
                    masks.reg_flips.push(pos);
                }
            }
        }
        masks
    }

    fn net(&self, net: u32) -> Transform {
        self.nets.get(&net).copied().unwrap_or_default()
    }

    fn pin(&self, cell: u32, pin: usize) -> Transform {
        self.pins
            .get(&(cell, pin as u8))
            .copied()
            .unwrap_or_default()
    }
}

/// Selector-guarded fault set: every transform is armed by a BDD guard,
/// so one evaluation covers *every subset* of the fault list at once
/// (each fault active exactly where its guard holds).
///
/// The concrete-selector semantics match the scalar simulator's
/// composition rules at every site: stuck transforms apply first in
/// fault order (the last active one wins, like repeated
/// `set_net_stuck` calls), flips toggle by the parity of the active
/// flip guards (like repeated `set_net_flip`), and register flips
/// negate the stored-bit source by the parity of their guards.
#[derive(Default)]
struct GuardedMasks {
    nets: HashMap<u32, Vec<(FaultEffect, BddRef)>>,
    pins: HashMap<(u32, u8), Vec<(FaultEffect, BddRef)>>,
    /// Flip-guard parity per register *position*.
    reg_flips: HashMap<usize, Vec<BddRef>>,
}

impl GuardedMasks {
    fn compile(module: &Module, faults: &[(Fault, BddRef)]) -> Self {
        let mut masks = GuardedMasks::default();
        for &(fault, guard) in faults {
            match fault.site {
                FaultSite::CellOutput(c) => masks
                    .nets
                    .entry(c.0)
                    .or_default()
                    .push((fault.effect, guard)),
                FaultSite::Pin(c, p) => masks
                    .pins
                    .entry((c.0, p))
                    .or_default()
                    .push((fault.effect, guard)),
                FaultSite::Register(c) => {
                    let pos = module
                        .register_position(c)
                        .unwrap_or_else(|| panic!("{c:?} is not a register"));
                    masks.reg_flips.entry(pos).or_default().push(guard);
                }
            }
        }
        masks
    }

    /// Applies one site's guarded transform list to a raw value.
    fn apply(
        b: &mut Bdd,
        raw: BddRef,
        transforms: &[(FaultEffect, BddRef)],
    ) -> Result<BddRef, BddOverflow> {
        let mut v = raw;
        for &(effect, guard) in transforms {
            match effect {
                FaultEffect::Stuck0 => {
                    let keep = b.try_not(guard)?;
                    v = b.try_and(v, keep)?;
                }
                FaultEffect::Stuck1 => v = b.try_or(v, guard)?,
                FaultEffect::Flip => {}
            }
        }
        let mut parity = BddRef::FALSE;
        for &(effect, guard) in transforms {
            if matches!(effect, FaultEffect::Flip) {
                parity = b.try_xor(parity, guard)?;
            }
        }
        b.try_xor(v, parity)
    }

    fn net(&self, b: &mut Bdd, net: u32, raw: BddRef) -> Result<BddRef, BddOverflow> {
        match self.nets.get(&net) {
            Some(t) => Self::apply(b, raw, t),
            None => Ok(raw),
        }
    }

    fn pin(&self, b: &mut Bdd, cell: u32, pin: usize, raw: BddRef) -> Result<BddRef, BddOverflow> {
        match self.pins.get(&(cell, pin as u8)) {
            Some(t) => Self::apply(b, raw, t),
            None => Ok(raw),
        }
    }

    fn reg_source(&self, b: &mut Bdd, pos: usize, raw: BddRef) -> Result<BddRef, BddOverflow> {
        let mut v = raw;
        if let Some(guards) = self.reg_flips.get(&pos) {
            for &g in guards {
                v = b.try_xor(v, g)?;
            }
        }
        Ok(v)
    }
}

/// Symbolic single-cycle evaluator for a [`Module`].
///
/// Construction precomputes the variable order and the fanout adjacency
/// used by the cone-incremental re-evaluation
/// ([`SymbolicEvaluator::eval_fault_from`]).
///
/// # Example
///
/// ```
/// use scfi_netlist::ModuleBuilder;
/// use scfi_symbolic::{Bdd, SymbolicEvaluator};
///
/// let mut mb = ModuleBuilder::new("toggle");
/// let q = mb.dff_uninit(false);
/// let nq = mb.not(q);
/// mb.set_dff_input(q, nq);
/// mb.output("q", q);
/// let m = mb.finish()?;
///
/// let ev = SymbolicEvaluator::new(&m);
/// let mut b = Bdd::new();
/// let step = ev.eval(&mut b, &[]);
/// // The toggle's transition function is the negated state variable.
/// let state = b.var(ev.varmap().reg_current(0));
/// assert_eq!(step.next_regs[0], b.not(state));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SymbolicEvaluator<'m> {
    module: &'m Module,
    varmap: VarMap,
}

impl<'m> SymbolicEvaluator<'m> {
    /// Prepares an evaluator for `module`.
    pub fn new(module: &'m Module) -> Self {
        SymbolicEvaluator {
            varmap: VarMap::from_module(module),
            module,
        }
    }

    /// The module under evaluation.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The variable assignment.
    pub fn varmap(&self) -> &VarMap {
        &self.varmap
    }

    /// The reset values of every register (`Module::registers()` order).
    pub fn reset_state(&self) -> Vec<bool> {
        self.module
            .registers()
            .iter()
            .map(|&r| match self.module.cell(r).kind {
                CellKind::Dff { init } => init,
                _ => unreachable!("registers() yields only flip-flops"),
            })
            .collect()
    }

    /// The source value of a register's output net before net faults:
    /// its current-state variable, negated if the stored bit is flipped.
    fn reg_source(
        &self,
        b: &mut Bdd,
        pos: usize,
        masks: &FaultMasks,
    ) -> Result<BddRef, BddOverflow> {
        if masks.reg_flips.iter().filter(|&&p| p == pos).count() % 2 == 1 {
            b.try_nvar(self.varmap.reg_current[pos])
        } else {
            b.try_var(self.varmap.reg_current[pos])
        }
    }

    /// Evaluates one symbolic cycle under `faults` (empty for the
    /// fault-free base step).
    ///
    /// # Panics
    ///
    /// Panics with the [`BddOverflow`] description if `b`'s configured
    /// budget is exhausted; use [`try_eval`](Self::try_eval) under
    /// budgets.
    pub fn eval(&self, b: &mut Bdd, faults: &[Fault]) -> SymStep {
        self.try_eval(b, faults).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`eval`](Self::eval), surfacing budget exhaustion on `b` as
    /// [`BddOverflow`] instead of panicking. On an unbudgeted manager
    /// this never fails.
    pub fn try_eval(&self, b: &mut Bdd, faults: &[Fault]) -> Result<SymStep, BddOverflow> {
        let masks = FaultMasks::compile(self.module, faults);
        let m = self.module;
        let mut nets = vec![BddRef::FALSE; m.len()];

        // Phase 0: source nets (inputs, constants, register outputs).
        for (i, &net) in m.inputs().iter().enumerate() {
            let raw = b.try_var(self.varmap.inputs[i])?;
            nets[net.index()] = masks.net(net.0).apply(b, raw)?;
        }
        for (i, cell) in m.cells().iter().enumerate() {
            if let CellKind::Const(c) = cell.kind {
                let raw = b.constant(c);
                nets[i] = masks.net(i as u32).apply(b, raw)?;
            }
        }
        for (pos, &r) in m.registers().iter().enumerate() {
            let raw = self.reg_source(b, pos, &masks)?;
            nets[r.index()] = masks.net(r.0).apply(b, raw)?;
        }

        // Phase 1: combinational settle in topological order.
        for &c in m.topo_order() {
            let v = self.eval_cell(b, c.index(), &nets, &masks)?;
            nets[c.index()] = v;
        }

        self.finish_step(b, nets, &masks)
    }

    /// Evaluates one symbolic cycle from *explicit sources* under a
    /// *selector-guarded* fault set: register position `i` reads the
    /// function `regs[i]`, input port `i` reads `inputs[i]`, and each
    /// fault applies only where its guard BDD holds.
    ///
    /// This is the generalized step the temporal certifications are built
    /// from. The k-step unrolling feeds the previous step's `next_regs`
    /// back in as `regs` (with fresh input variables per cycle) instead of
    /// renaming; the joint multi-fault certification passes the whole
    /// fault list with one selector variable per site, so a single
    /// evaluation covers every fault subset at once. With the identity
    /// sources and constant-`TRUE` guards this computes exactly
    /// [`eval`](Self::eval)'s functions (asserted by the differential
    /// tests); with no faults it is the plain transition step from the
    /// given sources.
    ///
    /// # Panics
    ///
    /// Panics on a register- or input-count mismatch.
    pub fn try_eval_guarded(
        &self,
        b: &mut Bdd,
        regs: &[BddRef],
        inputs: &[BddRef],
        faults: &[(Fault, BddRef)],
    ) -> Result<SymStep, BddOverflow> {
        let m = self.module;
        assert_eq!(regs.len(), m.registers().len(), "register count mismatch");
        assert_eq!(inputs.len(), m.inputs().len(), "input count mismatch");
        let masks = GuardedMasks::compile(m, faults);
        let mut nets = vec![BddRef::FALSE; m.len()];

        // Phase 0: source nets (inputs, constants, register outputs).
        for (i, &net) in m.inputs().iter().enumerate() {
            nets[net.index()] = masks.net(b, net.0, inputs[i])?;
        }
        for (i, cell) in m.cells().iter().enumerate() {
            if let CellKind::Const(c) = cell.kind {
                let raw = b.constant(c);
                nets[i] = masks.net(b, i as u32, raw)?;
            }
        }
        for (pos, &r) in m.registers().iter().enumerate() {
            let raw = masks.reg_source(b, pos, regs[pos])?;
            nets[r.index()] = masks.net(b, r.0, raw)?;
        }

        // Phase 1: combinational settle in topological order.
        for &c in m.topo_order() {
            let v = self.eval_cell_guarded(b, c.index(), &nets, &masks)?;
            nets[c.index()] = v;
        }

        // Phase 2: sample outputs and the (guarded) register commit path.
        let next_regs = m
            .registers()
            .iter()
            .map(|&r| {
                let pin_net = m.cell(r).pins[0];
                let raw = nets[pin_net.index()];
                masks.pin(b, r.0, 0, raw)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let outputs = m
            .outputs()
            .iter()
            .map(|&(_, net): &(String, NetId)| nets[net.index()])
            .collect();
        Ok(SymStep {
            nets,
            next_regs,
            outputs,
        })
    }

    /// [`eval_cell`](Self::eval_cell) under guarded masks.
    fn eval_cell_guarded(
        &self,
        b: &mut Bdd,
        index: usize,
        nets: &[BddRef],
        masks: &GuardedMasks,
    ) -> Result<BddRef, BddOverflow> {
        let cell = &self.module.cells()[index];
        let read = |b: &mut Bdd, pin: usize| -> Result<BddRef, BddOverflow> {
            let raw = nets[cell.pins[pin].index()];
            masks.pin(b, index as u32, pin, raw)
        };
        let raw = match cell.kind {
            CellKind::Buf => read(b, 0)?,
            CellKind::Not => {
                let a = read(b, 0)?;
                b.try_not(a)?
            }
            CellKind::And => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_and(x, y)?
            }
            CellKind::Or => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_or(x, y)?
            }
            CellKind::Xor => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_xor(x, y)?
            }
            CellKind::Nand => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_nand(x, y)?
            }
            CellKind::Nor => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_nor(x, y)?
            }
            CellKind::Xnor => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_xnor(x, y)?
            }
            CellKind::Mux => {
                let (sel, x, y) = (read(b, 0)?, read(b, 1)?, read(b, 2)?);
                b.try_mux(sel, x, y)?
            }
            CellKind::Input | CellKind::Const(_) | CellKind::Dff { .. } => {
                unreachable!("topo order contains only combinational cells")
            }
        };
        masks.net(b, index as u32, raw)
    }

    /// Cone-incremental re-evaluation: recomputes only the transitive
    /// fanout of `fault`'s site, reusing `base` (the fault-free
    /// [`SymStep`] from [`SymbolicEvaluator::eval`]) everywhere else.
    /// Because BDD handles are canonical, a recomputed net whose function
    /// is unchanged stops the propagation — most certification sites
    /// touch a small fraction of the netlist.
    ///
    /// Produces handle-for-handle the same result as
    /// `eval(b, &[fault])` (asserted by the differential tests).
    ///
    /// # Panics
    ///
    /// Panics with the [`BddOverflow`] description if `b`'s configured
    /// budget is exhausted; use
    /// [`try_eval_fault_from`](Self::try_eval_fault_from) under budgets.
    pub fn eval_fault_from(&self, b: &mut Bdd, base: &SymStep, fault: Fault) -> SymStep {
        self.try_eval_fault_from(b, base, fault)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`eval_fault_from`](Self::eval_fault_from), surfacing budget
    /// exhaustion on `b` as [`BddOverflow`] instead of panicking.
    pub fn try_eval_fault_from(
        &self,
        b: &mut Bdd,
        base: &SymStep,
        fault: Fault,
    ) -> Result<SymStep, BddOverflow> {
        let masks = FaultMasks::compile(self.module, &[fault]);
        let m = self.module;
        let mut nets = base.nets.clone();
        let mut dirty = vec![false; m.len()];

        // Seed: recompute the faulted cell's output net. Pin faults and
        // register flips manifest on the owning cell too (a register flip
        // changes the stored value the output net reads).
        let seed_cell = match fault.site {
            FaultSite::CellOutput(c) | FaultSite::Pin(c, _) | FaultSite::Register(c) => c,
        };
        match m.cell(seed_cell).kind {
            CellKind::Input | CellKind::Const(_) => {
                // Unreachable through `enumerate_faults`, but keep the
                // semantics total: re-apply the transform to the source.
                let raw = nets[seed_cell.index()];
                let v = masks.net(seed_cell.0).apply(b, raw)?;
                if v != nets[seed_cell.index()] {
                    nets[seed_cell.index()] = v;
                    dirty[seed_cell.index()] = true;
                }
            }
            CellKind::Dff { .. } => {
                let pos = m
                    .register_position(seed_cell)
                    .expect("DFF cells are registers");
                let raw = self.reg_source(b, pos, &masks)?;
                let v = masks.net(seed_cell.0).apply(b, raw)?;
                if v != nets[seed_cell.index()] {
                    nets[seed_cell.index()] = v;
                    dirty[seed_cell.index()] = true;
                }
                // A pure pin fault on a DFF affects only the commit path,
                // handled in `finish_step`.
            }
            _ => dirty[seed_cell.index()] = true, // recomputed in the sweep
        }

        // Sweep the topological order, recomputing cells with a dirty pin
        // (or the seed itself); canonicity prunes unchanged cones.
        for &c in m.topo_order() {
            let needs = dirty[c.index()] || m.cell(c).pins.iter().any(|pin| dirty[pin.index()]);
            if !needs {
                continue;
            }
            let v = self.eval_cell(b, c.index(), &nets, &masks)?;
            dirty[c.index()] = v != nets[c.index()];
            nets[c.index()] = v;
        }

        self.finish_step(b, nets, &masks)
    }

    /// Evaluates one combinational cell from settled pin values.
    fn eval_cell(
        &self,
        b: &mut Bdd,
        index: usize,
        nets: &[BddRef],
        masks: &FaultMasks,
    ) -> Result<BddRef, BddOverflow> {
        let cell = &self.module.cells()[index];
        let read = |b: &mut Bdd, pin: usize| -> Result<BddRef, BddOverflow> {
            let raw = nets[cell.pins[pin].index()];
            masks.pin(index as u32, pin).apply(b, raw)
        };
        let raw = match cell.kind {
            CellKind::Buf => read(b, 0)?,
            CellKind::Not => {
                let a = read(b, 0)?;
                b.try_not(a)?
            }
            CellKind::And => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_and(x, y)?
            }
            CellKind::Or => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_or(x, y)?
            }
            CellKind::Xor => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_xor(x, y)?
            }
            CellKind::Nand => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_nand(x, y)?
            }
            CellKind::Nor => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_nor(x, y)?
            }
            CellKind::Xnor => {
                let (x, y) = (read(b, 0)?, read(b, 1)?);
                b.try_xnor(x, y)?
            }
            CellKind::Mux => {
                let (sel, x, y) = (read(b, 0)?, read(b, 1)?, read(b, 2)?);
                b.try_mux(sel, x, y)?
            }
            CellKind::Input | CellKind::Const(_) | CellKind::Dff { .. } => {
                unreachable!("topo order contains only combinational cells")
            }
        };
        masks.net(index as u32).apply(b, raw)
    }

    /// Samples outputs and the register commit path from settled nets.
    fn finish_step(
        &self,
        b: &mut Bdd,
        nets: Vec<BddRef>,
        masks: &FaultMasks,
    ) -> Result<SymStep, BddOverflow> {
        let m = self.module;
        let next_regs = m
            .registers()
            .iter()
            .map(|&r| {
                let pin_net = m.cell(r).pins[0];
                let raw = nets[pin_net.index()];
                masks.pin(r.0, 0).apply(b, raw)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let outputs = m
            .outputs()
            .iter()
            .map(|&(_, net): &(String, NetId)| nets[net.index()])
            .collect();
        Ok(SymStep {
            nets,
            next_regs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_faultsim::FaultEffect;
    use scfi_netlist::{CellId, ModuleBuilder, Simulator};

    /// 2-bit counter with an enable input: q += en.
    fn counter() -> Module {
        let mut mb = ModuleBuilder::new("counter2");
        let en = mb.input("en");
        let q0 = mb.dff_uninit(false);
        let q1 = mb.dff_uninit(false);
        let n0 = mb.xor2(q0, en);
        let carry = mb.and2(q0, en);
        let n1 = mb.xor2(q1, carry);
        mb.set_dff_input(q0, n0);
        mb.set_dff_input(q1, n1);
        mb.output("q0", q0);
        mb.output("q1", q1);
        mb.finish().unwrap()
    }

    /// Enumerates every assignment of the module's (inputs, registers) and
    /// checks the symbolic step against a scalar simulation step.
    fn assert_matches_scalar(module: &Module, faults: &[Fault]) {
        let ev = SymbolicEvaluator::new(module);
        let mut b = Bdd::new();
        let step = ev.eval(&mut b, faults);
        let n_in = module.inputs().len();
        let n_reg = module.registers().len();
        let mut sim = Simulator::new(module);
        for bits in 0u64..1 << (n_in + n_reg) {
            let inputs: Vec<bool> = (0..n_in).map(|i| bits >> i & 1 == 1).collect();
            let regs: Vec<bool> = (0..n_reg).map(|i| bits >> (n_in + i) & 1 == 1).collect();
            sim.clear_faults();
            sim.reset_to(&regs);
            for &f in faults {
                match (f.site, f.effect) {
                    (FaultSite::CellOutput(c), FaultEffect::Flip) => sim.set_net_flip(c.net()),
                    (FaultSite::CellOutput(c), FaultEffect::Stuck0) => {
                        sim.set_net_stuck(c.net(), false)
                    }
                    (FaultSite::CellOutput(c), FaultEffect::Stuck1) => {
                        sim.set_net_stuck(c.net(), true)
                    }
                    (FaultSite::Pin(c, p), FaultEffect::Flip) => sim.set_pin_flip(c, p as usize),
                    (FaultSite::Pin(c, p), FaultEffect::Stuck0) => {
                        sim.set_pin_stuck(c, p as usize, false)
                    }
                    (FaultSite::Pin(c, p), FaultEffect::Stuck1) => {
                        sim.set_pin_stuck(c, p as usize, true)
                    }
                    (FaultSite::Register(c), _) => sim.flip_register(c),
                }
            }
            let out = sim.step(&inputs);
            // Assignment vector indexed by BDD variable.
            let mut assignment = vec![false; ev.varmap().var_count() as usize];
            for (i, &v) in inputs.iter().enumerate() {
                assignment[ev.varmap().input(i) as usize] = v;
            }
            for (i, &v) in regs.iter().enumerate() {
                assignment[ev.varmap().reg_current(i) as usize] = v;
            }
            for (p, &f) in step.outputs.iter().enumerate() {
                assert_eq!(
                    b.eval(f, &assignment),
                    out[p],
                    "output {p} diverged at bits {bits:b} under {faults:?}"
                );
            }
            for (r, &f) in step.next_regs.iter().enumerate() {
                assert_eq!(
                    b.eval(f, &assignment),
                    sim.register_values()[r],
                    "next state bit {r} diverged at bits {bits:b} under {faults:?}"
                );
            }
        }
    }

    #[test]
    fn fault_free_step_matches_scalar_exhaustively() {
        assert_matches_scalar(&counter(), &[]);
    }

    #[test]
    fn faulty_steps_match_scalar_exhaustively() {
        let m = counter();
        let mut faults: Vec<Fault> = Vec::new();
        for (i, cell) in m.cells().iter().enumerate() {
            if matches!(cell.kind, CellKind::Input | CellKind::Const(_)) {
                continue;
            }
            for effect in [FaultEffect::Flip, FaultEffect::Stuck0, FaultEffect::Stuck1] {
                faults.push(Fault {
                    site: FaultSite::CellOutput(CellId(i as u32)),
                    effect,
                });
            }
            for pin in 0..cell.pins.len() {
                faults.push(Fault {
                    site: FaultSite::Pin(CellId(i as u32), pin as u8),
                    effect: FaultEffect::Flip,
                });
            }
        }
        for &r in m.registers() {
            faults.push(Fault {
                site: FaultSite::Register(r),
                effect: FaultEffect::Flip,
            });
        }
        for &f in &faults {
            assert_matches_scalar(&m, &[f]);
        }
    }

    #[test]
    fn incremental_eval_equals_full_eval() {
        let m = counter();
        let ev = SymbolicEvaluator::new(&m);
        let mut b = Bdd::new();
        let base = ev.eval(&mut b, &[]);
        for (i, cell) in m.cells().iter().enumerate() {
            if matches!(cell.kind, CellKind::Input | CellKind::Const(_)) {
                continue;
            }
            let mut faults = vec![
                Fault {
                    site: FaultSite::CellOutput(CellId(i as u32)),
                    effect: FaultEffect::Flip,
                },
                Fault {
                    site: FaultSite::CellOutput(CellId(i as u32)),
                    effect: FaultEffect::Stuck1,
                },
            ];
            for pin in 0..cell.pins.len() {
                faults.push(Fault {
                    site: FaultSite::Pin(CellId(i as u32), pin as u8),
                    effect: FaultEffect::Stuck0,
                });
            }
            if cell.kind.is_sequential() {
                faults.push(Fault {
                    site: FaultSite::Register(CellId(i as u32)),
                    effect: FaultEffect::Flip,
                });
            }
            for fault in faults {
                let full = ev.eval(&mut b, &[fault]);
                let inc = ev.eval_fault_from(&mut b, &base, fault);
                assert_eq!(full.next_regs, inc.next_regs, "fault {fault:?}");
                assert_eq!(full.outputs, inc.outputs, "fault {fault:?}");
                assert_eq!(full.nets, inc.nets, "fault {fault:?}");
            }
        }
    }

    /// Identity sources: every register reads its own current-state
    /// variable and every input its input variable — the configuration
    /// under which guarded evaluation must reproduce [`eval`].
    fn identity_sources(ev: &SymbolicEvaluator<'_>, b: &mut Bdd) -> (Vec<BddRef>, Vec<BddRef>) {
        let regs = (0..ev.module().registers().len())
            .map(|i| b.var(ev.varmap().reg_current(i)))
            .collect();
        let inputs = (0..ev.module().inputs().len())
            .map(|i| b.var(ev.varmap().input(i)))
            .collect();
        (regs, inputs)
    }

    #[test]
    fn guarded_eval_with_true_guards_equals_plain_eval() {
        let m = counter();
        let ev = SymbolicEvaluator::new(&m);
        let mut b = Bdd::new();
        let mut faults: Vec<Fault> = vec![Fault {
            site: FaultSite::Register(m.registers()[0]),
            effect: FaultEffect::Flip,
        }];
        for (i, cell) in m.cells().iter().enumerate() {
            if matches!(cell.kind, CellKind::Input | CellKind::Const(_)) {
                continue;
            }
            for effect in [FaultEffect::Flip, FaultEffect::Stuck0, FaultEffect::Stuck1] {
                faults.push(Fault {
                    site: FaultSite::CellOutput(CellId(i as u32)),
                    effect,
                });
            }
            for pin in 0..cell.pins.len() {
                faults.push(Fault {
                    site: FaultSite::Pin(CellId(i as u32), pin as u8),
                    effect: FaultEffect::Flip,
                });
            }
        }
        for &fault in &faults {
            let plain = ev.eval(&mut b, &[fault]);
            let (regs, inputs) = identity_sources(&ev, &mut b);
            let guarded = ev
                .try_eval_guarded(&mut b, &regs, &inputs, &[(fault, BddRef::TRUE)])
                .expect("unbudgeted");
            // Canonicity: equal functions are handle-equal.
            assert_eq!(plain.next_regs, guarded.next_regs, "fault {fault:?}");
            assert_eq!(plain.outputs, guarded.outputs, "fault {fault:?}");
        }
        // FALSE guards make every fault vanish.
        let base = ev.eval(&mut b, &[]);
        let off: Vec<(Fault, BddRef)> = faults.iter().map(|&f| (f, BddRef::FALSE)).collect();
        let (regs, inputs) = identity_sources(&ev, &mut b);
        let guarded = ev
            .try_eval_guarded(&mut b, &regs, &inputs, &off)
            .expect("unbudgeted");
        assert_eq!(base.next_regs, guarded.next_regs);
        assert_eq!(base.outputs, guarded.outputs);
    }

    #[test]
    fn guarded_eval_selects_every_fault_subset_at_once() {
        // One evaluation with symbolic selectors, cofactored on each
        // concrete selector assignment, must match the unguarded
        // evaluation of exactly that fault subset.
        let m = counter();
        let ev = SymbolicEvaluator::new(&m);
        let mut b = Bdd::new();
        let faults = [
            Fault {
                site: FaultSite::Register(m.registers()[1]),
                effect: FaultEffect::Flip,
            },
            Fault {
                site: FaultSite::CellOutput(CellId(m.registers()[0].0)),
                effect: FaultEffect::Stuck1,
            },
            Fault {
                site: FaultSite::Pin(m.topo_order()[0], 0),
                effect: FaultEffect::Flip,
            },
        ];
        let sel_base = ev.varmap().var_count();
        let guarded_faults: Vec<(Fault, BddRef)> = faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, b.var(sel_base + i as u32)))
            .collect();
        let (regs, inputs) = identity_sources(&ev, &mut b);
        let joint = ev
            .try_eval_guarded(&mut b, &regs, &inputs, &guarded_faults)
            .expect("unbudgeted");
        let n_in = m.inputs().len();
        let n_reg = m.registers().len();
        for subset in 0u32..1 << faults.len() {
            let active: Vec<Fault> = faults
                .iter()
                .enumerate()
                .filter(|(i, _)| subset >> i & 1 == 1)
                .map(|(_, &f)| f)
                .collect();
            let expect = ev.eval(&mut b, &active);
            for bits in 0u64..1 << (n_in + n_reg) {
                let mut assignment = vec![false; (sel_base + faults.len() as u32) as usize];
                for i in 0..n_in {
                    assignment[ev.varmap().input(i) as usize] = bits >> i & 1 == 1;
                }
                for i in 0..n_reg {
                    assignment[ev.varmap().reg_current(i) as usize] = bits >> (n_in + i) & 1 == 1;
                }
                for i in 0..faults.len() {
                    assignment[(sel_base + i as u32) as usize] = subset >> i & 1 == 1;
                }
                for (r, (&j, &e)) in joint.next_regs.iter().zip(&expect.next_regs).enumerate() {
                    assert_eq!(
                        b.eval(j, &assignment),
                        b.eval(e, &assignment),
                        "next reg {r}, subset {subset:03b}, bits {bits:b}"
                    );
                }
                for (p, (&j, &e)) in joint.outputs.iter().zip(&expect.outputs).enumerate() {
                    assert_eq!(
                        b.eval(j, &assignment),
                        b.eval(e, &assignment),
                        "output {p}, subset {subset:03b}, bits {bits:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn guarded_eval_chains_steps_without_renaming() {
        // Feeding one step's next-state functions back as the next step's
        // register sources composes the transition function: two chained
        // steps of the counter add the two enable inputs.
        let m = counter();
        let ev = SymbolicEvaluator::new(&m);
        let mut b = Bdd::new();
        let (regs, inputs) = identity_sources(&ev, &mut b);
        let s1 = ev
            .try_eval_guarded(&mut b, &regs, &inputs, &[])
            .expect("unbudgeted");
        let en2 = vec![b.var(ev.varmap().var_count())]; // fresh second-cycle input
        let s2 = ev
            .try_eval_guarded(&mut b, &s1.next_regs, &en2, &[])
            .expect("unbudgeted");
        let mut sim = Simulator::new(&m);
        for bits in 0u64..1 << 4 {
            let (r0, r1, e1, e2) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4, bits & 8 == 8);
            sim.reset_to(&[r0, r1]);
            sim.step(&[e1]);
            sim.step(&[e2]);
            let mut assignment = vec![false; ev.varmap().var_count() as usize + 1];
            assignment[ev.varmap().input(0) as usize] = e1;
            assignment[ev.varmap().reg_current(0) as usize] = r0;
            assignment[ev.varmap().reg_current(1) as usize] = r1;
            assignment[ev.varmap().var_count() as usize] = e2;
            for (r, &f) in s2.next_regs.iter().enumerate() {
                assert_eq!(
                    b.eval(f, &assignment),
                    sim.register_values()[r],
                    "two-step state bit {r} at bits {bits:b}"
                );
            }
        }
    }

    #[test]
    fn varmap_orders_by_first_use_and_interleaves_primes() {
        let m = counter();
        let vm = VarMap::from_module(&m);
        // Every register's primed variable sits directly below its
        // current variable.
        for i in 0..m.registers().len() {
            assert_eq!(vm.reg_next(i), vm.reg_current(i) + 1);
        }
        // Variable indices are a permutation of 0..var_count.
        let mut all: Vec<u32> = (0..m.inputs().len()).map(|i| vm.input(i)).collect();
        for i in 0..m.registers().len() {
            all.push(vm.reg_current(i));
            all.push(vm.reg_next(i));
        }
        all.sort_unstable();
        assert_eq!(all, (0..vm.var_count()).collect::<Vec<_>>());
        // The quantification set is everything but the primes.
        assert_eq!(
            vm.unprimed_vars().len(),
            m.inputs().len() + m.registers().len()
        );
    }

    #[test]
    fn decode_assignment_defaults_dont_cares_to_false() {
        let m = counter();
        let vm = VarMap::from_module(&m);
        let (regs, inputs) = vm.decode_assignment(&[(vm.reg_current(1), true)]);
        assert_eq!(regs, vec![false, true]);
        assert_eq!(inputs, vec![false]);
    }

    #[test]
    fn reset_state_reads_dff_inits() {
        let mut mb = ModuleBuilder::new("inits");
        let a = mb.dff_uninit(true);
        let c = mb.dff_uninit(false);
        let na = mb.not(a);
        mb.set_dff_input(a, na);
        mb.set_dff_input(c, a);
        mb.output("a", a);
        let m = mb.finish().unwrap();
        let ev = SymbolicEvaluator::new(&m);
        assert_eq!(ev.reset_state(), vec![true, false]);
    }
}
