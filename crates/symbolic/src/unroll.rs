//! The temporal attacker, certified: k-step symbolic unrolling and joint
//! multi-fault proofs.
//!
//! The per-site certification in [`certify`](crate::Certifier::certify)
//! covers one fault in one transition. The paper's §3 threat model is
//! stronger on both axes: the attacker places **up to N − 1 faults**,
//! each with **free timing** along a multi-cycle protocol run. This
//! module closes both gaps on the proof side, mirroring what the
//! campaign layer's per-fault [`FaultSchedule`](scfi_faultsim::FaultSchedule)s
//! sample:
//!
//! * [`Certifier::certify_kstep`] unrolls the transition function `k`
//!   cycles forward from the reachable-state fixpoint, with fresh
//!   symbolic input variables per cycle and the fault transient in
//!   cycle `j` — proving (or refuting) "no start state and no k-cycle
//!   admissible input schedule lets this fault, glitched at step `j`,
//!   silently hijack the walk". The unrolling is bounded forward
//!   substitution: each step's next-state functions feed straight back
//!   in as the next step's register sources
//!   ([`SymbolicEvaluator::try_eval_guarded`](crate::SymbolicEvaluator::try_eval_guarded)),
//!   no renaming pass required.
//! * [`Certifier::certify_joint`] attaches one BDD *selector variable*
//!   per candidate fault site and constrains the selector weight to at
//!   most N − 1 ([`at_most`]). A single escape BDD then quantifies over
//!   every admissible fault *subset* simultaneously — an empty BDD is
//!   the paper's joint claim, **proved**: no combination of up to N − 1
//!   faults from the whole site list silently hijacks any reachable
//!   transition. A non-empty BDD yields a fewest-care witness
//!   ([`Bdd::sat_one_minimal`](crate::Bdd::sat_one_minimal)) naming the
//!   minimal active fault set, which is replayed through the scalar
//!   simulator for confirmation.
//!
//! Both entry points inherit the certifier's budget discipline: a
//! [`BddOverflow`](crate::BddOverflow) mid-proof degrades to
//! [`JointVerdict::Unknown`] / [`KStepVerdict::Unknown`] — never to a
//! fabricated proof.

use std::collections::HashMap;
use std::fmt;

use scfi_faultsim::Fault;
use scfi_netlist::Simulator;

use crate::bdd::{Bdd, BddOverflow, BddRef};
use crate::certify::{describe_fault, Certifier, CertifyModel};

/// A concrete escaping assignment of the joint certification: the active
/// fault subset plus the register/input assignment it escapes on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JointWitness {
    /// The faults the escape actually needs switched on (a fewest-care
    /// witness keeps every other selector off) — at most the certified
    /// `max_active`.
    pub active: Vec<Fault>,
    /// Register preload (fault-free; register flips are applied on top by
    /// the replay, exactly like the campaign executors).
    pub regs: Vec<bool>,
    /// Input-port assignment for the attacked cycle.
    pub inputs: Vec<bool>,
    /// `true` once the scalar-simulator replay confirmed the hijack.
    pub confirmed: bool,
}

/// The verdict of one joint multi-fault certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JointVerdict {
    /// Proof: no admissible combination of at most `max_active` faults
    /// from the candidate list silently hijacks any reachable transition.
    Proved,
    /// Refutation: the witness names a concrete fault subset and
    /// assignment that escapes.
    Counterexample(JointWitness),
    /// Degradation: the BDD budget ran out before the joint claim was
    /// decided. Never counted as proven.
    Unknown {
        /// The [`BddOverflow`](crate::BddOverflow) description that
        /// stopped the proof.
        reason: String,
    },
}

impl JointVerdict {
    /// `true` only for [`JointVerdict::Proved`] — an undecided claim
    /// never strengthens a guarantee.
    pub fn is_proven(&self) -> bool {
        matches!(self, JointVerdict::Proved)
    }
}

/// The result of one joint multi-fault certification.
#[derive(Clone, Debug)]
pub struct JointReport {
    /// Configuration tag of the certified model.
    pub config: &'static str,
    /// Module name.
    pub module: String,
    /// Candidate fault sites the selector variables range over.
    pub sites: usize,
    /// The cardinality bound: at most this many faults active at once
    /// (the paper's N − 1).
    pub max_active: usize,
    /// Exact number of reachable register states the claim quantifies
    /// over.
    pub reachable_states: u64,
    /// The joint verdict.
    pub verdict: JointVerdict,
}

impl fmt::Display for JointReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "joint certification of {} ({}): {} candidate sites, at most {} simultaneous faults, {} reachable states",
            self.module, self.config, self.sites, self.max_active, self.reachable_states
        )?;
        match &self.verdict {
            JointVerdict::Proved => write!(
                f,
                "  PROVED: no combination of up to {} faults silently hijacks any reachable transition",
                self.max_active
            ),
            JointVerdict::Counterexample(w) => {
                write!(
                    f,
                    "  REFUTED: {} active fault(s) escape{}",
                    w.active.len(),
                    if w.confirmed {
                        " (replay-confirmed)"
                    } else {
                        " (replay DID NOT confirm)"
                    }
                )
            }
            JointVerdict::Unknown { reason } => write!(f, "  UNKNOWN: {reason}"),
        }
    }
}

/// A concrete escaping trajectory of a k-step certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KStepWitness {
    /// Register preload the walk starts from (a reachable state).
    pub regs: Vec<bool>,
    /// The admissible input word driven in each of the k cycles.
    pub inputs: Vec<Vec<bool>>,
    /// `true` once the scalar-simulator replay confirmed the hijack.
    pub confirmed: bool,
}

/// The verdict of one k-step certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KStepVerdict {
    /// Proof: no reachable start state and no admissible k-cycle input
    /// schedule lets the fault, transient at its scheduled step, silently
    /// hijack the walk.
    Proved,
    /// Refutation: the witness trajectory escapes.
    Counterexample(KStepWitness),
    /// Degradation: the BDD budget ran out mid-unrolling. Never counted
    /// as proven.
    Unknown {
        /// The [`BddOverflow`](crate::BddOverflow) description that
        /// stopped the proof.
        reason: String,
    },
}

impl KStepVerdict {
    /// `true` only for [`KStepVerdict::Proved`].
    pub fn is_proven(&self) -> bool {
        matches!(self, KStepVerdict::Proved)
    }
}

/// The BDD of "at most `k` of `vars` are true", built by the standard
/// bottom-up threshold recurrence: processing variables from the deepest
/// up, `a[c]` tracks "at most `c` of the processed variables are true"
/// and each variable `v` updates it to `ite(v, a[c-1], a[c])`.
fn at_most(b: &mut Bdd, vars: &[u32], k: usize) -> Result<BddRef, BddOverflow> {
    let mut a = vec![BddRef::TRUE; k + 1];
    for &v in vars.iter().rev() {
        let lit = b.try_var(v)?;
        let mut next = Vec::with_capacity(k + 1);
        for c in 0..=k {
            let if_set = if c == 0 { BddRef::FALSE } else { a[c - 1] };
            next.push(b.try_ite(lit, if_set, a[c])?);
        }
        a = next;
    }
    Ok(a[k])
}

impl<M: CertifyModel> Certifier<'_, M> {
    /// Certifies the **joint** §3 claim over `faults`: is there *any*
    /// subset of at most `max_active` candidate faults, any reachable
    /// state and any admissible input word on which the combined
    /// injection silently hijacks the next transition?
    ///
    /// One selector variable per site (allocated above the
    /// [`VarMap`](crate::VarMap)'s universe) guards its fault in a single
    /// selector-aware symbolic step, and a cardinality-≤`max_active`
    /// constraint over the selectors restricts the subset space, so one
    /// emptiness test covers every admissible combination — for the
    /// paper's protection level N, pass `max_active = N − 1`.
    ///
    /// Under a [`CertifyBudget`](crate::CertifyBudget) the per-site step
    /// counter is reset first and an overflow degrades to
    /// [`JointVerdict::Unknown`]; the claim is then *undecided*, never
    /// proven.
    pub fn certify_joint(&mut self, faults: &[Fault], max_active: usize) -> JointReport {
        self.bdd.reset_steps();
        let verdict = match self.certify_joint_inner(faults, max_active) {
            Ok(v) => v,
            Err(overflow) => JointVerdict::Unknown {
                reason: overflow.to_string(),
            },
        };
        JointReport {
            config: self.model.config_name(),
            module: self.model.module().name().to_string(),
            sites: faults.len(),
            max_active,
            reachable_states: self.reachable_state_count(),
            verdict,
        }
    }

    fn certify_joint_inner(
        &mut self,
        faults: &[Fault],
        max_active: usize,
    ) -> Result<JointVerdict, BddOverflow> {
        let vm = self.evaluator.varmap();
        let sel_base = vm.var_count();
        let n_regs = self.model.module().registers().len();
        let n_inputs = self.model.module().inputs().len();
        let reg_vars: Vec<u32> = (0..n_regs).map(|i| vm.reg_current(i)).collect();
        let input_vars: Vec<u32> = (0..n_inputs).map(|i| vm.input(i)).collect();

        let b = &mut self.bdd;
        let regs = reg_vars
            .iter()
            .map(|&v| b.try_var(v))
            .collect::<Result<Vec<_>, _>>()?;
        let inputs = input_vars
            .iter()
            .map(|&v| b.try_var(v))
            .collect::<Result<Vec<_>, _>>()?;
        let sel_vars: Vec<u32> = (0..faults.len()).map(|i| sel_base + i as u32).collect();
        let guarded = faults
            .iter()
            .zip(&sel_vars)
            .map(|(&fault, &v)| Ok((fault, b.try_var(v)?)))
            .collect::<Result<Vec<_>, BddOverflow>>()?;

        let faulty = self
            .evaluator
            .try_eval_guarded(&mut self.bdd, &regs, &inputs, &guarded)?;

        let ports = self.detection_ports.clone();
        let b = &mut self.bdd;
        let mut diverge = BddRef::FALSE;
        for (&free, &bad) in self.base.next_regs.iter().zip(&faulty.next_regs) {
            let d = b.try_xor(free, bad)?;
            diverge = b.try_or(diverge, d)?;
        }
        let undetected = self.model.undetected_next(b, &faulty.next_regs)?;
        let mut alerted = BddRef::FALSE;
        for &p in &ports {
            alerted = b.try_or(alerted, faulty.outputs[p])?;
        }
        let quiet = b.try_not(alerted)?;
        let cardinality = at_most(b, &sel_vars, max_active)?;
        let escape = {
            let e = b.try_and(diverge, undetected)?;
            let e = b.try_and(e, quiet)?;
            let e = b.try_and(e, self.assumption)?;
            let e = b.try_and(e, self.reach.states)?;
            b.try_and(e, cardinality)?
        };

        if escape == BddRef::FALSE {
            return Ok(JointVerdict::Proved);
        }
        // A fewest-care witness: don't-care selectors decode to `false`,
        // so `active` is a minimal escaping subset along the chosen path.
        let assignment = b
            .sat_one_minimal(escape)
            .expect("non-false BDD has a model");
        let (regs_w, inputs_w) = self.evaluator.varmap().decode_assignment(&assignment);
        let active: Vec<Fault> = assignment
            .iter()
            .filter(|&&(v, value)| value && v >= sel_base)
            .map(|&(v, _)| faults[(v - sel_base) as usize])
            .collect();
        debug_assert!(
            !active.is_empty() && active.len() <= max_active,
            "an escape needs between 1 and max_active active faults"
        );
        let confirmed = self.replay_group(&active, &regs_w, &inputs_w);
        Ok(JointVerdict::Counterexample(JointWitness {
            active,
            regs: regs_w,
            inputs: inputs_w,
            confirmed,
        }))
    }

    /// Certifies `fault` as a **transient** glitch at step `j` of a
    /// `k`-cycle symbolic walk: starting from *any* reachable state and
    /// driving *any* admissible input word in each of the k cycles, can
    /// the fault — armed only during cycle `j` — leave the run on a
    /// valid-but-wrong state at some cycle without ever being caught?
    ///
    /// Mirrors the campaign fold ([`Outcome`](scfi_faultsim::Outcome)):
    /// an escape requires a silent hijack at some cycle *and* no
    /// detection at any cycle — a hijacked state that collapses to an
    /// invalid/error word or raises an alert later in the walk counts as
    /// detected, exactly like the simulated protocol walks.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k` (the fault would arm past the walk) or `k == 0`.
    pub fn certify_kstep(&mut self, fault: Fault, k: usize, j: usize) -> KStepVerdict {
        assert!(k >= 1, "a walk needs at least one cycle");
        assert!(j < k, "fault step {j} lies past the {k}-cycle walk");
        self.bdd.reset_steps();
        match self.certify_kstep_inner(fault, k, j) {
            Ok(v) => v,
            Err(overflow) => KStepVerdict::Unknown {
                reason: overflow.to_string(),
            },
        }
    }

    fn certify_kstep_inner(
        &mut self,
        fault: Fault,
        k: usize,
        j: usize,
    ) -> Result<KStepVerdict, BddOverflow> {
        let vm = self.evaluator.varmap();
        let fresh_base = vm.var_count();
        let n_regs = self.model.module().registers().len();
        let n_inputs = self.model.module().inputs().len();
        let reg_vars: Vec<u32> = (0..n_regs).map(|i| vm.reg_current(i)).collect();
        let cycle0_inputs: Vec<u32> = (0..n_inputs).map(|i| vm.input(i)).collect();
        let ports = self.detection_ports.clone();

        let mut golden: Vec<BddRef> = reg_vars
            .iter()
            .map(|&v| self.bdd.try_var(v))
            .collect::<Result<_, _>>()?;
        let mut faulty = golden.clone();
        let mut any_hijack = BddRef::FALSE;
        let mut all_quiet = BddRef::TRUE;
        let mut assume_all = BddRef::TRUE;
        let mut input_blocks: Vec<Vec<u32>> = Vec::with_capacity(k);

        for t in 0..k {
            // Cycle 0 reuses the VarMap's input variables (so the base
            // step's functions are shared); later cycles get fresh
            // variable blocks above the universe.
            let vars: Vec<u32> = if t == 0 {
                cycle0_inputs.clone()
            } else {
                (0..n_inputs)
                    .map(|i| fresh_base + ((t - 1) * n_inputs + i) as u32)
                    .collect()
            };
            let inputs: Vec<BddRef> = vars
                .iter()
                .map(|&v| self.bdd.try_var(v))
                .collect::<Result<_, _>>()?;
            input_blocks.push(vars);
            let assume_t = if t == 0 {
                self.assumption
            } else {
                self.model.input_assumption(&mut self.bdd, &inputs)?
            };
            assume_all = self.bdd.try_and(assume_all, assume_t)?;

            let g = self
                .evaluator
                .try_eval_guarded(&mut self.bdd, &golden, &inputs, &[])?;
            let armed: &[(Fault, BddRef)] = if t == j {
                &[(fault, BddRef::TRUE)]
            } else {
                &[]
            };
            let f = self
                .evaluator
                .try_eval_guarded(&mut self.bdd, &faulty, &inputs, armed)?;

            let b = &mut self.bdd;
            let mut diverge = BddRef::FALSE;
            for (&free, &bad) in g.next_regs.iter().zip(&f.next_regs) {
                let d = b.try_xor(free, bad)?;
                diverge = b.try_or(diverge, d)?;
            }
            let undetected = self.model.undetected_next(b, &f.next_regs)?;
            let mut alerted = BddRef::FALSE;
            for &p in &ports {
                alerted = b.try_or(alerted, f.outputs[p])?;
            }
            let hijack = b.try_and(diverge, undetected)?;
            any_hijack = b.try_or(any_hijack, hijack)?;
            let no_alert = b.try_not(alerted)?;
            let quiet = b.try_and(no_alert, undetected)?;
            all_quiet = b.try_and(all_quiet, quiet)?;

            golden = g.next_regs;
            faulty = f.next_regs;
        }

        let b = &mut self.bdd;
        let escape = {
            let e = b.try_and(any_hijack, all_quiet)?;
            let e = b.try_and(e, assume_all)?;
            b.try_and(e, self.reach.states)?
        };
        if escape == BddRef::FALSE {
            return Ok(KStepVerdict::Proved);
        }
        let assignment = b
            .sat_one_minimal(escape)
            .expect("non-false BDD has a model");
        let lookup: HashMap<u32, bool> = assignment.iter().copied().collect();
        let regs: Vec<bool> = reg_vars
            .iter()
            .map(|v| lookup.get(v).copied().unwrap_or(false))
            .collect();
        let inputs: Vec<Vec<bool>> = input_blocks
            .iter()
            .map(|block| {
                block
                    .iter()
                    .map(|v| lookup.get(v).copied().unwrap_or(false))
                    .collect()
            })
            .collect();
        let confirmed = self.replay_kstep(fault, j, &regs, &inputs);
        Ok(KStepVerdict::Counterexample(KStepWitness {
            regs,
            inputs,
            confirmed,
        }))
    }

    /// Replays a k-step witness through the scalar simulator with the
    /// fault transient at step `j`, and checks the campaign fold
    /// concretely: hijacked at some cycle, caught at none.
    fn replay_kstep(&self, fault: Fault, j: usize, regs: &[bool], schedule: &[Vec<bool>]) -> bool {
        let module = self.model.module();
        let mut sim = Simulator::new(module);

        sim.reset_to(regs);
        let golden: Vec<Vec<bool>> = schedule
            .iter()
            .map(|word| {
                sim.step(word);
                sim.register_values().to_vec()
            })
            .collect();

        sim.clear_faults();
        sim.reset_to(regs);
        let mut hijacked = false;
        let mut caught = false;
        for (t, word) in schedule.iter().enumerate() {
            if t == j {
                // Transient arming, exactly like the campaign executors:
                // armed for the window's single cycle, cleared after
                // (register flips fire once at arm time).
                scfi_faultsim::arm(&mut sim, fault);
            }
            let out = sim.step(word);
            if t == j {
                sim.clear_faults();
            }
            let state = sim.register_values().to_vec();
            let undetected = self.model.undetected_next_concrete(&state);
            let alerted = self.detection_ports.iter().any(|&p| out[p]);
            if alerted || !undetected {
                caught = true;
            }
            if undetected && state != golden[t] {
                hijacked = true;
            }
        }
        hijacked && !caught
    }

    /// One-line description of a joint witness's active faults (for CLI
    /// reports): `describe_fault` per site, comma-joined.
    pub fn describe_active(&self, witness: &JointWitness) -> String {
        witness
            .active
            .iter()
            .map(|&f| describe_fault(self.model.module(), f))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::CertifyBudget;
    use scfi_core::{harden, ScfiConfig};
    use scfi_faultsim::{enumerate_faults, CampaignConfig};
    use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};

    fn fsm() -> Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn at_most_counts_true_variables() {
        let mut b = Bdd::new();
        let vars = [0u32, 1, 2, 3];
        for k in 0..=4 {
            let f = at_most(&mut b, &vars, k).unwrap();
            for bits in 0u32..16 {
                let assignment: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                let weight = bits.count_ones() as usize;
                assert_eq!(
                    b.eval(f, &assignment),
                    weight <= k,
                    "k={k}, bits={bits:04b}"
                );
            }
        }
    }

    #[test]
    fn scfi_joint_claim_is_proved_at_n_minus_one() {
        // The paper's §3 claim, joint form: with protection level N, *no
        // combination* of up to N − 1 stored-bit flips escapes — not
        // merely each flip alone.
        for n in [2usize, 3] {
            let h = harden(&fsm(), &ScfiConfig::new(n)).unwrap();
            let faults = enumerate_faults(
                h.module(),
                &CampaignConfig::new().register_region(h.module()),
            );
            assert!(faults.len() > n - 1);
            let mut certifier = Certifier::new(&h);
            let report = certifier.certify_joint(&faults, n - 1);
            assert!(report.verdict.is_proven(), "N={n}: {report}");
            assert_eq!(report.sites, faults.len());
            assert_eq!(report.max_active, n - 1);
            let text = report.to_string();
            assert!(text.contains("PROVED"), "{text}");
        }
    }

    #[test]
    fn scfi_joint_claim_breaks_at_n_faults() {
        // At weight N the distance argument no longer holds: N flips can
        // carry one codeword onto another. The joint certifier must find
        // that subset and the replay must confirm it.
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(
            h.module(),
            &CampaignConfig::new().register_region(h.module()),
        );
        let mut certifier = Certifier::new(&h);
        let report = certifier.certify_joint(&faults, 2);
        match &report.verdict {
            JointVerdict::Counterexample(w) => {
                assert_eq!(
                    w.active.len(),
                    2,
                    "a fewest-care witness uses exactly N flips"
                );
                assert!(w.confirmed, "witness must replay to a concrete hijack");
                assert!(!certifier.describe_active(w).is_empty());
            }
            other => panic!("N flips must break HD-2 protection, got {other:?}"),
        }
        let text = report.to_string();
        assert!(text.contains("REFUTED"), "{text}");
        assert!(text.contains("replay-confirmed"), "{text}");
    }

    #[test]
    fn unprotected_joint_claim_is_refuted_with_minimal_witness() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let faults = enumerate_faults(
            lowered.module(),
            &CampaignConfig::new().register_region(lowered.module()),
        );
        let mut certifier = Certifier::new(&lowered);
        let report = certifier.certify_joint(&faults, 1);
        match &report.verdict {
            JointVerdict::Counterexample(w) => {
                assert_eq!(w.active.len(), 1, "one flip suffices unprotected");
                assert!(w.confirmed);
            }
            other => panic!("unprotected must be refutable, got {other:?}"),
        }
    }

    #[test]
    fn joint_budget_overflow_degrades_to_unknown() {
        let h = harden(&fsm(), &ScfiConfig::new(3)).unwrap();
        let faults = enumerate_faults(
            h.module(),
            &CampaignConfig::new().register_region(h.module()),
        );
        let mut certifier = Certifier::with_budget(&h, CertifyBudget::unlimited().max_steps(1))
            .expect("setup precedes the step limit");
        let report = certifier.certify_joint(&faults, 2);
        match &report.verdict {
            JointVerdict::Unknown { reason } => {
                assert!(reason.contains("step limit"), "{reason}");
                assert!(!report.verdict.is_proven());
            }
            other => panic!("a 1-step budget cannot decide the joint claim, got {other:?}"),
        }
        assert!(report.to_string().contains("UNKNOWN"));
    }

    #[test]
    fn joint_with_zero_active_faults_is_trivially_proved() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(
            h.module(),
            &CampaignConfig::new().register_region(h.module()),
        );
        let mut certifier = Certifier::new(&h);
        let report = certifier.certify_joint(&faults, 0);
        assert!(report.verdict.is_proven(), "{report}");
    }

    #[test]
    fn kstep_scfi_register_flips_stay_proved_at_every_step() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(
            h.module(),
            &CampaignConfig::new().register_region(h.module()),
        );
        let mut certifier = Certifier::new(&h);
        for k in 1..=3usize {
            for j in 0..k {
                for &fault in faults.iter().take(3) {
                    let verdict = certifier.certify_kstep(fault, k, j);
                    assert!(
                        verdict.is_proven(),
                        "k={k}, j={j}, fault {fault:?}: {verdict:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kstep_unprotected_register_flips_are_refuted_and_replayed() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let faults = enumerate_faults(
            lowered.module(),
            &CampaignConfig::new().register_region(lowered.module()),
        );
        let mut certifier = Certifier::new(&lowered);
        let mut refuted = 0;
        for k in 1..=3usize {
            for j in 0..k {
                for &fault in &faults {
                    if let KStepVerdict::Counterexample(w) = certifier.certify_kstep(fault, k, j) {
                        assert_eq!(w.inputs.len(), k, "one input word per cycle");
                        assert!(
                            w.confirmed,
                            "k={k}, j={j}, fault {fault:?}: witness did not replay"
                        );
                        refuted += 1;
                    }
                }
            }
        }
        assert!(refuted > 0, "an unprotected FSM must be k-step refutable");
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn kstep_rejects_windows_past_the_walk() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(
            h.module(),
            &CampaignConfig::new().register_region(h.module()),
        );
        Certifier::new(&h).certify_kstep(faults[0], 2, 2);
    }
}
