//! Symbolic reachability: the least fixpoint of the image operator over
//! the module's DFF transition functions, from the reset state.
//!
//! Certification quantifies over *reachable* states only — proving "no
//! reachable state and input assignment lets this fault escape" rather
//! than the vacuously harder (and generally false) claim over arbitrary
//! register contents. The reachable set is computed once per module by
//! the textbook BDD fixpoint:
//!
//! ```text
//! R₀ = {reset};   Rᵢ₊₁ = Rᵢ ∪ Img(Rᵢ);   Img(R) = ∃s,x. R(s) ∧ ⋀ᵢ (sᵢ' ↔ δᵢ(s,x))
//! ```
//!
//! with the primed variables renamed back to their current-state partners
//! after each image (the [`VarMap`](crate::VarMap) places each primed
//! variable directly below its partner, so the renaming is
//! order-preserving).

use crate::bdd::{Bdd, BddOverflow, BddRef};
use crate::eval::{SymStep, SymbolicEvaluator};

/// The result of the reachability fixpoint.
#[derive(Clone, Copy, Debug)]
pub struct Reachability {
    /// Characteristic function of the reachable state set, over the
    /// current-state variables.
    pub states: BddRef,
    /// Fixpoint iterations taken (the module's sequential depth + 1).
    pub iterations: usize,
}

/// The characteristic function of a single concrete register state.
pub fn state_cube(b: &mut Bdd, ev: &SymbolicEvaluator<'_>, regs: &[bool]) -> BddRef {
    try_state_cube(b, ev, regs).unwrap_or_else(|e| panic!("{e}"))
}

/// [`state_cube`], surfacing budget exhaustion on `b` as [`BddOverflow`].
pub fn try_state_cube(
    b: &mut Bdd,
    ev: &SymbolicEvaluator<'_>,
    regs: &[bool],
) -> Result<BddRef, BddOverflow> {
    assert_eq!(
        regs.len(),
        ev.module().registers().len(),
        "register count mismatch"
    );
    let mut cube = BddRef::TRUE;
    for (i, &v) in regs.iter().enumerate() {
        let lit = if v {
            b.try_var(ev.varmap().reg_current(i))?
        } else {
            b.try_nvar(ev.varmap().reg_current(i))?
        };
        cube = b.try_and(cube, lit)?;
    }
    Ok(cube)
}

/// Computes the set of register states reachable from the reset state
/// under any input sequence satisfying `assumption` (a predicate over
/// the input variables; [`BddRef::TRUE`] for the unconstrained input
/// space), using the fault-free transition functions of `base` (a
/// [`SymbolicEvaluator::eval`] with no faults).
///
/// # Panics
///
/// Panics with the [`BddOverflow`] description if `b`'s configured budget
/// is exhausted; use [`try_reachable_states`] under budgets.
pub fn reachable_states(
    b: &mut Bdd,
    ev: &SymbolicEvaluator<'_>,
    base: &SymStep,
    assumption: BddRef,
) -> Reachability {
    try_reachable_states(b, ev, base, assumption).unwrap_or_else(|e| panic!("{e}"))
}

/// [`reachable_states`], surfacing budget exhaustion on `b` as
/// [`BddOverflow`] instead of panicking. On an unbudgeted manager this
/// never fails.
pub fn try_reachable_states(
    b: &mut Bdd,
    ev: &SymbolicEvaluator<'_>,
    base: &SymStep,
    assumption: BddRef,
) -> Result<Reachability, BddOverflow> {
    let vm = ev.varmap();
    // Transition relation ⋀ᵢ (sᵢ' ↔ δᵢ(s, x)), under the input assumption.
    let mut relation = assumption;
    for (i, &delta) in base.next_regs.iter().enumerate() {
        let primed = b.try_var(vm.reg_next(i))?;
        let bit = b.try_xnor(primed, delta)?;
        relation = b.try_and(relation, bit)?;
    }
    let quantified = vm.unprimed_vars();
    // Primed variable of register i is current + 1 (see `VarMap`), so the
    // rename is the order-preserving unit shift back down.
    let unprime = |v: u32| v - 1;

    let reset = ev.reset_state();
    let mut reached = try_state_cube(b, ev, &reset)?;
    let mut iterations = 0;
    loop {
        iterations += 1;
        let step = b.try_and(reached, relation)?;
        let img_primed = b.try_exists(step, &quantified)?;
        let img = b.try_rename(img_primed, &unprime)?;
        let next = b.try_or(reached, img)?;
        if next == reached {
            return Ok(Reachability {
                states: reached,
                iterations,
            });
        }
        reached = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_netlist::{Module, ModuleBuilder};

    /// 2-bit saturating counter with enable: counts up to 3 and holds.
    fn saturating_counter() -> Module {
        let mut mb = ModuleBuilder::new("sat2");
        let en = mb.input("en");
        let q0 = mb.dff_uninit(false);
        let q1 = mb.dff_uninit(false);
        let at_max = mb.and2(q0, q1);
        let n_max = mb.not(at_max);
        let tick = mb.and2(en, n_max);
        let n0 = mb.xor2(q0, tick);
        let carry = mb.and2(q0, tick);
        let n1 = mb.xor2(q1, carry);
        mb.set_dff_input(q0, n0);
        mb.set_dff_input(q1, n1);
        mb.output("q0", q0);
        mb.output("q1", q1);
        mb.finish().unwrap()
    }

    #[test]
    fn full_counter_reaches_every_state() {
        let m = saturating_counter();
        let ev = SymbolicEvaluator::new(&m);
        let mut b = Bdd::new();
        let base = ev.eval(&mut b, &[]);
        let reach = reachable_states(&mut b, &ev, &base, BddRef::TRUE);
        assert_eq!(reach.states, BddRef::TRUE, "all four states are reachable");
        // 0→1→2→3 plus the converged iteration.
        assert_eq!(reach.iterations, 4);
        assert_eq!(b.sat_count(reach.states, &ev.varmap().current_vars()), 4.0);
    }

    #[test]
    fn dead_states_are_excluded() {
        // A one-hot ring 01 → 10 → 01; states 00 and 11 are unreachable.
        let mut mb = ModuleBuilder::new("ring");
        let q0 = mb.dff_uninit(true);
        let q1 = mb.dff_uninit(false);
        mb.set_dff_input(q0, q1);
        mb.set_dff_input(q1, q0);
        mb.output("q0", q0);
        let m = mb.finish().unwrap();
        let ev = SymbolicEvaluator::new(&m);
        let mut b = Bdd::new();
        let base = ev.eval(&mut b, &[]);
        let reach = reachable_states(&mut b, &ev, &base, BddRef::TRUE);
        let vars = ev.varmap().current_vars();
        assert_eq!(b.sat_count(reach.states, &vars), 2.0);
        // Membership checks via state cubes.
        for (regs, member) in [
            (vec![true, false], true),
            (vec![false, true], true),
            (vec![false, false], false),
            (vec![true, true], false),
        ] {
            let cube = state_cube(&mut b, &ev, &regs);
            let hit = b.and(cube, reach.states);
            assert_eq!(hit != BddRef::FALSE, member, "state {regs:?}");
        }
    }

    #[test]
    fn reset_state_is_always_reachable() {
        let m = saturating_counter();
        let ev = SymbolicEvaluator::new(&m);
        let mut b = Bdd::new();
        let base = ev.eval(&mut b, &[]);
        let reach = reachable_states(&mut b, &ev, &base, BddRef::TRUE);
        let reset = state_cube(&mut b, &ev, &ev.reset_state());
        assert_eq!(b.and(reset, reach.states), reset);
    }
}
