//! A small hash-consed ROBDD package.
//!
//! Reduced Ordered Binary Decision Diagrams give a *canonical* DAG
//! representation of Boolean functions: under a fixed variable order,
//! structurally equal functions are represented by pointer-equal nodes.
//! That canonicity is what turns the certification question "does any
//! reachable state and input assignment let this fault escape?" into a
//! constant-time emptiness test on the escape function's root.
//!
//! The package is deliberately minimal — exactly the surface the symbolic
//! netlist evaluator and the reachability fixpoint need:
//!
//! * a *unique table* hash-consing every `(var, lo, hi)` triple, so node
//!   identity is function identity,
//! * the Shannon-expansion `ite` operator with memoization, from which all
//!   binary connectives derive,
//! * existential quantification over a variable set (image computation),
//! * an order-preserving variable renaming (primed → unprimed after the
//!   image step),
//! * satisfying-assignment extraction (counterexample witnesses) and model
//!   counting (reachable-state reporting).
//!
//! Nodes are arena-allocated and never freed; the engine's workloads
//! (netlists with tens of symbolic variables) stay far below any size
//! where garbage collection would pay for itself.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Why a budgeted BDD operation stopped early.
///
/// Raised by the `try_*` operations of a [`Bdd`] whose node budget, step
/// limit or deadline (see [`Bdd::set_node_budget`], [`Bdd::set_step_limit`],
/// [`Bdd::set_deadline`]) was exhausted mid-operation. An unbudgeted
/// manager never raises it. The certifier maps every variant to
/// [`Verdict::Unknown`](crate::Verdict::Unknown) — a budget overflow is
/// *never* turned into a fabricated proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BddOverflow {
    /// The node arena reached the configured cap; the operation would have
    /// allocated past it.
    Nodes {
        /// The configured node budget.
        limit: usize,
    },
    /// The operation-step counter passed the configured cap.
    Steps {
        /// The configured step limit.
        limit: u64,
    },
    /// The wall-clock deadline expired mid-operation.
    Deadline,
    /// The installed cancellation probe (see [`Bdd::set_cancel_probe`])
    /// fired mid-operation.
    Cancelled,
}

impl fmt::Display for BddOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddOverflow::Nodes { limit } => {
                write!(f, "BDD node budget exhausted (limit {limit} nodes)")
            }
            BddOverflow::Steps { limit } => {
                write!(
                    f,
                    "BDD operation-step limit exhausted (limit {limit} steps)"
                )
            }
            BddOverflow::Deadline => write!(f, "BDD deadline expired"),
            BddOverflow::Cancelled => write!(f, "BDD operation cancelled"),
        }
    }
}

impl std::error::Error for BddOverflow {}

/// A handle to a BDD node — and, by canonicity, to a Boolean function.
///
/// Handles are only meaningful relative to the [`Bdd`] manager that
/// created them. Two handles from the same manager are equal **iff** the
/// functions they denote are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false function.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true function.
    pub const TRUE: BddRef = BddRef(1);

    /// Returns `true` for the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

/// Internal node: branch variable plus low/high children.
///
/// Terminals use `var == u32::MAX`, which compares greater than every real
/// variable — convenient for the top-variable computation in `ite`.
#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// The BDD manager: node arena, unique table, and operation caches.
///
/// Variables are plain `u32` indices; smaller indices sit closer to the
/// root. The variable order is fixed at creation time by whoever assigns
/// the indices (the symbolic evaluator derives it from the netlist's
/// levelization, see [`VarMap`](crate::VarMap)).
///
/// # Example
///
/// ```
/// use scfi_symbolic::{Bdd, BddRef};
///
/// let mut b = Bdd::new();
/// let x = b.var(0);
/// let y = b.var(1);
/// let f = b.and(x, y);
/// let g = b.not(f);
/// let (nx, ny) = (b.not(x), b.not(y));
/// let h = b.or(nx, ny); // De Morgan
/// assert_eq!(g, h); // canonicity: equal functions are pointer-equal
/// assert!(b.eval(f, &[true, true]));
/// assert_eq!(b.and(x, nx), BddRef::FALSE);
/// ```
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_memo: HashMap<(u32, u32, u32), u32>,
    /// Node-arena cap; allocations past it raise [`BddOverflow::Nodes`].
    max_nodes: Option<usize>,
    /// Operation-step cap (recursive `ite`/`exists`/`rename` invocations
    /// since the last [`Bdd::reset_steps`]).
    max_steps: Option<u64>,
    /// Wall-clock deadline, checked every 4096 steps.
    deadline: Option<Instant>,
    /// External cancellation probe, polled at the same cadence as the
    /// deadline; a `true` return raises [`BddOverflow::Cancelled`].
    cancel: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    steps: u64,
    /// Memoized-`ite` lookups that hit (cumulative; see
    /// [`Bdd::ite_cache_hits`]).
    ite_hits: u64,
    /// Memoized-`ite` lookups that missed and recursed.
    ite_misses: u64,
}

/// How many operation steps pass between wall-clock deadline checks and
/// cancellation-probe polls: `Instant::now` (or an atomic load through a
/// probe closure) is far too expensive per recursive `ite` call, and a few
/// thousand steps complete in microseconds, so the deadline overshoot and
/// cancellation latency are negligible.
const DEADLINE_CHECK_INTERVAL: u64 = 4096;

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// Creates a manager holding only the two terminals.
    pub fn new() -> Self {
        Bdd {
            nodes: vec![
                Node {
                    var: u32::MAX,
                    lo: 0,
                    hi: 0,
                },
                Node {
                    var: u32::MAX,
                    lo: 1,
                    hi: 1,
                },
            ],
            unique: HashMap::new(),
            ite_memo: HashMap::new(),
            max_nodes: None,
            max_steps: None,
            deadline: None,
            cancel: None,
            steps: 0,
            ite_hits: 0,
            ite_misses: 0,
        }
    }

    /// Total nodes allocated (including the two terminals) — a coarse
    /// memory/health metric for benches and reports.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Caps the node arena at `limit` nodes: any `try_*` operation that
    /// would allocate past it raises [`BddOverflow::Nodes`]. The budget is
    /// cumulative over the manager's lifetime (nodes are never freed).
    pub fn set_node_budget(&mut self, limit: usize) {
        self.max_nodes = Some(limit);
    }

    /// Caps the operation-step counter: once more than `limit` recursive
    /// operation steps have run since the last
    /// [`reset_steps`](Self::reset_steps), `try_*` operations raise
    /// [`BddOverflow::Steps`]. Reset the counter per unit of work to make
    /// the limit per-unit rather than cumulative.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.max_steps = Some(limit);
    }

    /// Sets an absolute wall-clock deadline, checked every few thousand
    /// operation steps; `try_*` operations past it raise
    /// [`BddOverflow::Deadline`].
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
    }

    /// Installs an external cancellation probe, polled every few thousand
    /// operation steps (the same cadence as the deadline check); once it
    /// returns `true`, `try_*` operations raise [`BddOverflow::Cancelled`].
    /// This is how a certify job's `DELETE` (or a CLI Ctrl-C handler)
    /// reaches into a long-running symbolic step: the probe is typically
    /// a closure over [`RunControl::is_cancelled`](scfi_faultsim::RunControl::is_cancelled).
    pub fn set_cancel_probe(&mut self, probe: Arc<dyn Fn() -> bool + Send + Sync>) {
        self.cancel = Some(probe);
    }

    /// Memoized-`ite` cache hits since construction (each avoided a full
    /// Shannon recursion). Together with
    /// [`ite_cache_misses`](Self::ite_cache_misses) this gives the cache
    /// hit rate the observability layer exports.
    pub fn ite_cache_hits(&self) -> u64 {
        self.ite_hits
    }

    /// Memoized-`ite` cache misses since construction (lookups that went
    /// on to recurse and inserted a fresh entry).
    pub fn ite_cache_misses(&self) -> u64 {
        self.ite_misses
    }

    /// Operation steps executed since construction or the last
    /// [`reset_steps`](Self::reset_steps).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Zeroes the operation-step counter (the deadline and node budget are
    /// unaffected). Called by the certifier before each site so the step
    /// limit bounds one site's work, not the whole report's.
    pub fn reset_steps(&mut self) {
        self.steps = 0;
    }

    /// Counts one operation step against the step limit and (periodically)
    /// the deadline.
    fn step(&mut self) -> Result<(), BddOverflow> {
        self.steps += 1;
        if let Some(limit) = self.max_steps {
            if self.steps > limit {
                return Err(BddOverflow::Steps { limit });
            }
        }
        if self.steps.is_multiple_of(DEADLINE_CHECK_INTERVAL) {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(BddOverflow::Deadline);
                }
            }
            if let Some(probe) = &self.cancel {
                if probe() {
                    return Err(BddOverflow::Cancelled);
                }
            }
        }
        Ok(())
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// The single-variable function `v`.
    ///
    /// # Panics
    ///
    /// Panics with the [`BddOverflow`] description if a configured budget
    /// is exhausted; use [`try_var`](Self::try_var) under budgets.
    pub fn var(&mut self, v: u32) -> BddRef {
        self.try_var(v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`var`](Self::var), surfacing budget exhaustion as [`BddOverflow`].
    pub fn try_var(&mut self, v: u32) -> Result<BddRef, BddOverflow> {
        Ok(BddRef(self.mk(v, 0, 1)?))
    }

    /// The negated single-variable function `!v`.
    ///
    /// # Panics
    ///
    /// Panics with the [`BddOverflow`] description if a configured budget
    /// is exhausted; use [`try_nvar`](Self::try_nvar) under budgets.
    pub fn nvar(&mut self, v: u32) -> BddRef {
        self.try_nvar(v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`nvar`](Self::nvar), surfacing budget exhaustion as
    /// [`BddOverflow`].
    pub fn try_nvar(&mut self, v: u32) -> Result<BddRef, BddOverflow> {
        Ok(BddRef(self.mk(v, 1, 0)?))
    }

    /// Hash-consed node constructor; collapses redundant tests. A lookup
    /// hit is always free; only a genuinely new node is charged against
    /// the node budget.
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, BddOverflow> {
        if lo == hi {
            return Ok(lo);
        }
        debug_assert!(
            var < self.nodes[lo as usize].var && var < self.nodes[hi as usize].var,
            "mk would violate the variable order"
        );
        if let Some(&n) = self.unique.get(&(var, lo, hi)) {
            return Ok(n);
        }
        if let Some(limit) = self.max_nodes {
            if self.nodes.len() >= limit {
                return Err(BddOverflow::Nodes { limit });
            }
        }
        let n = (self.nodes.len()) as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), n);
        Ok(n)
    }

    /// Cofactor of `f` with respect to `var` when `f`'s root tests `var`.
    fn cofactors(&self, f: u32, var: u32) -> (u32, u32) {
        let n = self.nodes[f as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: the function `if f then g else h`, computed by
    /// Shannon expansion on the topmost variable with memoization.
    ///
    /// # Panics
    ///
    /// Panics with the [`BddOverflow`] description if a configured budget
    /// is exhausted; use [`try_ite`](Self::try_ite) under budgets.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        self.try_ite(f, g, h).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ite`](Self::ite), surfacing budget exhaustion as [`BddOverflow`]
    /// instead of panicking. On an unbudgeted manager this never fails.
    /// A failed operation leaves the manager consistent (every node and
    /// memo entry it created is a valid, fully reduced function); the
    /// caller may keep using the manager or retry with a larger budget.
    pub fn try_ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, BddOverflow> {
        Ok(BddRef(self.ite_raw(f.0, g.0, h.0)?))
    }

    fn ite_raw(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddOverflow> {
        // Terminal short-circuits.
        if f == 1 {
            return Ok(g);
        }
        if f == 0 {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == 1 && h == 0 {
            return Ok(f);
        }
        if let Some(&r) = self.ite_memo.get(&(f, g, h)) {
            self.ite_hits += 1;
            return Ok(r);
        }
        self.ite_misses += 1;
        self.step()?;
        let top = self.nodes[f as usize]
            .var
            .min(self.nodes[g as usize].var)
            .min(self.nodes[h as usize].var);
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite_raw(f0, g0, h0)?;
        let hi = self.ite_raw(f1, g1, h1)?;
        let r = self.mk(top, lo, hi)?;
        self.ite_memo.insert((f, g, h), r);
        Ok(r)
    }

    /// Logical negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Fallible [`not`](Self::not).
    pub fn try_not(&mut self, f: BddRef) -> Result<BddRef, BddOverflow> {
        self.try_ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Fallible [`and`](Self::and).
    pub fn try_and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        self.try_ite(f, g, BddRef::FALSE)
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Fallible [`or`](Self::or).
    pub fn try_or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        self.try_ite(f, BddRef::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Fallible [`xor`](Self::xor).
    pub fn try_xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        let ng = self.try_not(g)?;
        self.try_ite(f, ng, g)
    }

    /// Equivalence (`!(f ^ g)`).
    pub fn xnor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Fallible [`xnor`](Self::xnor).
    pub fn try_xnor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        let ng = self.try_not(g)?;
        self.try_ite(f, g, ng)
    }

    /// Negated conjunction.
    pub fn nand(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, BddRef::TRUE)
    }

    /// Fallible [`nand`](Self::nand).
    pub fn try_nand(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        let ng = self.try_not(g)?;
        self.try_ite(f, ng, BddRef::TRUE)
    }

    /// Negated disjunction.
    pub fn nor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, BddRef::FALSE, ng)
    }

    /// Fallible [`nor`](Self::nor).
    pub fn try_nor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        let ng = self.try_not(g)?;
        self.try_ite(f, BddRef::FALSE, ng)
    }

    /// 2:1 multiplexer with the netlist's pin convention:
    /// `sel ? b : a`.
    pub fn mux(&mut self, sel: BddRef, a: BddRef, b: BddRef) -> BddRef {
        self.ite(sel, b, a)
    }

    /// Fallible [`mux`](Self::mux).
    pub fn try_mux(&mut self, sel: BddRef, a: BddRef, b: BddRef) -> Result<BddRef, BddOverflow> {
        self.try_ite(sel, b, a)
    }

    /// Evaluates `f` under a total assignment (`assignment[v]` is the value
    /// of variable `v`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than a variable tested by `f`.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut n = f.0;
        while n > 1 {
            let node = self.nodes[n as usize];
            n = if assignment[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
        n == 1
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// `vars` must be sorted ascending (asserted in debug builds); the
    /// per-call memo keys on the node alone, which is sound because the
    /// variable set is fixed for the whole call.
    ///
    /// # Panics
    ///
    /// Panics with the [`BddOverflow`] description if a configured budget
    /// is exhausted; use [`try_exists`](Self::try_exists) under budgets.
    pub fn exists(&mut self, f: BddRef, vars: &[u32]) -> BddRef {
        self.try_exists(f, vars).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`exists`](Self::exists), surfacing budget exhaustion as
    /// [`BddOverflow`].
    pub fn try_exists(&mut self, f: BddRef, vars: &[u32]) -> Result<BddRef, BddOverflow> {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        let mut memo = HashMap::new();
        let last = match vars.last() {
            Some(&v) => v,
            None => return Ok(f),
        };
        Ok(BddRef(self.exists_raw(f.0, vars, last, &mut memo)?))
    }

    fn exists_raw(
        &mut self,
        f: u32,
        vars: &[u32],
        last: u32,
        memo: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddOverflow> {
        if f <= 1 {
            return Ok(f);
        }
        let var = self.nodes[f as usize].var;
        if var > last {
            // Every quantified variable lies above this node.
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        self.step()?;
        let Node { lo, hi, .. } = self.nodes[f as usize];
        let lo_q = self.exists_raw(lo, vars, last, memo)?;
        let hi_q = self.exists_raw(hi, vars, last, memo)?;
        let r = if vars.binary_search(&var).is_ok() {
            self.ite_raw(lo_q, 1, hi_q)? // or
        } else {
            self.mk(var, lo_q, hi_q)?
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Renames every variable `v` tested by `f` to `map(v)`.
    ///
    /// The mapping must preserve the variable order on the variables `f`
    /// actually tests (strictly monotone along every path); this is what
    /// keeps the renamed DAG reduced and ordered without a reordering
    /// pass. The image step satisfies it by construction: primed
    /// variables sit directly below their unprimed partners, so the
    /// primed→unprimed shift is order-preserving. Violations are caught
    /// by the `mk` order assertion in debug builds.
    ///
    /// # Panics
    ///
    /// Panics with the [`BddOverflow`] description if a configured budget
    /// is exhausted; use [`try_rename`](Self::try_rename) under budgets.
    pub fn rename(&mut self, f: BddRef, map: &impl Fn(u32) -> u32) -> BddRef {
        self.try_rename(f, map).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`rename`](Self::rename), surfacing budget exhaustion as
    /// [`BddOverflow`].
    pub fn try_rename(
        &mut self,
        f: BddRef,
        map: &impl Fn(u32) -> u32,
    ) -> Result<BddRef, BddOverflow> {
        let mut memo = HashMap::new();
        Ok(BddRef(self.rename_raw(f.0, map, &mut memo)?))
    }

    fn rename_raw(
        &mut self,
        f: u32,
        map: &impl Fn(u32) -> u32,
        memo: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddOverflow> {
        if f <= 1 {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        self.step()?;
        let Node { var, lo, hi } = self.nodes[f as usize];
        let lo_r = self.rename_raw(lo, map, memo)?;
        let hi_r = self.rename_raw(hi, map, memo)?;
        let r = self.mk(map(var), lo_r, hi_r)?;
        memo.insert(f, r);
        Ok(r)
    }

    /// One satisfying assignment of `f` as `(variable, value)` pairs for
    /// the variables on the chosen path, or `None` if `f` is
    /// unsatisfiable. Variables absent from the result are don't-cares:
    /// any completion satisfies `f`.
    pub fn sat_one(&self, f: BddRef) -> Option<Vec<(u32, bool)>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut n = f.0;
        while n > 1 {
            let Node { var, lo, hi } = self.nodes[n as usize];
            if lo != 0 {
                path.push((var, false));
                n = lo;
            } else {
                path.push((var, true));
                n = hi;
            }
        }
        debug_assert_eq!(n, 1, "non-false BDDs always reach the true terminal");
        Some(path)
    }

    /// A *fewest-care* satisfying assignment of `f`: among all root→`TRUE`
    /// paths, one constraining the fewest variables (ties broken toward
    /// the low branch, so tied variables are pinned `false`). Same shape
    /// and `None` contract as [`sat_one`](Self::sat_one).
    ///
    /// Every variable absent from the result is a don't-care, and
    /// maximizing don't-cares minimizes what the witness *commits to* —
    /// downstream decoders default don't-cares to `false`, so a joint
    /// certification witness keeps every fault selector the escape does
    /// not actually need switched off, and a k-step witness pins only the
    /// state and input bits that matter.
    pub fn sat_one_minimal(&self, f: BddRef) -> Option<Vec<(u32, bool)>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut memo = HashMap::new();
        let mut path = Vec::new();
        let mut n = f.0;
        while n > 1 {
            let Node { var, lo, hi } = self.nodes[n as usize];
            let (cl, ch) = (self.min_care(lo, &mut memo), self.min_care(hi, &mut memo));
            if cl <= ch {
                path.push((var, false));
                n = lo;
            } else {
                path.push((var, true));
                n = hi;
            }
        }
        Some(path)
    }

    /// Fewest variables constrained on any path from `f` to `TRUE`
    /// (`u32::MAX` for the unsatisfiable terminal).
    fn min_care(&self, f: u32, memo: &mut HashMap<u32, u32>) -> u32 {
        if f == 0 {
            return u32::MAX;
        }
        if f == 1 {
            return 0;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let Node { lo, hi, .. } = self.nodes[f as usize];
        let lo_c = self.min_care(lo, memo);
        let hi_c = self.min_care(hi, memo);
        let c = lo_c.min(hi_c).saturating_add(1);
        memo.insert(f, c);
        c
    }

    /// Number of satisfying assignments of `f` over the variable universe
    /// `vars` (sorted ascending). Returned as `f64`: exact for the sizes
    /// the engine reports, and overflow-free for pathological ones.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `f` only tests variables from `vars`.
    pub fn sat_count(&self, f: BddRef, vars: &[u32]) -> f64 {
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be sorted");
        let mut memo = HashMap::new();
        // Level of a variable within `vars`; vars not in the universe are
        // rejected below.
        let level = |v: u32| vars.binary_search(&v);
        let total = vars.len();
        self.count_raw(f.0, 0, total, &level, &mut memo)
    }

    fn count_raw(
        &self,
        f: u32,
        from_level: usize,
        total: usize,
        level: &impl Fn(u32) -> Result<usize, usize>,
        memo: &mut HashMap<u32, f64>,
    ) -> f64 {
        if f == 0 {
            return 0.0;
        }
        if f == 1 {
            return 2f64.powi((total - from_level) as i32);
        }
        let var = self.nodes[f as usize].var;
        let l = level(var).unwrap_or_else(|_| {
            panic!("sat_count: function tests variable {var} outside the universe")
        });
        let below = if let Some(&c) = memo.get(&f) {
            c
        } else {
            let Node { lo, hi, .. } = self.nodes[f as usize];
            let c = self.count_raw(lo, l + 1, total, level, memo)
                + self.count_raw(hi, l + 1, total, level, memo);
            memo.insert(f, c);
            c
        };
        below * 2f64.powi((l - from_level) as i32)
    }

    /// Number of distinct nodes reachable from `f` (its DAG size).
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut b = Bdd::new();
        assert_eq!(b.constant(true), BddRef::TRUE);
        assert_eq!(b.constant(false), BddRef::FALSE);
        assert!(BddRef::TRUE.is_const());
        let x = b.var(3);
        assert!(!x.is_const());
        assert!(b.eval(x, &[false, false, false, true]));
        assert!(!b.eval(x, &[true, true, true, false]));
        let nx = b.nvar(3);
        assert_eq!(b.not(x), nx);
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let table = |b: &Bdd, f: BddRef| {
            (0..4)
                .map(|i| b.eval(f, &[i & 1 == 1, i & 2 == 2]))
                .collect::<Vec<_>>()
        };
        let and = b.and(x, y);
        assert_eq!(table(&b, and), [false, false, false, true]);
        let or = b.or(x, y);
        assert_eq!(table(&b, or), [false, true, true, true]);
        let xor = b.xor(x, y);
        assert_eq!(table(&b, xor), [false, true, true, false]);
        let xnor = b.xnor(x, y);
        assert_eq!(table(&b, xnor), [true, false, false, true]);
        let nand = b.nand(x, y);
        assert_eq!(table(&b, nand), [true, true, true, false]);
        let nor = b.nor(x, y);
        assert_eq!(table(&b, nor), [true, false, false, false]);
    }

    #[test]
    fn mux_follows_netlist_pin_convention() {
        let mut b = Bdd::new();
        let sel = b.var(0);
        let a = b.var(1);
        let c = b.var(2);
        let m = b.mux(sel, a, c);
        // sel=0 → a, sel=1 → c.
        assert!(b.eval(m, &[false, true, false]));
        assert!(!b.eval(m, &[false, false, true]));
        assert!(b.eval(m, &[true, false, true]));
        assert!(!b.eval(m, &[true, true, false]));
    }

    #[test]
    fn canonicity_collapses_equal_functions() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        // (x & y) | (x & z)  ==  x & (y | z)
        let xy = b.and(x, y);
        let xz = b.and(x, z);
        let lhs = b.or(xy, xz);
        let yz = b.or(y, z);
        let rhs = b.and(x, yz);
        assert_eq!(lhs, rhs);
        // Tautology and contradiction collapse to terminals.
        let nx = b.not(x);
        assert_eq!(b.or(x, nx), BddRef::TRUE);
        assert_eq!(b.and(x, nx), BddRef::FALSE);
    }

    #[test]
    fn exists_quantifies() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        // ∃x. x&y == y; ∃x,y. x&y == true.
        assert_eq!(b.exists(f, &[0]), y);
        assert_eq!(b.exists(f, &[0, 1]), BddRef::TRUE);
        assert_eq!(b.exists(f, &[]), f);
        let contradiction = {
            let nx = b.not(x);
            b.and(x, nx)
        };
        assert_eq!(b.exists(contradiction, &[0, 1]), BddRef::FALSE);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut b = Bdd::new();
        let x1 = b.var(1);
        let x3 = b.var(3);
        let f = b.xor(x1, x3);
        let g = b.rename(f, &|v| v - 1);
        let x0 = b.var(0);
        let x2 = b.var(2);
        assert_eq!(g, b.xor(x0, x2));
    }

    #[test]
    fn sat_one_returns_a_model() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let ny = b.nvar(1);
        let f = b.and(x, ny);
        let model = b.sat_one(f).expect("satisfiable");
        let mut assignment = vec![false; 2];
        for (v, val) in model {
            assignment[v as usize] = val;
        }
        assert!(b.eval(f, &assignment));
        let nx = b.not(x);
        let unsat = b.and(f, nx);
        assert_eq!(b.sat_one(unsat), None);
        assert_eq!(b.sat_one(BddRef::TRUE), Some(vec![]));
    }

    #[test]
    fn sat_one_minimal_constrains_the_fewest_variables() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        // (!x & !y & z) | x: plain sat_one walks the lo-first path and
        // pins all three variables; the minimal witness needs only
        // x = true.
        let f = {
            let nx = b.not(x);
            let ny = b.not(y);
            let cube = b.and(nx, ny);
            let cube = b.and(cube, z);
            b.or(cube, x)
        };
        assert_eq!(
            b.sat_one(f).expect("satisfiable"),
            vec![(0, false), (1, false), (2, true)]
        );
        let minimal = b.sat_one_minimal(f).expect("satisfiable");
        assert_eq!(minimal, vec![(0, true)]);
        // The minimal model still satisfies f under the default-false
        // completion of its don't-cares.
        let mut assignment = vec![false; 3];
        for &(v, val) in &minimal {
            assignment[v as usize] = val;
        }
        assert!(b.eval(f, &assignment));
        // Ties break toward the low branch: xor needs one care either
        // way, and the witness pins the tested variable false.
        let g = b.xor(x, y);
        let minimal = b.sat_one_minimal(g).expect("satisfiable");
        assert_eq!(minimal, vec![(0, false), (1, true)]);
        // Terminal contracts match sat_one.
        assert_eq!(b.sat_one_minimal(BddRef::FALSE), None);
        assert_eq!(b.sat_one_minimal(BddRef::TRUE), Some(vec![]));
    }

    #[test]
    fn sat_count_counts_models() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(2);
        let f = b.or(x, y); // 3 of 4 over {0, 2}; 6 of 8 over {0, 1, 2}
        assert_eq!(b.sat_count(f, &[0, 2]), 3.0);
        assert_eq!(b.sat_count(f, &[0, 1, 2]), 6.0);
        assert_eq!(b.sat_count(BddRef::TRUE, &[0, 1, 2]), 8.0);
        assert_eq!(b.sat_count(BddRef::FALSE, &[0, 1]), 0.0);
    }

    #[test]
    fn size_counts_reachable_nodes() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        assert_eq!(b.size(BddRef::TRUE), 2);
        assert_eq!(b.size(x), 3);
        let f = b.xor(x, y);
        assert_eq!(b.size(f), 5); // two terminals, one var-0 node, two var-1 nodes
        assert!(b.node_count() >= 5);
    }

    #[test]
    fn node_budget_stops_allocation_but_keeps_the_manager_usable() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let before = b.node_count();
        b.set_node_budget(before); // no headroom at all
                                   // Hash-consed hits stay free under a zero-headroom budget…
        assert_eq!(b.try_var(0), Ok(x));
        // …while a genuinely new node overflows with the configured limit.
        let err = b.try_and(x, y).unwrap_err();
        assert_eq!(err, BddOverflow::Nodes { limit: before });
        assert_eq!(b.node_count(), before, "failed op must not leak nodes");
        // Raising the budget un-wedges the same operation.
        b.set_node_budget(before + 16);
        let f = b.try_and(x, y).expect("fits in the raised budget");
        assert!(b.eval(f, &[true, true]));
    }

    #[test]
    fn step_limit_bounds_one_unit_of_work() {
        let mut b = Bdd::new();
        b.set_step_limit(2);
        // A wide xor chain needs far more than two Shannon expansions.
        let mut acc = b.try_var(0).unwrap();
        let mut overflowed = false;
        for v in 1..12 {
            let x = b.try_var(v).unwrap();
            match b.try_xor(acc, x) {
                Ok(r) => acc = r,
                Err(e) => {
                    assert_eq!(e, BddOverflow::Steps { limit: 2 });
                    overflowed = true;
                    break;
                }
            }
        }
        assert!(overflowed, "2 steps cannot build a 12-variable xor");
        // reset_steps makes the limit per-unit: small ops fit again.
        b.reset_steps();
        assert!(b.steps() == 0);
        let x = b.try_var(20).unwrap();
        let y = b.try_var(21).unwrap();
        b.try_and(x, y).expect("fresh budget for a fresh site");
    }

    #[test]
    fn expired_deadline_fails_after_the_check_interval() {
        let mut b = Bdd::new();
        b.set_deadline(std::time::Instant::now());
        // The deadline is only polled every DEADLINE_CHECK_INTERVAL steps,
        // so grind out enough work to guarantee several polls.
        let mut acc = b.try_var(0).unwrap();
        let mut result = Ok(());
        for v in 1..512 {
            let x = b.try_var(v).unwrap();
            match b.try_xor(acc, x) {
                Ok(r) => acc = r,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert_eq!(result, Err(BddOverflow::Deadline));
    }

    #[test]
    fn overflow_messages_name_the_budget() {
        assert_eq!(
            BddOverflow::Nodes { limit: 7 }.to_string(),
            "BDD node budget exhausted (limit 7 nodes)"
        );
        assert_eq!(
            BddOverflow::Steps { limit: 9 }.to_string(),
            "BDD operation-step limit exhausted (limit 9 steps)"
        );
        assert_eq!(BddOverflow::Deadline.to_string(), "BDD deadline expired");
        assert_eq!(
            BddOverflow::Cancelled.to_string(),
            "BDD operation cancelled"
        );
    }

    #[test]
    fn cancel_probe_fails_after_the_check_interval() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = std::sync::Arc::new(AtomicBool::new(true));
        let mut b = Bdd::new();
        let probe = std::sync::Arc::clone(&flag);
        b.set_cancel_probe(std::sync::Arc::new(move || probe.load(Ordering::Relaxed)));
        // The probe is only polled every DEADLINE_CHECK_INTERVAL steps, so
        // grind out enough work to guarantee several polls.
        let mut acc = b.try_var(0).unwrap();
        let mut result = Ok(());
        for v in 1..512 {
            let x = b.try_var(v).unwrap();
            match b.try_xor(acc, x) {
                Ok(r) => acc = r,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert_eq!(result, Err(BddOverflow::Cancelled));
        // A cleared probe lets the same manager make progress again.
        flag.store(false, Ordering::Relaxed);
        let x = b.try_var(600).unwrap();
        assert!(b.try_xor(acc, x).is_ok());
    }

    #[test]
    fn ite_cache_counters_track_hits_and_misses() {
        let mut b = Bdd::new();
        assert_eq!((b.ite_cache_hits(), b.ite_cache_misses()), (0, 0));
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        let misses = b.ite_cache_misses();
        assert!(misses > 0, "a fresh conjunction must recurse");
        assert_eq!(b.ite_cache_hits(), 0);
        // The identical ite is answered from the memo table.
        let g = b.and(x, y);
        assert_eq!(f, g);
        assert_eq!(b.ite_cache_hits(), 1);
        assert_eq!(b.ite_cache_misses(), misses);
    }

    #[test]
    fn unbudgeted_managers_never_overflow() {
        let mut b = Bdd::new();
        let mut acc = BddRef::FALSE;
        for v in 0..32 {
            let x = b.try_var(v).unwrap();
            acc = b.try_xor(acc, x).expect("no budget, no overflow");
        }
        let vars: Vec<u32> = (0..32).collect();
        assert!(b.try_exists(acc, &vars).is_ok());
        assert!(b.try_rename(acc, &|v| v).is_ok());
    }

    #[test]
    fn ite_is_shannon_complete_on_three_vars() {
        // Exhaustive: ite over every triple of 1-var functions matches the
        // Boolean definition on every assignment.
        let mut b = Bdd::new();
        let funcs: Vec<BddRef> = (0..3)
            .flat_map(|v| {
                let p = b.var(v);
                let n = b.nvar(v);
                [p, n]
            })
            .chain([BddRef::FALSE, BddRef::TRUE])
            .collect();
        for &f in &funcs {
            for &g in &funcs {
                for &h in &funcs {
                    let r = b.ite(f, g, h);
                    for bits in 0..8u32 {
                        let a: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
                        let expect = if b.eval(f, &a) {
                            b.eval(g, &a)
                        } else {
                            b.eval(h, &a)
                        };
                        assert_eq!(b.eval(r, &a), expect);
                    }
                }
            }
        }
    }
}
