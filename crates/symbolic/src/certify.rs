//! Formal fault certification: per-site *proofs* of the detection
//! guarantee the simulation campaigns can only sample.
//!
//! For every fault site the engine builds the BDD of
//!
//! ```text
//! escape(s, x) = Reach(s) ∧ Assume(x) ∧ diverge(s, x) ∧ undetected(s, x) ∧ ¬alerted(s, x)
//! ```
//!
//! where `diverge` compares the faulty next-state functions against the
//! fault-free ones, `undetected` is the configuration's decode-level
//! escape condition (landing on a valid codeword for SCFI, agreeing
//! replica banks for redundancy, anything at all for the unprotected
//! lowering), `alerted` collects the configuration's detection output
//! ports, and `Assume` is the configuration's input-interface assumption
//! ([`CertifyModel::input_assumption`]). An empty `escape` BDD is a
//! *proof*: over **all** reachable states and **all** admissible input
//! words, no single injection of that fault silently hijacks the next
//! transition — the paper's §3/§5 guarantee, closed over the whole input
//! space instead of the campaign's per-edge schedules. A non-empty BDD
//! yields a concrete witness assignment, which is replayed through the
//! scalar [`Simulator`] to confirm the hijack outside the symbolic
//! engine.
//!
//! The verdict vocabulary mirrors the campaign outcome classes
//! ([`Outcome`](scfi_faultsim::Outcome)): `ProvenMasked` (the fault is
//! never observable), `ProvenDetected` (observable somewhere, caught
//! everywhere), `Counterexample` (an escaping assignment exists).

use std::fmt;

use scfi_core::{HardenedFsm, RedundantFsm, StateDecode};
use scfi_fsm::LoweredFsm;
use scfi_netlist::{Module, Simulator};

use scfi_faultsim::{Fault, FaultEffect, FaultSite};

use crate::bdd::{Bdd, BddRef};
use crate::eval::{SymStep, SymbolicEvaluator};
use crate::reach::{reachable_states, Reachability};

/// A protected (or deliberately unprotected) netlist the certifier can
/// reason about: the module plus the configuration-specific detection
/// semantics, in both symbolic and concrete form.
///
/// The two forms must agree — [`Certifier`] replays every symbolic
/// counterexample through the concrete side, and the test suites pin the
/// pair against each other on random words.
pub trait CertifyModel {
    /// The netlist under certification.
    fn module(&self) -> &Module;

    /// Symbolic decode-level escape condition: the BDD of "the faulty
    /// next-state word `next` would *not* be flagged by decoding" —
    /// landing on a valid operational codeword for SCFI, replica banks
    /// agreeing for redundancy, `TRUE` for the unprotected lowering
    /// (which has no decode-level detection at all).
    fn undetected_next(&self, b: &mut Bdd, next: &[BddRef]) -> BddRef;

    /// The input-space assumption the certification quantifies under,
    /// over the module's input-port functions `inputs`.
    ///
    /// The paper's interface assumption (§5) is that the driving modules
    /// deliver the encoded control word with its full Hamming distance —
    /// a non-codeword `xe` is itself a fault event, not a legal input, so
    /// admitting it would certify a *two*-fault attacker against a
    /// single-fault claim. The protected configurations therefore
    /// restrict `xe` to valid condition codewords; the unprotected
    /// lowering takes raw control signals, where every word is legal
    /// (default: no restriction).
    fn input_assumption(&self, b: &mut Bdd, inputs: &[BddRef]) -> BddRef {
        let _ = inputs;
        b.constant(true)
    }

    /// Concrete counterpart of [`CertifyModel::undetected_next`].
    fn undetected_next_concrete(&self, next: &[bool]) -> bool;

    /// Output-port indices whose assertion during the faulty cycle counts
    /// as detection (SCFI: `alert` and `in_error`; redundancy: the
    /// mismatch `alert`; unprotected: none).
    fn detection_ports(&self) -> Vec<usize>;

    /// Human-readable configuration tag for reports (e.g. `"SCFI"`).
    fn config_name(&self) -> &'static str;
}

/// Builds the disjunction of exact-word matches `⋁_w (next == w)`.
fn word_match_any(b: &mut Bdd, next: &[BddRef], words: &[Vec<bool>]) -> BddRef {
    let mut any = BddRef::FALSE;
    for word in words {
        debug_assert_eq!(word.len(), next.len(), "codeword width mismatch");
        let mut cube = BddRef::TRUE;
        for (&bit, &value) in next.iter().zip(word) {
            let lit = if value { bit } else { b.not(bit) };
            cube = b.and(cube, lit);
        }
        any = b.or(any, cube);
    }
    any
}

impl CertifyModel for HardenedFsm {
    fn module(&self) -> &Module {
        HardenedFsm::module(self)
    }

    fn undetected_next(&self, b: &mut Bdd, next: &[BddRef]) -> BddRef {
        // Escaping means landing on some *operational* codeword; the
        // all-zero ERROR word and every non-codeword are caught by the
        // decode (`StateDecode::Error` / `Invalid`).
        let words: Vec<Vec<bool>> = (0..self.fsm().state_count())
            .map(|s| self.encode_state(scfi_fsm::StateId(s)).iter().collect())
            .collect();
        word_match_any(b, next, &words)
    }

    fn undetected_next_concrete(&self, next: &[bool]) -> bool {
        matches!(self.decode_registers(next), StateDecode::State(_))
    }

    fn input_assumption(&self, b: &mut Bdd, inputs: &[BddRef]) -> BddRef {
        let words: Vec<Vec<bool>> = (0..self.cond_code().len())
            .map(|c| self.cond_code().word(c).iter().collect())
            .collect();
        word_match_any(b, inputs, &words)
    }

    fn detection_ports(&self) -> Vec<usize> {
        let n = HardenedFsm::module(self).outputs().len();
        vec![n - 2, n - 1] // `alert`, `in_error`
    }

    fn config_name(&self) -> &'static str {
        "scfi"
    }
}

impl CertifyModel for RedundantFsm {
    fn module(&self) -> &Module {
        RedundantFsm::module(self)
    }

    fn undetected_next(&self, b: &mut Bdd, next: &[BddRef]) -> BddRef {
        // Escaping the redundancy scheme means every replica bank agrees
        // with bank 0 after the step — the mismatch detector (evaluated
        // on the post-step banks, exactly like the campaign classifier)
        // stays silent on any agreed word, in range or not.
        let sb = self.state_bits();
        let mut agree = BddRef::TRUE;
        for bank in next.chunks(sb).skip(1) {
            for (&a, &c) in next[..sb].iter().zip(bank) {
                let eq = b.xnor(a, c);
                agree = b.and(agree, eq);
            }
        }
        agree
    }

    fn undetected_next_concrete(&self, next: &[bool]) -> bool {
        let sb = self.state_bits();
        next.chunks(sb).skip(1).all(|bank| bank == &next[..sb])
    }

    fn input_assumption(&self, b: &mut Bdd, inputs: &[BddRef]) -> BddRef {
        // Same protected control interface as SCFI (§6.1): the driving
        // domain delivers valid HD-N condition codewords.
        let words: Vec<Vec<bool>> = (0..self.cond_code().len())
            .map(|c| self.cond_code().word(c).iter().collect())
            .collect();
        word_match_any(b, inputs, &words)
    }

    fn detection_ports(&self) -> Vec<usize> {
        vec![RedundantFsm::module(self).outputs().len() - 1] // `alert`
    }

    fn config_name(&self) -> &'static str {
        "redundancy"
    }
}

impl CertifyModel for LoweredFsm {
    fn module(&self) -> &Module {
        LoweredFsm::module(self)
    }

    fn undetected_next(&self, b: &mut Bdd, _next: &[BddRef]) -> BddRef {
        b.constant(true) // no detection mechanism exists
    }

    fn undetected_next_concrete(&self, _next: &[bool]) -> bool {
        true
    }

    fn detection_ports(&self) -> Vec<usize> {
        Vec::new()
    }

    fn config_name(&self) -> &'static str {
        "unprotected"
    }
}

/// A concrete escaping assignment extracted from a non-empty escape BDD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Register preload (fault-free; register flips are applied on top by
    /// the replay, exactly like the campaign executors).
    pub regs: Vec<bool>,
    /// Input-port assignment for the attacked cycle.
    pub inputs: Vec<bool>,
    /// `true` once the scalar-simulator replay confirmed the hijack.
    pub confirmed: bool,
}

/// The certified verdict for one fault site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Proof: on every reachable state and input assignment the fault
    /// changes neither the committed next state nor any detection line —
    /// it can never be observed, let alone exploited.
    ProvenMasked,
    /// Proof: the fault is observable somewhere, but every reachable
    /// assignment on which the faulty run diverges is caught (invalid /
    /// error landing or an asserted detection line). No silent hijack
    /// exists.
    ProvenDetected,
    /// Refutation: the witness assignment drives the faulty run into a
    /// valid-but-wrong next state with every detection line low.
    Counterexample(Witness),
}

impl Verdict {
    /// `true` for either proof variant.
    pub fn is_proven(&self) -> bool {
        !matches!(self, Verdict::Counterexample(_))
    }
}

/// One certified fault site.
#[derive(Clone, Debug)]
pub struct SiteReport {
    /// The certified fault.
    pub fault: Fault,
    /// Its verdict.
    pub verdict: Verdict,
}

/// The full certification result for one module and fault list.
#[derive(Clone, Debug)]
pub struct CertificationReport {
    /// Configuration tag of the certified model.
    pub config: &'static str,
    /// Module name.
    pub module: String,
    /// Per-site verdicts, in fault-list order.
    pub sites: Vec<SiteReport>,
    /// Exact number of reachable register states.
    pub reachable_states: u64,
    /// Register (state-vector) width.
    pub state_bits: usize,
    /// Input-port count — the proof quantifies over all `2^input_bits`
    /// words.
    pub input_bits: usize,
}

impl CertificationReport {
    /// Sites proven detected.
    pub fn proven_detected(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::ProvenDetected))
            .count()
    }

    /// Sites proven masked (never observable).
    pub fn proven_masked(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::ProvenMasked))
            .count()
    }

    /// Sites with a counterexample.
    pub fn counterexamples(&self) -> usize {
        self.sites.len() - self.proven_detected() - self.proven_masked()
    }

    /// `true` when every site is proven (no counterexamples) — the
    /// paper's detection guarantee holds for the whole fault list.
    pub fn all_proven(&self) -> bool {
        self.sites.iter().all(|s| s.verdict.is_proven())
    }

    /// Iterates the counterexample sites.
    pub fn counterexample_sites(&self) -> impl Iterator<Item = (&Fault, &Witness)> {
        self.sites.iter().filter_map(|s| match &s.verdict {
            Verdict::Counterexample(w) => Some((&s.fault, w)),
            _ => None,
        })
    }
}

impl fmt::Display for CertificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "certified {} ({}): {} fault sites over {} reachable states x 2^{} input words",
            self.module,
            self.config,
            self.sites.len(),
            self.reachable_states,
            self.input_bits
        )?;
        write!(
            f,
            "  proven detected: {}, proven masked: {}, counterexamples: {}",
            self.proven_detected(),
            self.proven_masked(),
            self.counterexamples()
        )
    }
}

/// The certification engine: owns the BDD manager, the symbolic
/// evaluator, the fault-free base step and the reachable-state set, and
/// certifies fault sites against them.
///
/// # Example
///
/// ```
/// use scfi_core::{harden, ScfiConfig};
/// use scfi_faultsim::{enumerate_faults, CampaignConfig};
/// use scfi_fsm::parse_fsm;
/// use scfi_symbolic::Certifier;
///
/// let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
/// let h = harden(&fsm, &ScfiConfig::new(3))?;
/// let faults = enumerate_faults(
///     h.module(),
///     &CampaignConfig::new().effects(vec![]).with_register_flips(),
/// );
/// let mut certifier = Certifier::new(&h);
/// let report = certifier.certify_all(&faults);
/// // The paper's guarantee, *proved*: no single register-bit flip can
/// // hijack control flow from any reachable state under any input word.
/// assert!(report.all_proven());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Certifier<'m, M: CertifyModel> {
    model: &'m M,
    evaluator: SymbolicEvaluator<'m>,
    bdd: Bdd,
    base: SymStep,
    reach: Reachability,
    /// The model's input-space assumption over the input variables.
    assumption: BddRef,
    detection_ports: Vec<usize>,
}

impl<'m, M: CertifyModel> Certifier<'m, M> {
    /// Builds the fault-free symbolic step, the input-space assumption
    /// and the reachability fixpoint for `model`'s module.
    pub fn new(model: &'m M) -> Self {
        let evaluator = SymbolicEvaluator::new(model.module());
        let mut bdd = Bdd::new();
        let base = evaluator.eval(&mut bdd, &[]);
        let input_vars: Vec<BddRef> = (0..model.module().inputs().len())
            .map(|i| bdd.var(evaluator.varmap().input(i)))
            .collect();
        let assumption = model.input_assumption(&mut bdd, &input_vars);
        let reach = reachable_states(&mut bdd, &evaluator, &base, assumption);
        let detection_ports = model.detection_ports();
        Certifier {
            model,
            evaluator,
            bdd,
            base,
            reach,
            assumption,
            detection_ports,
        }
    }

    /// Exact count of reachable register states.
    pub fn reachable_state_count(&self) -> u64 {
        self.bdd
            .sat_count(self.reach.states, &self.evaluator.varmap().current_vars()) as u64
    }

    /// The reachability fixpoint (for diagnostics and tests).
    pub fn reachability(&self) -> Reachability {
        self.reach
    }

    /// Membership query: is the concrete register state `regs` in the
    /// reachable set?
    ///
    /// # Panics
    ///
    /// Panics on register-count mismatch.
    pub fn state_is_reachable(&self, regs: &[bool]) -> bool {
        let vm = self.evaluator.varmap();
        assert_eq!(
            regs.len(),
            self.model.module().registers().len(),
            "register count mismatch"
        );
        let mut assignment = vec![false; vm.var_count() as usize];
        for (i, &v) in regs.iter().enumerate() {
            assignment[vm.reg_current(i) as usize] = v;
        }
        self.bdd.eval(self.reach.states, &assignment)
    }

    /// The symbolic evaluator (for diagnostics and tests).
    pub fn evaluator(&self) -> &SymbolicEvaluator<'m> {
        &self.evaluator
    }

    /// Certifies one fault site.
    pub fn certify(&mut self, fault: Fault) -> Verdict {
        let faulty = self
            .evaluator
            .eval_fault_from(&mut self.bdd, &self.base, fault);
        // Disjunction of the detection lines in a step (BddRefs are Copy,
        // so collecting them first keeps the borrows disjoint).
        let or_ports = |b: &mut Bdd, step: &SymStep, ports: &[usize]| {
            let mut any = BddRef::FALSE;
            for &p in ports {
                any = b.or(any, step.outputs[p]);
            }
            any
        };
        let ports = std::mem::take(&mut self.detection_ports);
        let b = &mut self.bdd;

        // diverge: the committed next state differs somewhere.
        let mut diverge = BddRef::FALSE;
        for (&free, &bad) in self.base.next_regs.iter().zip(&faulty.next_regs) {
            let d = b.xor(free, bad);
            diverge = b.or(diverge, d);
        }

        let undetected = self.model.undetected_next(b, &faulty.next_regs);
        let alerted = or_ports(b, &faulty, &ports);
        let quiet = b.not(alerted);
        let escape = {
            let e = b.and(diverge, undetected);
            let e = b.and(e, quiet);
            let e = b.and(e, self.assumption);
            b.and(e, self.reach.states)
        };

        let verdict = if escape != BddRef::FALSE {
            let assignment = b.sat_one(escape).expect("non-false BDD has a model");
            let (regs, inputs) = self.evaluator.varmap().decode_assignment(&assignment);
            self.detection_ports = ports;
            let confirmed = self.replay(fault, &regs, &inputs);
            return Verdict::Counterexample(Witness {
                regs,
                inputs,
                confirmed,
            });
        } else {
            // No escape: distinguish "never observable" from "caught".
            // The observability test uses the campaign's observables —
            // the committed state and the detection lines, not the Moore
            // outputs (a Moore-only glitch is Masked in §6.4 terms too).
            let base_alert = or_ports(b, &self.base, &ports);
            let faulty_alert = or_ports(b, &faulty, &ports);
            let alert_diff = b.xor(base_alert, faulty_alert);
            let observable = b.or(diverge, alert_diff);
            let effect = b.and(observable, self.reach.states);
            let effect = b.and(effect, self.assumption);
            if effect == BddRef::FALSE {
                Verdict::ProvenMasked
            } else {
                Verdict::ProvenDetected
            }
        };
        self.detection_ports = ports;
        verdict
    }

    /// Certifies every fault in `faults` and assembles the report.
    pub fn certify_all(&mut self, faults: &[Fault]) -> CertificationReport {
        let sites = faults
            .iter()
            .map(|&fault| SiteReport {
                fault,
                verdict: self.certify(fault),
            })
            .collect();
        CertificationReport {
            config: self.model.config_name(),
            module: self.model.module().name().to_string(),
            sites,
            reachable_states: self.reachable_state_count(),
            state_bits: self.model.module().registers().len(),
            input_bits: self.model.module().inputs().len(),
        }
    }

    /// Replays a witness through the scalar simulator and checks the
    /// hijack concretely: the faulty run must land on an undetected word
    /// that differs from the fault-free run, with every detection line
    /// low.
    fn replay(&self, fault: Fault, regs: &[bool], inputs: &[bool]) -> bool {
        let module = self.model.module();
        let mut sim = Simulator::new(module);

        sim.reset_to(regs);
        let free_out = sim.step(inputs);
        let free_next = sim.register_values().to_vec();
        debug_assert_eq!(free_out.len(), module.outputs().len());

        sim.clear_faults();
        sim.reset_to(regs);
        // Witness replay arms through the campaign layer's own `arm`, so
        // the two oracles can never drift on injection semantics.
        scfi_faultsim::arm(&mut sim, fault);
        let bad_out = sim.step(inputs);
        let bad_next = sim.register_values().to_vec();

        let diverged = bad_next != free_next;
        let undetected = self.model.undetected_next_concrete(&bad_next);
        let alerted = self.detection_ports.iter().any(|&p| bad_out[p]);
        diverged && undetected && !alerted
    }
}

/// One-line human description of a fault site (for per-site CLI output).
pub fn describe_fault(module: &Module, fault: Fault) -> String {
    let effect = match fault.effect {
        FaultEffect::Flip => "flip",
        FaultEffect::Stuck0 => "stuck-at-0",
        FaultEffect::Stuck1 => "stuck-at-1",
    };
    match fault.site {
        FaultSite::CellOutput(c) => {
            format!(
                "{effect} on output of c{} ({})",
                c.0,
                module.cell(c).kind.mnemonic()
            )
        }
        FaultSite::Pin(c, p) => format!(
            "{effect} on pin {p} of c{} ({})",
            c.0,
            module.cell(c).kind.mnemonic()
        ),
        FaultSite::Register(c) => {
            let pos = module.register_position(c).unwrap_or(usize::MAX);
            format!("stored-bit flip on register {pos} (c{})", c.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_core::{harden, redundancy, ScfiConfig};
    use scfi_faultsim::{enumerate_faults, CampaignConfig};
    use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};

    fn fsm() -> Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    fn register_fault_config(module: &Module) -> CampaignConfig {
        CampaignConfig::new().register_region(module)
    }

    #[test]
    fn scfi_register_faults_are_proven_detected() {
        for n in [2, 3] {
            let h = harden(&fsm(), &ScfiConfig::new(n)).unwrap();
            let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
            assert!(!faults.is_empty());
            let mut certifier = Certifier::new(&h);
            let report = certifier.certify_all(&faults);
            assert!(report.all_proven(), "N={n}: {report}");
            assert_eq!(report.counterexamples(), 0);
            // A register fault is always observable somewhere reachable.
            assert_eq!(report.proven_detected(), faults.len(), "N={n}: {report}");
            // Reachable states: the three operational codewords + ERROR.
            assert_eq!(report.reachable_states, 4, "N={n}");
        }
    }

    #[test]
    fn redundancy_register_faults_are_proven_detected() {
        let r = redundancy(&fsm(), 2).unwrap();
        let faults = enumerate_faults(r.module(), &register_fault_config(r.module()));
        let mut certifier = Certifier::new(&r);
        let report = certifier.certify_all(&faults);
        assert!(report.all_proven(), "{report}");
    }

    #[test]
    fn unprotected_register_faults_yield_confirmed_counterexamples() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let faults = enumerate_faults(lowered.module(), &register_fault_config(lowered.module()));
        let mut certifier = Certifier::new(&lowered);
        let report = certifier.certify_all(&faults);
        assert!(
            report.counterexamples() > 0,
            "an unprotected FSM must be refutable: {report}"
        );
        for (fault, witness) in report.counterexample_sites() {
            assert!(
                witness.confirmed,
                "witness for {fault:?} did not replay to a concrete hijack"
            );
        }
    }

    #[test]
    fn scfi_reachable_set_is_codewords_plus_error() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let certifier = Certifier::new(&h);
        // Three operational codewords plus the all-zero ERROR word.
        assert_eq!(certifier.reachable_state_count(), 4);
        assert!(certifier.reachability().iterations >= 2);
        assert_eq!(certifier.evaluator().module().name(), h.module().name());
    }

    #[test]
    fn masked_verdicts_exist_for_redundant_logic() {
        // A fault on a net whose value never reaches registers or
        // detection ports must certify as ProvenMasked. Build a module
        // with a dangling-but-driven Moore-style output cone.
        use scfi_netlist::ModuleBuilder;
        let mut mb = ModuleBuilder::new("deadend");
        let a = mb.input("a");
        let q = mb.dff_uninit(false);
        let toggle = mb.xor2(q, a); // next state depends on the register
        mb.set_dff_input(q, toggle);
        let moore = mb.and2(q, a); // feeds only an output port
        mb.output("q", q);
        mb.output("moore", moore);
        let m = mb.finish().unwrap();
        // Certify under the unprotected semantics (no detection ports):
        // faults on the Moore cone never touch the committed state.
        struct Raw<'a>(&'a Module);
        impl CertifyModel for Raw<'_> {
            fn module(&self) -> &Module {
                self.0
            }
            fn undetected_next(&self, b: &mut Bdd, _next: &[BddRef]) -> BddRef {
                b.constant(true)
            }
            fn undetected_next_concrete(&self, _next: &[bool]) -> bool {
                true
            }
            fn detection_ports(&self) -> Vec<usize> {
                Vec::new()
            }
            fn config_name(&self) -> &'static str {
                "raw"
            }
        }
        let model = Raw(&m);
        let mut certifier = Certifier::new(&model);
        let moore_fault = Fault {
            site: FaultSite::CellOutput(moore.cell()),
            effect: FaultEffect::Flip,
        };
        assert_eq!(certifier.certify(moore_fault), Verdict::ProvenMasked);
        // Whereas a register-bit flip diverges (and, with no detection
        // mechanism, is a counterexample).
        let reg_fault = Fault {
            site: FaultSite::Register(q.cell()),
            effect: FaultEffect::Flip,
        };
        match certifier.certify(reg_fault) {
            Verdict::Counterexample(w) => assert!(w.confirmed),
            other => panic!("register flip must escape the raw model, got {other:?}"),
        }
    }

    #[test]
    fn report_display_and_counters() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
        let mut certifier = Certifier::new(&h);
        let report = certifier.certify_all(&faults);
        let text = report.to_string();
        assert!(text.contains("certified"), "{text}");
        assert!(text.contains("reachable states"), "{text}");
        assert!(text.contains("counterexamples: 0"), "{text}");
        assert_eq!(
            report.sites.len(),
            report.proven_detected() + report.proven_masked() + report.counterexamples()
        );
    }

    #[test]
    fn describe_fault_names_sites() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let m = h.module();
        let r = m.registers()[0];
        let text = describe_fault(
            m,
            Fault {
                site: FaultSite::Register(r),
                effect: FaultEffect::Flip,
            },
        );
        assert!(text.contains("register 0"), "{text}");
        let text = describe_fault(
            m,
            Fault {
                site: FaultSite::Pin(m.topo_order()[0], 1),
                effect: FaultEffect::Stuck1,
            },
        );
        assert!(text.contains("pin 1"), "{text}");
        assert!(text.contains("stuck-at-1"), "{text}");
    }
}
