//! Formal fault certification: per-site *proofs* of the detection
//! guarantee the simulation campaigns can only sample.
//!
//! For every fault site the engine builds the BDD of
//!
//! ```text
//! escape(s, x) = Reach(s) ∧ Assume(x) ∧ diverge(s, x) ∧ undetected(s, x) ∧ ¬alerted(s, x)
//! ```
//!
//! where `diverge` compares the faulty next-state functions against the
//! fault-free ones, `undetected` is the configuration's decode-level
//! escape condition (landing on a valid codeword for SCFI, agreeing
//! replica banks for redundancy, anything at all for the unprotected
//! lowering), `alerted` collects the configuration's detection output
//! ports, and `Assume` is the configuration's input-interface assumption
//! ([`CertifyModel::input_assumption`]). An empty `escape` BDD is a
//! *proof*: over **all** reachable states and **all** admissible input
//! words, no single injection of that fault silently hijacks the next
//! transition — the paper's §3/§5 guarantee, closed over the whole input
//! space instead of the campaign's per-edge schedules. A non-empty BDD
//! yields a concrete witness assignment, which is replayed through the
//! scalar [`Simulator`] to confirm the hijack outside the symbolic
//! engine.
//!
//! The verdict vocabulary mirrors the campaign outcome classes
//! ([`Outcome`](scfi_faultsim::Outcome)): `ProvenMasked` (the fault is
//! never observable), `ProvenDetected` (observable somewhere, caught
//! everywhere), `Counterexample` (an escaping assignment exists) — plus
//! `Unknown`, the graceful-degradation verdict of a budgeted certifier
//! ([`CertifyBudget`]) whose BDD budget ran out mid-site. An `Unknown`
//! site carries the overflow reason and is *never* counted as proven;
//! callers fall back to exhaustive campaign sampling for those sites.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use scfi_core::{HardenedFsm, RedundantFsm, StateDecode};
use scfi_fsm::LoweredFsm;
use scfi_netlist::{Module, Simulator};
use scfi_telemetry::Telemetry;

use scfi_faultsim::{Fault, FaultEffect, FaultSite, RunControl};

use crate::bdd::{Bdd, BddOverflow, BddRef};
use crate::eval::{SymStep, SymbolicEvaluator};
use crate::reach::{try_reachable_states, Reachability};

/// A protected (or deliberately unprotected) netlist the certifier can
/// reason about: the module plus the configuration-specific detection
/// semantics, in both symbolic and concrete form.
///
/// The two forms must agree — [`Certifier`] replays every symbolic
/// counterexample through the concrete side, and the test suites pin the
/// pair against each other on random words.
pub trait CertifyModel {
    /// The netlist under certification.
    fn module(&self) -> &Module;

    /// Symbolic decode-level escape condition: the BDD of "the faulty
    /// next-state word `next` would *not* be flagged by decoding" —
    /// landing on a valid operational codeword for SCFI, replica banks
    /// agreeing for redundancy, `TRUE` for the unprotected lowering
    /// (which has no decode-level detection at all).
    ///
    /// Fallible so a budgeted manager (see [`CertifyBudget`]) can surface
    /// [`BddOverflow`] mid-construction; on an unbudgeted manager the
    /// `try_*` BDD operations never fail.
    fn undetected_next(&self, b: &mut Bdd, next: &[BddRef]) -> Result<BddRef, BddOverflow>;

    /// The input-space assumption the certification quantifies under,
    /// over the module's input-port functions `inputs`.
    ///
    /// The paper's interface assumption (§5) is that the driving modules
    /// deliver the encoded control word with its full Hamming distance —
    /// a non-codeword `xe` is itself a fault event, not a legal input, so
    /// admitting it would certify a *two*-fault attacker against a
    /// single-fault claim. The protected configurations therefore
    /// restrict `xe` to valid condition codewords; the unprotected
    /// lowering takes raw control signals, where every word is legal
    /// (default: no restriction).
    fn input_assumption(&self, b: &mut Bdd, inputs: &[BddRef]) -> Result<BddRef, BddOverflow> {
        let _ = inputs;
        Ok(b.constant(true))
    }

    /// Concrete counterpart of [`CertifyModel::undetected_next`].
    fn undetected_next_concrete(&self, next: &[bool]) -> bool;

    /// Output-port indices whose assertion during the faulty cycle counts
    /// as detection (SCFI: `alert` and `in_error`; redundancy: the
    /// mismatch `alert`; unprotected: none).
    fn detection_ports(&self) -> Vec<usize>;

    /// Human-readable configuration tag for reports (e.g. `"SCFI"`).
    fn config_name(&self) -> &'static str;
}

/// Builds the disjunction of exact-word matches `⋁_w (next == w)`.
fn word_match_any(
    b: &mut Bdd,
    next: &[BddRef],
    words: &[Vec<bool>],
) -> Result<BddRef, BddOverflow> {
    let mut any = BddRef::FALSE;
    for word in words {
        debug_assert_eq!(word.len(), next.len(), "codeword width mismatch");
        let mut cube = BddRef::TRUE;
        for (&bit, &value) in next.iter().zip(word) {
            let lit = if value { bit } else { b.try_not(bit)? };
            cube = b.try_and(cube, lit)?;
        }
        any = b.try_or(any, cube)?;
    }
    Ok(any)
}

impl CertifyModel for HardenedFsm {
    fn module(&self) -> &Module {
        HardenedFsm::module(self)
    }

    fn undetected_next(&self, b: &mut Bdd, next: &[BddRef]) -> Result<BddRef, BddOverflow> {
        // Escaping means landing on some *operational* codeword; the
        // all-zero ERROR word and every non-codeword are caught by the
        // decode (`StateDecode::Error` / `Invalid`).
        let words: Vec<Vec<bool>> = (0..self.fsm().state_count())
            .map(|s| self.encode_state(scfi_fsm::StateId(s)).iter().collect())
            .collect();
        word_match_any(b, next, &words)
    }

    fn undetected_next_concrete(&self, next: &[bool]) -> bool {
        matches!(self.decode_registers(next), StateDecode::State(_))
    }

    fn input_assumption(&self, b: &mut Bdd, inputs: &[BddRef]) -> Result<BddRef, BddOverflow> {
        let words: Vec<Vec<bool>> = (0..self.cond_code().len())
            .map(|c| self.cond_code().word(c).iter().collect())
            .collect();
        word_match_any(b, inputs, &words)
    }

    fn detection_ports(&self) -> Vec<usize> {
        let n = HardenedFsm::module(self).outputs().len();
        vec![n - 2, n - 1] // `alert`, `in_error`
    }

    fn config_name(&self) -> &'static str {
        "scfi"
    }
}

impl CertifyModel for RedundantFsm {
    fn module(&self) -> &Module {
        RedundantFsm::module(self)
    }

    fn undetected_next(&self, b: &mut Bdd, next: &[BddRef]) -> Result<BddRef, BddOverflow> {
        // Escaping the redundancy scheme means every replica bank agrees
        // with bank 0 after the step — the mismatch detector (evaluated
        // on the post-step banks, exactly like the campaign classifier)
        // stays silent on any agreed word, in range or not.
        let sb = self.state_bits();
        let mut agree = BddRef::TRUE;
        for bank in next.chunks(sb).skip(1) {
            for (&a, &c) in next[..sb].iter().zip(bank) {
                let eq = b.try_xnor(a, c)?;
                agree = b.try_and(agree, eq)?;
            }
        }
        Ok(agree)
    }

    fn undetected_next_concrete(&self, next: &[bool]) -> bool {
        let sb = self.state_bits();
        next.chunks(sb).skip(1).all(|bank| bank == &next[..sb])
    }

    fn input_assumption(&self, b: &mut Bdd, inputs: &[BddRef]) -> Result<BddRef, BddOverflow> {
        // Same protected control interface as SCFI (§6.1): the driving
        // domain delivers valid HD-N condition codewords.
        let words: Vec<Vec<bool>> = (0..self.cond_code().len())
            .map(|c| self.cond_code().word(c).iter().collect())
            .collect();
        word_match_any(b, inputs, &words)
    }

    fn detection_ports(&self) -> Vec<usize> {
        vec![RedundantFsm::module(self).outputs().len() - 1] // `alert`
    }

    fn config_name(&self) -> &'static str {
        "redundancy"
    }
}

impl CertifyModel for LoweredFsm {
    fn module(&self) -> &Module {
        LoweredFsm::module(self)
    }

    fn undetected_next(&self, b: &mut Bdd, _next: &[BddRef]) -> Result<BddRef, BddOverflow> {
        Ok(b.constant(true)) // no detection mechanism exists
    }

    fn undetected_next_concrete(&self, _next: &[bool]) -> bool {
        true
    }

    fn detection_ports(&self) -> Vec<usize> {
        Vec::new()
    }

    fn config_name(&self) -> &'static str {
        "unprotected"
    }
}

/// A concrete escaping assignment extracted from a non-empty escape BDD.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Register preload (fault-free; register flips are applied on top by
    /// the replay, exactly like the campaign executors).
    pub regs: Vec<bool>,
    /// Input-port assignment for the attacked cycle.
    pub inputs: Vec<bool>,
    /// `true` once the scalar-simulator replay confirmed the hijack.
    pub confirmed: bool,
}

/// The certified verdict for one fault site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Proof: on every reachable state and input assignment the fault
    /// changes neither the committed next state nor any detection line —
    /// it can never be observed, let alone exploited.
    ProvenMasked,
    /// Proof: the fault is observable somewhere, but every reachable
    /// assignment on which the faulty run diverges is caught (invalid /
    /// error landing or an asserted detection line). No silent hijack
    /// exists.
    ProvenDetected,
    /// Refutation: the witness assignment drives the faulty run into a
    /// valid-but-wrong next state with every detection line low.
    Counterexample(Witness),
    /// Degradation: the certifier's BDD budget ([`CertifyBudget`]) ran
    /// out before this site was decided. The site is *not* proven and
    /// *not* refuted — callers fall back to exhaustive campaign sampling
    /// for it. A budget overflow is never converted into a proof.
    Unknown {
        /// The [`BddOverflow`] description that stopped the site.
        reason: String,
    },
}

impl Verdict {
    /// `true` for either proof variant — and, deliberately, `false` for
    /// [`Verdict::Unknown`]: an undecided site never strengthens a
    /// guarantee claim.
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::ProvenMasked | Verdict::ProvenDetected)
    }
}

/// One certified fault site.
#[derive(Clone, Debug)]
pub struct SiteReport {
    /// The certified fault.
    pub fault: Fault,
    /// Its verdict.
    pub verdict: Verdict,
}

/// The full certification result for one module and fault list.
#[derive(Clone, Debug)]
pub struct CertificationReport {
    /// Configuration tag of the certified model.
    pub config: &'static str,
    /// Module name.
    pub module: String,
    /// Per-site verdicts, in fault-list order.
    pub sites: Vec<SiteReport>,
    /// Exact number of reachable register states.
    pub reachable_states: u64,
    /// Register (state-vector) width.
    pub state_bits: usize,
    /// Input-port count — the proof quantifies over all `2^input_bits`
    /// words.
    pub input_bits: usize,
}

impl CertificationReport {
    /// Sites proven detected.
    pub fn proven_detected(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::ProvenDetected))
            .count()
    }

    /// Sites proven masked (never observable).
    pub fn proven_masked(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::ProvenMasked))
            .count()
    }

    /// Sites with a counterexample.
    pub fn counterexamples(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::Counterexample(_)))
            .count()
    }

    /// Sites left undecided by a budget overflow
    /// ([`Verdict::Unknown`]).
    pub fn unknown(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| matches!(s.verdict, Verdict::Unknown { .. }))
            .count()
    }

    /// `true` when every site is proven (no counterexamples *and* no
    /// budget-degraded unknowns) — the paper's detection guarantee holds
    /// for the whole fault list.
    pub fn all_proven(&self) -> bool {
        self.sites.iter().all(|s| s.verdict.is_proven())
    }

    /// Iterates the counterexample sites.
    pub fn counterexample_sites(&self) -> impl Iterator<Item = (&Fault, &Witness)> {
        self.sites.iter().filter_map(|s| match &s.verdict {
            Verdict::Counterexample(w) => Some((&s.fault, w)),
            _ => None,
        })
    }

    /// Escaping sites grouped per cell: `(cell id, escapes, certified
    /// sites)` for every cell with at least one counterexample, ranked
    /// most escapes first (cell id breaks ties) — the same ordering
    /// convention as
    /// [`VulnerabilityMap::ranked_by_hijacks`](scfi_faultsim::VulnerabilityMap::ranked_by_hijacks),
    /// so the designer's hardening worklist reads the same whether it
    /// came from sampling or from proof.
    pub fn ranked_escaping_cells(&self) -> Vec<(u32, usize, usize)> {
        use std::cmp::Reverse;
        use std::collections::HashMap;
        let mut by_cell: HashMap<u32, (usize, usize)> = HashMap::new();
        for site in &self.sites {
            let cell = match site.fault.site {
                FaultSite::CellOutput(c) | FaultSite::Pin(c, _) | FaultSite::Register(c) => c.0,
            };
            let entry = by_cell.entry(cell).or_default();
            entry.1 += 1;
            if matches!(site.verdict, Verdict::Counterexample(_)) {
                entry.0 += 1;
            }
        }
        let mut ranked: Vec<(u32, usize, usize)> = by_cell
            .into_iter()
            .filter(|&(_, (escapes, _))| escapes > 0)
            .map(|(cell, (escapes, sites))| (cell, escapes, sites))
            .collect();
        ranked.sort_by_key(|&(cell, escapes, _)| (Reverse(escapes), cell));
        ranked
    }

    /// A [`Display`](fmt::Display) adapter rendering the escaping-site
    /// set as a ranked designer report (the `certify --all-gates` view):
    /// one row per escaping cell, worst first, 16-row excerpt with an
    /// explicit "… and K more" footer — the
    /// [`VulnerabilityMap`](scfi_faultsim::VulnerabilityMap) conventions.
    pub fn escape_ranking(&self) -> EscapeRanking<'_> {
        EscapeRanking(self)
    }
}

/// Ranked escaping-cell view of a [`CertificationReport`]; see
/// [`CertificationReport::escape_ranking`].
pub struct EscapeRanking<'r>(&'r CertificationReport);

impl fmt::Display for EscapeRanking<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ranked = self.0.ranked_escaping_cells();
        writeln!(
            f,
            "{} certified sites; {} escapes through {} cells",
            self.0.sites.len(),
            self.0.counterexamples(),
            ranked.len()
        )?;
        for &(cell, escapes, sites) in ranked.iter().take(16) {
            writeln!(f, "  c{cell:<6} {escapes:>4} escapes / {sites:>5} sites")?;
        }
        // The ranking is an excerpt; say so instead of silently dropping
        // the tail of the escaping-cell list.
        if ranked.len() > 16 {
            writeln!(f, "  … and {} more escaping cells", ranked.len() - 16)?;
        }
        Ok(())
    }
}

impl fmt::Display for CertificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "certified {} ({}): {} fault sites over {} reachable states x 2^{} input words",
            self.module,
            self.config,
            self.sites.len(),
            self.reachable_states,
            self.input_bits
        )?;
        write!(
            f,
            "  proven detected: {}, proven masked: {}, counterexamples: {}",
            self.proven_detected(),
            self.proven_masked(),
            self.counterexamples()
        )?;
        if self.unknown() > 0 {
            write!(f, ", unknown (budget exhausted): {}", self.unknown())?;
        }
        Ok(())
    }
}

/// Resource budget for a [`Certifier`]: caps on BDD nodes, per-site
/// operation steps, and wall-clock time. The default is unlimited —
/// identical to [`Certifier::new`]'s behavior.
///
/// The node budget is cumulative over the certifier's lifetime (BDD
/// nodes are hash-consed and never freed); the step limit is reset per
/// certified site, so it bounds the *hardest single site* rather than
/// the whole report; the timeout is an absolute deadline armed at
/// construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct CertifyBudget {
    max_nodes: Option<usize>,
    max_steps: Option<u64>,
    timeout: Option<Duration>,
}

impl CertifyBudget {
    /// No limits at all (the [`Default`]).
    pub fn unlimited() -> Self {
        CertifyBudget::default()
    }

    /// Caps the BDD manager at `n` nodes (cumulative).
    pub fn max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Caps each certified site at `n` BDD operation steps.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Arms a wall-clock deadline `d` from certifier construction.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }
}

/// The certification engine: owns the BDD manager, the symbolic
/// evaluator, the fault-free base step and the reachable-state set, and
/// certifies fault sites against them.
///
/// # Example
///
/// ```
/// use scfi_core::{harden, ScfiConfig};
/// use scfi_faultsim::{enumerate_faults, CampaignConfig};
/// use scfi_fsm::parse_fsm;
/// use scfi_symbolic::Certifier;
///
/// let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
/// let h = harden(&fsm, &ScfiConfig::new(3))?;
/// let faults = enumerate_faults(
///     h.module(),
///     &CampaignConfig::new().effects(vec![]).with_register_flips(),
/// );
/// let mut certifier = Certifier::new(&h);
/// let report = certifier.certify_all(&faults);
/// // The paper's guarantee, *proved*: no single register-bit flip can
/// // hijack control flow from any reachable state under any input word.
/// assert!(report.all_proven());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Certifier<'m, M: CertifyModel> {
    pub(crate) model: &'m M,
    pub(crate) evaluator: SymbolicEvaluator<'m>,
    pub(crate) bdd: Bdd,
    pub(crate) base: SymStep,
    pub(crate) reach: Reachability,
    /// The model's input-space assumption over the input variables.
    pub(crate) assumption: BddRef,
    pub(crate) detection_ports: Vec<usize>,
    /// Observability handle ([`Telemetry::off`] unless installed via
    /// [`with_instruments`](Self::with_instruments)); recording never
    /// changes any verdict or report byte.
    telemetry: Telemetry,
    /// `(hits, misses)` already flushed to the telemetry counters, so the
    /// cumulative [`Bdd`] totals can be exported as monotone deltas.
    flushed_ite: (u64, u64),
}

impl<'m, M: CertifyModel> Certifier<'m, M> {
    /// Builds the fault-free symbolic step, the input-space assumption
    /// and the reachability fixpoint for `model`'s module, with no
    /// resource limits.
    pub fn new(model: &'m M) -> Self {
        Certifier::with_budget(model, CertifyBudget::unlimited())
            .expect("an unbudgeted certifier cannot overflow")
    }

    /// [`new`](Self::new) under a [`CertifyBudget`]. The setup work (the
    /// fault-free symbolic step and the reachability fixpoint) is itself
    /// budgeted: if it overflows, no certifier exists and the error is
    /// returned — use [`degraded_report`](Self::degraded_report) to
    /// produce the all-[`Unknown`](Verdict::Unknown) report for that
    /// case. Per-site overflows after a successful setup degrade to
    /// per-site `Unknown` verdicts instead (see [`certify`](Self::certify)).
    pub fn with_budget(model: &'m M, budget: CertifyBudget) -> Result<Self, BddOverflow> {
        Certifier::with_instruments(model, budget, Telemetry::off(), None)
    }

    /// [`with_budget`](Self::with_budget) plus the two cross-cutting
    /// instruments the observability layer threads through every engine:
    /// a [`Telemetry`] handle (per-phase durations, per-site step and
    /// latency histograms, `ite`-cache hit/miss counters and the
    /// node-table high-water gauge — all no-ops on [`Telemetry::off`])
    /// and an optional [`RunControl`] whose cancel flag is polled inside
    /// the BDD step loop, so cancelling a running certification aborts
    /// within a few thousand operation steps instead of running the
    /// current site to completion. A cancelled setup returns
    /// [`BddOverflow::Cancelled`]; a cancelled site degrades to
    /// [`Verdict::Unknown`], never a fabricated proof. Neither instrument
    /// changes any verdict.
    pub fn with_instruments(
        model: &'m M,
        budget: CertifyBudget,
        telemetry: Telemetry,
        cancel: Option<RunControl>,
    ) -> Result<Self, BddOverflow> {
        let evaluator = SymbolicEvaluator::new(model.module());
        let mut bdd = Bdd::new();
        if let Some(n) = budget.max_nodes {
            bdd.set_node_budget(n);
        }
        if let Some(t) = budget.timeout {
            if let Some(deadline) = Instant::now().checked_add(t) {
                bdd.set_deadline(deadline);
            }
        }
        if let Some(control) = cancel {
            bdd.set_cancel_probe(Arc::new(move || control.is_cancelled()));
        }
        let setup_start = telemetry.enabled().then(Instant::now);
        let base = evaluator.try_eval(&mut bdd, &[])?;
        let input_vars = (0..model.module().inputs().len())
            .map(|i| bdd.try_var(evaluator.varmap().input(i)))
            .collect::<Result<Vec<BddRef>, _>>()?;
        let assumption = model.input_assumption(&mut bdd, &input_vars)?;
        let reach_start = telemetry.enabled().then(|| {
            let now = Instant::now();
            if let Some(start) = setup_start {
                let elapsed = now - start;
                telemetry
                    .histogram("scfi_certify_setup_ns")
                    .observe_duration(elapsed);
                telemetry.record_span("certify_setup", start, elapsed);
            }
            now
        });
        let reach = try_reachable_states(&mut bdd, &evaluator, &base, assumption)?;
        if let Some(start) = reach_start {
            let elapsed = start.elapsed();
            telemetry
                .histogram("scfi_certify_reach_ns")
                .observe_duration(elapsed);
            telemetry.record_span("certify_reach", start, elapsed);
        }
        // The step limit is a *per-site* allowance (reset before each
        // `certify` call), so it is armed only after the one-time setup:
        // setup is bounded by the node budget and the deadline instead.
        if let Some(s) = budget.max_steps {
            bdd.set_step_limit(s);
        }
        let detection_ports = model.detection_ports();
        let mut certifier = Certifier {
            model,
            evaluator,
            bdd,
            base,
            reach,
            assumption,
            detection_ports,
            telemetry,
            flushed_ite: (0, 0),
        };
        certifier.flush_bdd_stats();
        Ok(certifier)
    }

    /// Exports the BDD manager's cumulative cache statistics and node
    /// high-water mark as monotone telemetry series. No-op without a
    /// recording handle.
    fn flush_bdd_stats(&mut self) {
        if !self.telemetry.enabled() {
            return;
        }
        let (hits, misses) = (self.bdd.ite_cache_hits(), self.bdd.ite_cache_misses());
        self.telemetry
            .counter("scfi_bdd_ite_cache_hits_total")
            .add(hits - self.flushed_ite.0);
        self.telemetry
            .counter("scfi_bdd_ite_cache_misses_total")
            .add(misses - self.flushed_ite.1);
        self.flushed_ite = (hits, misses);
        self.telemetry
            .gauge("scfi_bdd_nodes_high_water")
            .record_max(self.bdd.node_count() as u64);
    }

    /// The all-[`Unknown`](Verdict::Unknown) report for a setup-phase
    /// budget overflow: every site undecided, with `overflow`'s
    /// description as the shared reason. Keeps the "over budget means
    /// Unknown, never a fabricated proof" contract even when the budget
    /// is too small to build the certifier at all.
    pub fn degraded_report(
        model: &M,
        faults: &[Fault],
        overflow: BddOverflow,
    ) -> CertificationReport {
        CertificationReport {
            config: model.config_name(),
            module: model.module().name().to_string(),
            sites: faults
                .iter()
                .map(|&fault| SiteReport {
                    fault,
                    verdict: Verdict::Unknown {
                        reason: overflow.to_string(),
                    },
                })
                .collect(),
            reachable_states: 0,
            state_bits: model.module().registers().len(),
            input_bits: model.module().inputs().len(),
        }
    }

    /// Exact count of reachable register states.
    pub fn reachable_state_count(&self) -> u64 {
        self.bdd
            .sat_count(self.reach.states, &self.evaluator.varmap().current_vars()) as u64
    }

    /// The reachability fixpoint (for diagnostics and tests).
    pub fn reachability(&self) -> Reachability {
        self.reach
    }

    /// Membership query: is the concrete register state `regs` in the
    /// reachable set?
    ///
    /// # Panics
    ///
    /// Panics on register-count mismatch.
    pub fn state_is_reachable(&self, regs: &[bool]) -> bool {
        let vm = self.evaluator.varmap();
        assert_eq!(
            regs.len(),
            self.model.module().registers().len(),
            "register count mismatch"
        );
        let mut assignment = vec![false; vm.var_count() as usize];
        for (i, &v) in regs.iter().enumerate() {
            assignment[vm.reg_current(i) as usize] = v;
        }
        self.bdd.eval(self.reach.states, &assignment)
    }

    /// The symbolic evaluator (for diagnostics and tests).
    pub fn evaluator(&self) -> &SymbolicEvaluator<'m> {
        &self.evaluator
    }

    /// Certifies one fault site.
    ///
    /// Under a [`CertifyBudget`], the per-site step counter is reset
    /// first, and a mid-site budget overflow degrades to
    /// [`Verdict::Unknown`] carrying the overflow reason — the site is
    /// reported undecided, never proven. Unbudgeted certifiers cannot
    /// overflow.
    pub fn certify(&mut self, fault: Fault) -> Verdict {
        self.bdd.reset_steps();
        let site_start = self.telemetry.enabled().then(Instant::now);
        let verdict = match self.certify_inner(fault) {
            Ok(verdict) => verdict,
            Err(overflow) => Verdict::Unknown {
                reason: overflow.to_string(),
            },
        };
        if let Some(start) = site_start {
            let elapsed = start.elapsed();
            self.telemetry
                .histogram("scfi_certify_site_ns")
                .observe_duration(elapsed);
            self.telemetry
                .histogram("scfi_certify_steps_per_site")
                .observe(self.bdd.steps());
            self.telemetry.record_span("certify_site", start, elapsed);
            self.flush_bdd_stats();
        }
        verdict
    }

    fn certify_inner(&mut self, fault: Fault) -> Result<Verdict, BddOverflow> {
        let faulty = self
            .evaluator
            .try_eval_fault_from(&mut self.bdd, &self.base, fault)?;
        // Disjunction of the detection lines in a step (BddRefs are Copy,
        // so collecting them first keeps the borrows disjoint).
        let or_ports =
            |b: &mut Bdd, step: &SymStep, ports: &[usize]| -> Result<BddRef, BddOverflow> {
                let mut any = BddRef::FALSE;
                for &p in ports {
                    any = b.try_or(any, step.outputs[p])?;
                }
                Ok(any)
            };
        // Cloned (two small indices) rather than moved out, so an early
        // `?` return cannot leave the field empty for the next site.
        let ports = self.detection_ports.clone();
        let b = &mut self.bdd;

        // diverge: the committed next state differs somewhere.
        let mut diverge = BddRef::FALSE;
        for (&free, &bad) in self.base.next_regs.iter().zip(&faulty.next_regs) {
            let d = b.try_xor(free, bad)?;
            diverge = b.try_or(diverge, d)?;
        }

        let undetected = self.model.undetected_next(b, &faulty.next_regs)?;
        let alerted = or_ports(b, &faulty, &ports)?;
        let quiet = b.try_not(alerted)?;
        let escape = {
            let e = b.try_and(diverge, undetected)?;
            let e = b.try_and(e, quiet)?;
            let e = b.try_and(e, self.assumption)?;
            b.try_and(e, self.reach.states)?
        };

        if escape != BddRef::FALSE {
            let assignment = b.sat_one(escape).expect("non-false BDD has a model");
            let (regs, inputs) = self.evaluator.varmap().decode_assignment(&assignment);
            let confirmed = self.replay(fault, &regs, &inputs);
            Ok(Verdict::Counterexample(Witness {
                regs,
                inputs,
                confirmed,
            }))
        } else {
            // No escape: distinguish "never observable" from "caught".
            // The observability test uses the campaign's observables —
            // the committed state and the detection lines, not the Moore
            // outputs (a Moore-only glitch is Masked in §6.4 terms too).
            let base_alert = or_ports(b, &self.base, &ports)?;
            let faulty_alert = or_ports(b, &faulty, &ports)?;
            let alert_diff = b.try_xor(base_alert, faulty_alert)?;
            let observable = b.try_or(diverge, alert_diff)?;
            let effect = b.try_and(observable, self.reach.states)?;
            let effect = b.try_and(effect, self.assumption)?;
            if effect == BddRef::FALSE {
                Ok(Verdict::ProvenMasked)
            } else {
                Ok(Verdict::ProvenDetected)
            }
        }
    }

    /// Certifies every fault in `faults` and assembles the report.
    pub fn certify_all(&mut self, faults: &[Fault]) -> CertificationReport {
        let sites = faults
            .iter()
            .map(|&fault| SiteReport {
                fault,
                verdict: self.certify(fault),
            })
            .collect();
        CertificationReport {
            config: self.model.config_name(),
            module: self.model.module().name().to_string(),
            sites,
            reachable_states: self.reachable_state_count(),
            state_bits: self.model.module().registers().len(),
            input_bits: self.model.module().inputs().len(),
        }
    }

    /// Replays a witness through the scalar simulator and checks the
    /// hijack concretely: the faulty run must land on an undetected word
    /// that differs from the fault-free run, with every detection line
    /// low.
    fn replay(&self, fault: Fault, regs: &[bool], inputs: &[bool]) -> bool {
        self.replay_group(&[fault], regs, inputs)
    }

    /// [`replay`](Self::replay) for a whole fault group injected at once —
    /// the joint certification's witness confirmation.
    pub(crate) fn replay_group(&self, faults: &[Fault], regs: &[bool], inputs: &[bool]) -> bool {
        let module = self.model.module();
        let mut sim = Simulator::new(module);

        sim.reset_to(regs);
        let free_out = sim.step(inputs);
        let free_next = sim.register_values().to_vec();
        debug_assert_eq!(free_out.len(), module.outputs().len());

        sim.clear_faults();
        sim.reset_to(regs);
        // Witness replay arms through the campaign layer's own `arm`, so
        // the two oracles can never drift on injection semantics.
        for &fault in faults {
            scfi_faultsim::arm(&mut sim, fault);
        }
        let bad_out = sim.step(inputs);
        let bad_next = sim.register_values().to_vec();

        let diverged = bad_next != free_next;
        let undetected = self.model.undetected_next_concrete(&bad_next);
        let alerted = self.detection_ports.iter().any(|&p| bad_out[p]);
        diverged && undetected && !alerted
    }
}

/// One-line human description of a fault site (for per-site CLI output).
pub fn describe_fault(module: &Module, fault: Fault) -> String {
    let effect = match fault.effect {
        FaultEffect::Flip => "flip",
        FaultEffect::Stuck0 => "stuck-at-0",
        FaultEffect::Stuck1 => "stuck-at-1",
    };
    match fault.site {
        FaultSite::CellOutput(c) => {
            format!(
                "{effect} on output of c{} ({})",
                c.0,
                module.cell(c).kind.mnemonic()
            )
        }
        FaultSite::Pin(c, p) => format!(
            "{effect} on pin {p} of c{} ({})",
            c.0,
            module.cell(c).kind.mnemonic()
        ),
        FaultSite::Register(c) => {
            let pos = module.register_position(c).unwrap_or(usize::MAX);
            format!("stored-bit flip on register {pos} (c{})", c.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_core::{harden, redundancy, ScfiConfig};
    use scfi_faultsim::{enumerate_faults, CampaignConfig};
    use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};

    fn fsm() -> Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    fn register_fault_config(module: &Module) -> CampaignConfig {
        CampaignConfig::new().register_region(module)
    }

    #[test]
    fn scfi_register_faults_are_proven_detected() {
        for n in [2, 3] {
            let h = harden(&fsm(), &ScfiConfig::new(n)).unwrap();
            let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
            assert!(!faults.is_empty());
            let mut certifier = Certifier::new(&h);
            let report = certifier.certify_all(&faults);
            assert!(report.all_proven(), "N={n}: {report}");
            assert_eq!(report.counterexamples(), 0);
            // A register fault is always observable somewhere reachable.
            assert_eq!(report.proven_detected(), faults.len(), "N={n}: {report}");
            // Reachable states: the three operational codewords + ERROR.
            assert_eq!(report.reachable_states, 4, "N={n}");
        }
    }

    #[test]
    fn redundancy_register_faults_are_proven_detected() {
        let r = redundancy(&fsm(), 2).unwrap();
        let faults = enumerate_faults(r.module(), &register_fault_config(r.module()));
        let mut certifier = Certifier::new(&r);
        let report = certifier.certify_all(&faults);
        assert!(report.all_proven(), "{report}");
    }

    #[test]
    fn unprotected_register_faults_yield_confirmed_counterexamples() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let faults = enumerate_faults(lowered.module(), &register_fault_config(lowered.module()));
        let mut certifier = Certifier::new(&lowered);
        let report = certifier.certify_all(&faults);
        assert!(
            report.counterexamples() > 0,
            "an unprotected FSM must be refutable: {report}"
        );
        for (fault, witness) in report.counterexample_sites() {
            assert!(
                witness.confirmed,
                "witness for {fault:?} did not replay to a concrete hijack"
            );
        }
    }

    #[test]
    fn scfi_reachable_set_is_codewords_plus_error() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let certifier = Certifier::new(&h);
        // Three operational codewords plus the all-zero ERROR word.
        assert_eq!(certifier.reachable_state_count(), 4);
        assert!(certifier.reachability().iterations >= 2);
        assert_eq!(certifier.evaluator().module().name(), h.module().name());
    }

    #[test]
    fn masked_verdicts_exist_for_redundant_logic() {
        // A fault on a net whose value never reaches registers or
        // detection ports must certify as ProvenMasked. Build a module
        // with a dangling-but-driven Moore-style output cone.
        use scfi_netlist::ModuleBuilder;
        let mut mb = ModuleBuilder::new("deadend");
        let a = mb.input("a");
        let q = mb.dff_uninit(false);
        let toggle = mb.xor2(q, a); // next state depends on the register
        mb.set_dff_input(q, toggle);
        let moore = mb.and2(q, a); // feeds only an output port
        mb.output("q", q);
        mb.output("moore", moore);
        let m = mb.finish().unwrap();
        // Certify under the unprotected semantics (no detection ports):
        // faults on the Moore cone never touch the committed state.
        struct Raw<'a>(&'a Module);
        impl CertifyModel for Raw<'_> {
            fn module(&self) -> &Module {
                self.0
            }
            fn undetected_next(
                &self,
                b: &mut Bdd,
                _next: &[BddRef],
            ) -> Result<BddRef, BddOverflow> {
                Ok(b.constant(true))
            }
            fn undetected_next_concrete(&self, _next: &[bool]) -> bool {
                true
            }
            fn detection_ports(&self) -> Vec<usize> {
                Vec::new()
            }
            fn config_name(&self) -> &'static str {
                "raw"
            }
        }
        let model = Raw(&m);
        let mut certifier = Certifier::new(&model);
        let moore_fault = Fault {
            site: FaultSite::CellOutput(moore.cell()),
            effect: FaultEffect::Flip,
        };
        assert_eq!(certifier.certify(moore_fault), Verdict::ProvenMasked);
        // Whereas a register-bit flip diverges (and, with no detection
        // mechanism, is a counterexample).
        let reg_fault = Fault {
            site: FaultSite::Register(q.cell()),
            effect: FaultEffect::Flip,
        };
        match certifier.certify(reg_fault) {
            Verdict::Counterexample(w) => assert!(w.confirmed),
            other => panic!("register flip must escape the raw model, got {other:?}"),
        }
    }

    #[test]
    fn report_display_and_counters() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
        let mut certifier = Certifier::new(&h);
        let report = certifier.certify_all(&faults);
        let text = report.to_string();
        assert!(text.contains("certified"), "{text}");
        assert!(text.contains("reachable states"), "{text}");
        assert!(text.contains("counterexamples: 0"), "{text}");
        assert_eq!(
            report.sites.len(),
            report.proven_detected() + report.proven_masked() + report.counterexamples()
        );
    }

    #[test]
    fn generous_budget_matches_the_unbudgeted_report() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
        let unbudgeted = Certifier::new(&h).certify_all(&faults);
        let budget = CertifyBudget::unlimited()
            .max_nodes(usize::MAX)
            .max_steps(u64::MAX)
            .timeout(std::time::Duration::from_secs(3600));
        let mut budgeted =
            Certifier::with_budget(&h, budget).expect("generous budget must suffice");
        let report = budgeted.certify_all(&faults);
        assert_eq!(report.unknown(), 0, "{report}");
        for (a, c) in unbudgeted.sites.iter().zip(&report.sites) {
            assert_eq!(a.verdict, c.verdict, "fault {:?}", a.fault);
        }
    }

    #[test]
    fn tiny_node_budget_degrades_to_unknown_not_a_proof() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
        // Far too small to even build the base step: setup overflows.
        let err = match Certifier::with_budget(&h, CertifyBudget::unlimited().max_nodes(8)) {
            Err(e) => e,
            Ok(_) => panic!("8 nodes cannot hold a hardened FSM's base step"),
        };
        assert_eq!(err, BddOverflow::Nodes { limit: 8 });
        let report = Certifier::degraded_report(&h, &faults, err);
        assert_eq!(report.unknown(), report.sites.len());
        assert_eq!(report.counterexamples(), 0);
        assert!(!report.all_proven(), "unknown sites are never proven");
        let text = report.to_string();
        assert!(text.contains("unknown (budget exhausted)"), "{text}");
        for site in &report.sites {
            match &site.verdict {
                Verdict::Unknown { reason } => {
                    assert!(reason.contains("node budget"), "{reason}");
                    assert!(!site.verdict.is_proven());
                }
                other => panic!("expected Unknown, got {other:?}"),
            }
        }
    }

    #[test]
    fn per_site_step_limit_yields_unknown_sites_after_good_setup() {
        let h = harden(&fsm(), &ScfiConfig::new(3)).unwrap();
        let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
        // Setup fits (no node cap), but each site gets a step allowance
        // too small for the escape-BDD construction.
        let mut certifier = Certifier::with_budget(&h, CertifyBudget::unlimited().max_steps(1))
            .expect("the step limit is reset per site, setup runs before it bites");
        let report = certifier.certify_all(&faults);
        assert_eq!(report.unknown(), report.sites.len(), "{report}");
        assert!(!report.all_proven());
    }

    #[test]
    fn describe_fault_names_sites() {
        let h = harden(&fsm(), &ScfiConfig::new(2)).unwrap();
        let m = h.module();
        let r = m.registers()[0];
        let text = describe_fault(
            m,
            Fault {
                site: FaultSite::Register(r),
                effect: FaultEffect::Flip,
            },
        );
        assert!(text.contains("register 0"), "{text}");
        let text = describe_fault(
            m,
            Fault {
                site: FaultSite::Pin(m.topo_order()[0], 1),
                effect: FaultEffect::Stuck1,
            },
        );
        assert!(text.contains("pin 1"), "{text}");
        assert!(text.contains("stuck-at-1"), "{text}");
    }
}
