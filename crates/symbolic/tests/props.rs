//! Property-based tests for the ROBDD package itself.
//!
//! Two claims carry the whole certification engine:
//!
//! * **canonicity** — structurally equal functions hash-cons to
//!   pointer-equal nodes, so the escape check is `escape == FALSE`;
//! * **semantic correctness of `ite`** — every connective derives from
//!   it, so `eval(ite(f, g, h), a) == if eval(f, a) { eval(g, a) } else
//!   { eval(h, a) }` must hold on brute-force truth tables.
//!
//! Random functions are built from flat SSA-style op chains over ≤ 12
//! variables, exhaustively compared against a reference truth-table
//! evaluator on every assignment.

use proptest::prelude::*;
use scfi_symbolic::{Bdd, BddRef};

/// One SSA op: kind plus two operand indices into the chain so far.
type Op = (u8, u16, u16);

/// A random function description: variable count plus an op chain.
fn chain(max_vars: usize, max_ops: usize) -> impl Strategy<Value = (usize, Vec<Op>)> {
    (
        1..=max_vars,
        proptest::collection::vec((0u8..6, 0u16..1024, 0u16..1024), 1..=max_ops),
    )
}

/// Builds the chain in a manager, returning the final node.
fn build(b: &mut Bdd, n_vars: usize, ops: &[Op]) -> BddRef {
    let mut nodes: Vec<BddRef> = (0..n_vars).map(|v| b.var(v as u32)).collect();
    for &(kind, x, y) in ops {
        let f = nodes[x as usize % nodes.len()];
        let g = nodes[y as usize % nodes.len()];
        let r = match kind {
            0 => b.and(f, g),
            1 => b.or(f, g),
            2 => b.xor(f, g),
            3 => b.nand(f, g),
            4 => b.xnor(f, g),
            _ => b.not(f),
        };
        nodes.push(r);
    }
    *nodes.last().expect("non-empty chain")
}

/// Builds the same chain through structurally different but equivalent
/// constructions (De Morgan / complement rewrites per op).
fn build_rewritten(b: &mut Bdd, n_vars: usize, ops: &[Op]) -> BddRef {
    let mut nodes: Vec<BddRef> = (0..n_vars).map(|v| b.var(v as u32)).collect();
    for &(kind, x, y) in ops {
        let f = nodes[x as usize % nodes.len()];
        let g = nodes[y as usize % nodes.len()];
        let r = match kind {
            0 => {
                // a & b == !(!a | !b)
                let (nf, ng) = (b.not(f), b.not(g));
                let o = b.or(nf, ng);
                b.not(o)
            }
            1 => {
                // a | b == !(!a & !b)
                let (nf, ng) = (b.not(f), b.not(g));
                let a = b.and(nf, ng);
                b.not(a)
            }
            2 => {
                // a ^ b == (a & !b) | (!a & b)
                let (nf, ng) = (b.not(f), b.not(g));
                let l = b.and(f, ng);
                let r = b.and(nf, g);
                b.or(l, r)
            }
            3 => {
                // nand == !( a & b )
                let a = b.and(f, g);
                b.not(a)
            }
            4 => {
                // xnor == ite(a, b, !b)
                let ng = b.not(g);
                b.ite(f, g, ng)
            }
            _ => {
                // !a == ite(a, false, true)
                b.ite(f, BddRef::FALSE, BddRef::TRUE)
            }
        };
        nodes.push(r);
    }
    *nodes.last().expect("non-empty chain")
}

/// Reference truth-table evaluator for the chain.
fn truth_table(n_vars: usize, ops: &[Op]) -> Vec<bool> {
    (0u64..1 << n_vars)
        .map(|bits| {
            let mut nodes: Vec<bool> = (0..n_vars).map(|v| bits >> v & 1 == 1).collect();
            for &(kind, x, y) in ops {
                let f = nodes[x as usize % nodes.len()];
                let g = nodes[y as usize % nodes.len()];
                nodes.push(match kind {
                    0 => f & g,
                    1 => f | g,
                    2 => f ^ g,
                    3 => !(f & g),
                    4 => !(f ^ g),
                    _ => !f,
                });
            }
            *nodes.last().expect("non-empty chain")
        })
        .collect()
}

proptest! {
    /// Hash-consing canonicity: the same function built through two
    /// structurally different op-by-op constructions lands on the same
    /// node — handle equality IS function equality.
    #[test]
    fn structurally_equal_functions_are_pointer_equal((n_vars, ops) in chain(10, 24)) {
        let mut b = Bdd::new();
        let direct = build(&mut b, n_vars, &ops);
        let rewritten = build_rewritten(&mut b, n_vars, &ops);
        prop_assert_eq!(direct, rewritten);
        // And double negation is the identity on the node itself.
        let nn = {
            let neg = b.not(direct);
            b.not(neg)
        };
        prop_assert_eq!(nn, direct);
    }

    /// The built BDD computes exactly the chain's truth table.
    #[test]
    fn bdd_matches_brute_force_truth_table((n_vars, ops) in chain(10, 24)) {
        let mut b = Bdd::new();
        let f = build(&mut b, n_vars, &ops);
        let table = truth_table(n_vars, &ops);
        for (bits, &expect) in table.iter().enumerate() {
            let assignment: Vec<bool> = (0..n_vars).map(|v| bits >> v & 1 == 1).collect();
            prop_assert_eq!(b.eval(f, &assignment), expect, "assignment {:b}", bits);
        }
    }

    /// The Shannon operator law, on ≤ 12-variable functions: evaluating
    /// `ite(f, g, h)` equals branching on `f`'s evaluation.
    #[test]
    fn ite_satisfies_its_defining_law(
        (n_vars, f_ops) in chain(12, 16),
        g_ops in proptest::collection::vec((0u8..6, 0u16..1024, 0u16..1024), 1..=16),
        h_ops in proptest::collection::vec((0u8..6, 0u16..1024, 0u16..1024), 1..=16),
    ) {
        let mut b = Bdd::new();
        let f = build(&mut b, n_vars, &f_ops);
        let g = build(&mut b, n_vars, &g_ops);
        let h = build(&mut b, n_vars, &h_ops);
        let r = b.ite(f, g, h);
        for bits in 0u64..1 << n_vars {
            let a: Vec<bool> = (0..n_vars).map(|v| bits >> v & 1 == 1).collect();
            let expect = if b.eval(f, &a) { b.eval(g, &a) } else { b.eval(h, &a) };
            prop_assert_eq!(b.eval(r, &a), expect, "assignment {:b}", bits);
        }
    }

    /// Quantification law on random functions: `∃v. f` is satisfied by
    /// an assignment iff some completion of `v` satisfies `f`.
    #[test]
    fn exists_is_disjunction_over_cofactors(
        (n_vars, ops) in chain(8, 20),
        var_pick in 0u16..1024,
    ) {
        let mut b = Bdd::new();
        let f = build(&mut b, n_vars, &ops);
        let v = (var_pick as usize % n_vars) as u32;
        let quantified = b.exists(f, &[v]);
        for bits in 0u64..1 << n_vars {
            let mut a: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
            a[v as usize] = false;
            let lo = b.eval(f, &a);
            a[v as usize] = true;
            let hi = b.eval(f, &a);
            prop_assert_eq!(b.eval(quantified, &a), lo || hi);
        }
    }
}
