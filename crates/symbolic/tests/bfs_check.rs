//! Differential check of the symbolic reachability fixpoint: on real
//! Table-1 modules, the BDD least fixpoint must find *exactly* the state
//! set a concrete breadth-first search over the scalar simulator finds
//! (driving every valid condition codeword from every discovered state).

use std::collections::{BTreeSet, VecDeque};

use scfi_core::{harden, ScfiConfig};
use scfi_netlist::Simulator;
use scfi_symbolic::Certifier;

/// Concrete BFS over the hardened netlist under valid `xe` codewords.
fn concrete_reachable(h: &scfi_core::HardenedFsm) -> BTreeSet<Vec<bool>> {
    let xe_words: Vec<Vec<bool>> = (0..h.cond_code().len())
        .map(|c| h.cond_code().word(c).iter().collect())
        .collect();
    let mut sim = Simulator::new(h.module());
    let reset: Vec<bool> = sim.register_values().to_vec();
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(reset.clone());
    queue.push_back(reset);
    while let Some(state) = queue.pop_front() {
        for xe in &xe_words {
            sim.reset_to(&state);
            sim.step(xe);
            let next = sim.register_values().to_vec();
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    seen
}

#[test]
fn symbolic_reachability_matches_concrete_bfs() {
    for name in ["adc_ctrl_fsm", "pwrmgr_fsm"] {
        for n in [2, 3] {
            let b = scfi_opentitan::by_name(name).expect("suite entry");
            let h = harden(&b.fsm, &ScfiConfig::new(n)).expect("harden");
            let concrete = concrete_reachable(&h);
            let certifier = Certifier::new(&h);
            assert_eq!(
                certifier.reachable_state_count(),
                concrete.len() as u64,
                "{name} N={n}: symbolic and BFS reachable counts differ"
            );
            // Exhaustive membership agreement over the whole register
            // word space (sw stays small enough on these two FSMs).
            let sw = h.module().registers().len();
            assert!(sw <= 16, "membership sweep assumes a small word");
            for bits in 0u64..1 << sw {
                let regs: Vec<bool> = (0..sw).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(
                    certifier.state_is_reachable(&regs),
                    concrete.contains(&regs),
                    "{name} N={n}: membership of {regs:?} disagrees"
                );
            }
        }
    }
}
