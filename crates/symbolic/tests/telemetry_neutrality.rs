//! Telemetry-neutrality for certification: a [`Certifier`] built with a
//! recording [`Telemetry`] handle (and an armed-but-idle cancel token)
//! renders *byte-identical* reports to one built with the plain budget
//! constructor, for both the per-site and the joint claim. The recorder
//! observes the BDD engine; it never participates in it.

use scfi_core::{harden, ScfiConfig};
use scfi_faultsim::{enumerate_faults, CampaignConfig, RunControl};
use scfi_fsm::parse_fsm;
use scfi_symbolic::{Certifier, CertifyBudget};
use scfi_telemetry::Telemetry;

const DEMO: &str = "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }";

#[test]
fn certification_reports_are_byte_identical_with_recorder_installed() {
    let fsm = parse_fsm(DEMO).expect("demo parses");
    let h = harden(&fsm, &ScfiConfig::new(3)).expect("harden");
    // Per-site certification over the full pin-fault-inclusive space;
    // the joint claim over the register faults only (one selector
    // variable per site makes the wide space intractable by design).
    let faults = enumerate_faults(h.module(), &CampaignConfig::new().with_pin_faults());
    let reg_faults = enumerate_faults(
        h.module(),
        &CampaignConfig::new().register_region(h.module()),
    );
    let budget = CertifyBudget::unlimited();

    let plain = {
        let mut certifier = Certifier::with_budget(&h, budget).expect("setup within budget");
        let report = certifier.certify_all(&faults);
        let joint = certifier.certify_joint(&reg_faults, 2);
        format!("{report}\n{joint}")
    };

    let recorder = Telemetry::recording();
    let control = RunControl::unlimited();
    let instrumented = {
        let mut certifier =
            Certifier::with_instruments(&h, budget, recorder.clone(), Some(control))
                .expect("setup within budget");
        let report = certifier.certify_all(&faults);
        let joint = certifier.certify_joint(&reg_faults, 2);
        format!("{report}\n{joint}")
    };
    assert_eq!(
        instrumented, plain,
        "telemetry and an idle cancel token must not perturb certification"
    );

    // ... and the recorder really was live during the identical run.
    assert!(recorder.counter("scfi_bdd_ite_cache_hits_total").get() > 0);
    assert!(recorder.counter("scfi_bdd_ite_cache_misses_total").get() > 0);
    assert!(recorder.gauge("scfi_bdd_nodes_high_water").get() > 0);
    assert_eq!(
        recorder.histogram("scfi_certify_site_ns").snapshot().count,
        faults.len() as u64,
        "one site-duration observation per certified fault"
    );
}
