//! Certification smoke over the Table-1 suite: every FSM builds a
//! reachability fixpoint and proves the register-fault guarantee at
//! N = 2. The full {unprotected, redundancy, SCFI} × N ∈ {2, 3, 4}
//! cross-check against exhaustive campaign verdicts lives in the
//! workspace conformance suite (`tests/conformance.rs`).

use scfi_core::{harden, ScfiConfig};
use scfi_faultsim::{enumerate_faults, CampaignConfig};
use scfi_symbolic::Certifier;

fn register_fault_config(module: &scfi_netlist::Module) -> CampaignConfig {
    CampaignConfig::new().register_region(module)
}

#[test]
fn every_table1_fsm_proves_the_register_guarantee_at_n2() {
    for b in scfi_opentitan::all() {
        let start = std::time::Instant::now();
        let h = harden(&b.fsm, &ScfiConfig::new(2)).expect("harden");
        let faults = enumerate_faults(h.module(), &register_fault_config(h.module()));
        let mut certifier = Certifier::new(&h);
        let report = certifier.certify_all(&faults);
        assert!(report.all_proven(), "{}: {report}", b.name);
        // Reachable states: every FSM state's codeword plus ERROR — the
        // fixpoint must find exactly the operational state space, no
        // spurious extra words.
        assert_eq!(
            report.reachable_states,
            b.fsm.state_count() as u64 + 1,
            "{}: unexpected reachable set",
            b.name
        );
        eprintln!(
            "{:<18} {:>4} sites proven in {:?}",
            b.name,
            report.sites.len(),
            start.elapsed()
        );
    }
}
