//! Differential check of the k-step unrolling: on small FSMs, the
//! symbolic k-step certifier's verdict must match an *exhaustive* scalar
//! enumeration — every reachable start state × every admissible k-cycle
//! input schedule, simulated with the fault transient at step `j` — for
//! every register-space fault, every walk length k ∈ {1, 2, 3} and every
//! arming step j < k.
//!
//! The scalar side applies the campaign fold concretely: the walk escapes
//! iff some cycle silently hijacks (divergent yet valid state) and *no*
//! cycle detects (alert or invalid/error state). `Proved` must mean zero
//! escaping trajectories; `Counterexample` must come with a
//! replay-confirmed witness trajectory that the enumeration also finds.

use std::collections::{BTreeSet, VecDeque};

use scfi_core::{harden, ScfiConfig};
use scfi_faultsim::{enumerate_faults, CampaignConfig, Fault};
use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};
use scfi_netlist::Simulator;
use scfi_symbolic::{Certifier, CertifyModel, KStepVerdict};

fn small_fsm() -> Fsm {
    parse_fsm(
        "fsm walkable { inputs go, halt;
           state A { if go -> B; if halt -> D; }
           state B { if go -> C; }
           state C { if halt -> D; }
           state D { goto A; } }",
    )
    .expect("valid DSL")
}

/// Concrete BFS over the module under the admissible input words.
fn concrete_reachable(module: &scfi_netlist::Module, words: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let mut sim = Simulator::new(module);
    let reset: Vec<bool> = sim.register_values().to_vec();
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(reset.clone());
    queue.push_back(reset);
    while let Some(state) = queue.pop_front() {
        for word in words {
            sim.clear_faults();
            sim.reset_to(&state);
            sim.step(word);
            let next = sim.register_values().to_vec();
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    seen.into_iter().collect()
}

/// Exhaustive scalar oracle: does ANY (start state, schedule) pair escape
/// the k-cycle walk with `fault` transient at step `j`?
fn brute_force_escapes<M: CertifyModel>(
    model: &M,
    words: &[Vec<bool>],
    states: &[Vec<bool>],
    fault: Fault,
    k: usize,
    j: usize,
) -> bool {
    let module = model.module();
    let ports = model.detection_ports();
    let mut schedule = vec![0usize; k];
    loop {
        for start in states {
            let mut sim = Simulator::new(module);
            sim.reset_to(start);
            let golden: Vec<Vec<bool>> = schedule
                .iter()
                .map(|&w| {
                    sim.step(&words[w]);
                    sim.register_values().to_vec()
                })
                .collect();

            sim.clear_faults();
            sim.reset_to(start);
            let mut hijacked = false;
            let mut caught = false;
            for (t, &w) in schedule.iter().enumerate() {
                if t == j {
                    scfi_faultsim::arm(&mut sim, fault);
                }
                let out = sim.step(&words[w]);
                if t == j {
                    sim.clear_faults();
                }
                let state = sim.register_values().to_vec();
                let undetected = model.undetected_next_concrete(&state);
                let alerted = ports.iter().any(|&p| out[p]);
                if alerted || !undetected {
                    caught = true;
                }
                if undetected && state != golden[t] {
                    hijacked = true;
                }
            }
            if hijacked && !caught {
                return true;
            }
        }
        // Advance the schedule odometer.
        let mut pos = 0;
        loop {
            if pos == k {
                return false;
            }
            schedule[pos] += 1;
            if schedule[pos] < words.len() {
                break;
            }
            schedule[pos] = 0;
            pos += 1;
        }
    }
}

/// Runs the differential over every register fault × k × j.
fn assert_kstep_matches_brute_force<M: CertifyModel>(
    model: &M,
    words: &[Vec<bool>],
    what: &str,
) -> (usize, usize) {
    let faults = enumerate_faults(
        model.module(),
        &CampaignConfig::new().register_region(model.module()),
    );
    assert!(!faults.is_empty(), "{what}: empty fault space");
    let states = concrete_reachable(model.module(), words);
    let mut certifier = Certifier::new(model);
    let (mut proved, mut refuted) = (0, 0);
    for k in 1..=3usize {
        for j in 0..k {
            for &fault in &faults {
                let expected = brute_force_escapes(model, words, &states, fault, k, j);
                match certifier.certify_kstep(fault, k, j) {
                    KStepVerdict::Proved => {
                        assert!(
                            !expected,
                            "{what}: k={k} j={j} {fault:?}: symbolically proved but a \
                             scalar trajectory escapes"
                        );
                        proved += 1;
                    }
                    KStepVerdict::Counterexample(w) => {
                        assert!(
                            expected,
                            "{what}: k={k} j={j} {fault:?}: symbolic counterexample but \
                             no scalar trajectory escapes"
                        );
                        assert!(
                            w.confirmed,
                            "{what}: k={k} j={j} {fault:?}: witness did not replay"
                        );
                        assert_eq!(w.inputs.len(), k, "{what}: one input word per cycle");
                        refuted += 1;
                    }
                    KStepVerdict::Unknown { reason } => {
                        panic!("{what}: unbudgeted run returned Unknown: {reason}")
                    }
                }
            }
        }
    }
    (proved, refuted)
}

#[test]
fn scfi_kstep_verdicts_match_exhaustive_scalar_walks() {
    for n in [2usize, 3] {
        let h = harden(&small_fsm(), &ScfiConfig::new(n)).expect("harden");
        // The §5 interface assumption: only valid condition codewords.
        let words: Vec<Vec<bool>> = (0..h.cond_code().len())
            .map(|c| h.cond_code().word(c).iter().collect())
            .collect();
        let (proved, refuted) =
            assert_kstep_matches_brute_force(&h, &words, &format!("SCFI N={n}"));
        assert!(proved > 0, "N={n}: the suite must exercise proofs");
        assert_eq!(
            refuted, 0,
            "N={n}: no single register fault may escape a hardened walk"
        );
    }
}

#[test]
fn unprotected_kstep_verdicts_match_exhaustive_scalar_walks() {
    let fsm = small_fsm();
    let lowered = lower_unprotected(&fsm).expect("lowering");
    // No interface assumption: every raw input word is admissible.
    let n_in = lowered.module().inputs().len();
    let words: Vec<Vec<bool>> = (0..1usize << n_in)
        .map(|bits| (0..n_in).map(|i| bits >> i & 1 == 1).collect())
        .collect();
    let (_proved, refuted) = assert_kstep_matches_brute_force(&lowered, &words, "unprotected");
    assert!(
        refuted > 0,
        "an unprotected walk must have escaping trajectories"
    );
}
