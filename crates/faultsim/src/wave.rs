//! Batched 64-lane campaign execution over the packed simulator.
//!
//! The wave executor is the throughput core behind
//! [`run_exhaustive`](crate::run_exhaustive),
//! [`run_multi_fault`](crate::run_multi_fault) and
//! [`VulnerabilityMap`](crate::VulnerabilityMap): the `(scenario, faults)`
//! work list is chunked into waves of up to [`LANES`] injections, each wave
//! runs as one multi-cycle pass of a [`PackedSimulator`] (per-lane register
//! preloads, per-lane per-cycle input words, per-lane fault masks re-armed
//! between `step_into` calls so each lane's [`FaultTiming`] window opens
//! and closes on its own schedule), and lanes are classified cycle by
//! cycle with the per-cycle outcomes folded into a trajectory verdict per
//! lane. Simulator scratch — the compiled netlist, value arrays,
//! preload/output words and extraction buffers — is reused across every
//! wave of a worker.
//!
//! Waves are sharded across threads in contiguous blocks. The outcome of
//! item `i` is written to slot `i` regardless of which thread or lane
//! computed it, so results are deterministic: independent of the thread
//! count, the wave boundaries and the lane order.

use scfi_netlist::{extract_lane, PackedNetlist, PackedSimulator, LANES};

use crate::campaign::{Fault, FaultEffect, FaultSite, Outcome};
use crate::target::{FaultTarget, Scenario};

/// A flat `(scenario, faults)` work list: item `i` injects the fault group
/// `faults(i)` into scenario `scenario(i)`. Single-fault campaigns store
/// one fault per item; multi-fault campaigns store one group per run.
#[derive(Clone, Debug)]
pub(crate) struct WorkList {
    scenarios: Vec<u32>,
    /// Prefix offsets into `faults`, one extra entry at the end.
    offsets: Vec<u32>,
    faults: Vec<Fault>,
}

impl WorkList {
    pub(crate) fn with_capacity(items: usize) -> Self {
        let mut w = WorkList {
            scenarios: Vec::with_capacity(items),
            offsets: Vec::with_capacity(items + 1),
            faults: Vec::with_capacity(items),
        };
        w.offsets.push(0);
        w
    }

    /// Appends one item injecting `faults` simultaneously into `scenario`.
    ///
    /// # Panics
    ///
    /// Panics with a description of the limit if the scenario index or the
    /// accumulated fault count exceeds the packed `u32` representation
    /// (about 4.29 billion entries) — a campaign that large must be split
    /// into sub-campaigns rather than silently wrap and attribute
    /// outcomes to the wrong scenarios.
    pub(crate) fn push(&mut self, scenario: usize, faults: &[Fault]) {
        let scenario = u32::try_from(scenario)
            .expect("scenario index exceeds the work list's u32 range; split the campaign");
        self.scenarios.push(scenario);
        self.faults.extend_from_slice(faults);
        let end = u32::try_from(self.faults.len()).expect(
            "accumulated fault count exceeds the work list's u32 range; split the campaign",
        );
        self.offsets.push(end);
    }

    pub(crate) fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// The `(scenario, faults)` of item `i`.
    pub(crate) fn item(&self, i: usize) -> (usize, &[Fault]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (self.scenarios[i] as usize, &self.faults[lo..hi])
    }
}

/// Arms one fault in the selected lanes of a packed simulator. Mirrors the
/// scalar [`arm`](crate::campaign::arm) mapping exactly.
fn arm_lanes(sim: &mut PackedSimulator<'_>, fault: Fault, lanes: u64) {
    match (fault.site, fault.effect) {
        (FaultSite::CellOutput(c), FaultEffect::Flip) => sim.set_net_flip(c.net(), lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck0) => sim.set_net_stuck(c.net(), false, lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck1) => sim.set_net_stuck(c.net(), true, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Flip) => sim.set_pin_flip(c, p as usize, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Stuck0) => {
            sim.set_pin_stuck(c, p as usize, false, lanes)
        }
        (FaultSite::Pin(c, p), FaultEffect::Stuck1) => {
            sim.set_pin_stuck(c, p as usize, true, lanes)
        }
        (FaultSite::Register(c), _) => sim.flip_register(c, lanes),
    }
}

/// Executes the work list on the packed engine and returns one outcome per
/// item, in item order. `threads` worker threads share the compiled
/// netlist; each owns its simulator and scratch.
pub(crate) fn execute<T: FaultTarget>(target: &T, work: &WorkList, threads: usize) -> Vec<Outcome> {
    let n = work.len();
    let mut outcomes = vec![Outcome::Masked; n];
    if n == 0 {
        return outcomes;
    }
    let compiled = PackedNetlist::compile(target.module());
    let waves = n.div_ceil(LANES);
    let threads = threads.max(1).min(waves);
    if threads <= 1 {
        run_waves(target, &compiled, work, 0, &mut outcomes);
    } else {
        // Contiguous blocks of whole waves per worker; each worker writes
        // its own disjoint outcome slice.
        let per = waves.div_ceil(threads) * LANES;
        std::thread::scope(|scope| {
            for (t, chunk) in outcomes.chunks_mut(per).enumerate() {
                let compiled = &compiled;
                scope.spawn(move || run_waves(target, compiled, work, t * per, chunk));
            }
        });
    }
    outcomes
}

/// Runs the items `base..base + out.len()` of the work list, one wave of
/// up to [`LANES`] injections at a time, writing trajectory verdicts into
/// `out`.
///
/// Each wave simulates `max(lane cycles)` clock edges. Before every edge
/// the fault masks are rebuilt from scratch ([`PackedSimulator`]'s
/// `clear_faults` is O(armed faults)), arming each lane's net/pin faults
/// only while its [`FaultTiming`] window is open and applying register
/// flips once, at the window's first cycle — exactly the scalar reference
/// semantics of [`run_item_scalar`](crate::campaign::run_item_scalar).
/// Lanes whose scenario is shorter than the wave's longest keep stepping
/// (their inputs hold the last scheduled vector) but are neither faulted
/// nor classified past their own length.
fn run_waves<T: FaultTarget>(
    target: &T,
    compiled: &PackedNetlist,
    work: &WorkList,
    base: usize,
    out: &mut [Outcome],
) {
    let mut sim = PackedSimulator::new(compiled);
    let mut reg_words = vec![0u64; compiled.register_count()];
    let mut input_words = vec![0u64; compiled.input_count()];
    let mut out_words: Vec<u64> = Vec::with_capacity(compiled.output_count());
    let mut reg_bits: Vec<bool> = Vec::with_capacity(compiled.register_count());
    let mut out_bits: Vec<bool> = Vec::with_capacity(compiled.output_count());
    // Work lists are scenario-major, so a wave references very few distinct
    // scenarios; they are materialized once per wave, with the last one
    // carried over so a scenario spanning a wave boundary is not rebuilt.
    let mut scens: Vec<(usize, Scenario)> = Vec::new();
    let mut lane_scen = [0usize; LANES];

    let mut done = 0usize;
    while done < out.len() {
        let lanes = LANES.min(out.len() - done);
        reg_words.fill(0);
        let mut wave_cycles = 0usize;
        for (lane, slot_out) in lane_scen.iter_mut().enumerate().take(lanes) {
            let (scenario, _) = work.item(base + done + lane);
            let slot = match scens.iter().position(|s| s.0 == scenario) {
                Some(i) => i,
                None => {
                    let sc = target.scenario(scenario);
                    assert!(sc.cycles() >= 1, "scenario {scenario} has no cycles");
                    assert_eq!(
                        sc.regs.len(),
                        reg_words.len(),
                        "scenario register preload width mismatch"
                    );
                    for inputs in &sc.inputs {
                        assert_eq!(
                            inputs.len(),
                            input_words.len(),
                            "scenario input width mismatch"
                        );
                    }
                    scens.push((scenario, sc));
                    scens.len() - 1
                }
            };
            *slot_out = slot;
            let sc = &scens[slot].1;
            wave_cycles = wave_cycles.max(sc.cycles());
            let bit = 1u64 << lane;
            for (j, &v) in sc.regs.iter().enumerate() {
                if v {
                    reg_words[j] |= bit;
                }
            }
        }
        sim.set_register_words(&reg_words);
        let mut verdicts = [Outcome::Masked; LANES];
        for cycle in 0..wave_cycles {
            // Rebuild this cycle's fault masks: clear, then re-arm every
            // lane whose window is open. Register preloads landed before
            // any flip (flips mutate stored state, as in the scalar
            // engine); each lane's flips fire once, at its window start.
            sim.clear_faults();
            input_words.fill(0);
            for lane in 0..lanes {
                let sc = &scens[lane_scen[lane]].1;
                let bit = 1u64 << lane;
                let inputs = &sc.inputs[cycle.min(sc.cycles() - 1)];
                for (j, &v) in inputs.iter().enumerate() {
                    if v {
                        input_words[j] |= bit;
                    }
                }
                if cycle >= sc.cycles() {
                    continue; // past this lane's trajectory: no faults
                }
                let (_, faults) = work.item(base + done + lane);
                let armed = sc.timing.armed_at(cycle);
                let flips = sc.timing.flip_cycle() == cycle;
                for &f in faults {
                    if matches!(f.site, FaultSite::Register(_)) {
                        if flips {
                            arm_lanes(&mut sim, f, bit);
                        }
                    } else if armed {
                        arm_lanes(&mut sim, f, bit);
                    }
                }
            }
            sim.step_into(&input_words, &mut out_words);
            for lane in 0..lanes {
                let (scenario, _) = work.item(base + done + lane);
                let sc = &scens[lane_scen[lane]].1;
                if cycle >= sc.cycles() {
                    continue;
                }
                extract_lane(sim.register_words(), lane, &mut reg_bits);
                extract_lane(&out_words, lane, &mut out_bits);
                verdicts[lane] =
                    verdicts[lane].fold(target.classify(scenario, cycle, &reg_bits, &out_bits));
            }
        }
        out[done..done + lanes].copy_from_slice(&verdicts[..lanes]);
        // Keep only the most recent scenario for the next wave.
        if scens.len() > 1 {
            let last = scens.pop().expect("nonempty");
            scens.clear();
            scens.push(last);
        }
        done += lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{fault_list, CampaignConfig};
    use crate::target::ScfiTarget;
    use scfi_core::{harden, ScfiConfig};
    use scfi_fsm::parse_fsm;

    fn target_fsm() -> scfi_fsm::Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn work_list_round_trips_items() {
        let f = Fault {
            site: FaultSite::Register(scfi_netlist::CellId(3)),
            effect: FaultEffect::Flip,
        };
        let g = Fault {
            site: FaultSite::Pin(scfi_netlist::CellId(1), 2),
            effect: FaultEffect::Stuck1,
        };
        let mut w = WorkList::with_capacity(3);
        w.push(4, &[f]);
        w.push(9, &[f, g]);
        w.push(0, &[]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.item(0), (4, &[f][..]));
        assert_eq!(w.item(1), (9, &[f, g][..]));
        assert_eq!(w.item(2), (0, &[][..]));
    }

    #[test]
    fn outcomes_are_independent_of_thread_count() {
        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        let work = crate::campaign::exhaustive_work(&t, &faults);
        let one = execute(&t, &work, 1);
        let four = execute(&t, &work, 4);
        assert_eq!(one, four);
        assert_eq!(one.len(), work.len());
    }

    /// Lanes of *different* trajectory lengths inside the same wave: mix
    /// 1-cycle, 2-cycle and 4-cycle scenarios in one interleaved work list
    /// and check the wave verdicts item-for-item against independent
    /// scalar runs. Short lanes must neither be classified nor faulted
    /// past their own length while longer lanes keep stepping.
    #[test]
    fn mixed_length_lanes_in_one_wave_match_scalar() {
        use crate::campaign::run_item_scalar;
        use crate::target::{FaultTiming, ProtocolScenario};

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let cfg = h.cfg();
        let mut scenarios = Vec::new();
        for len in [1usize, 2, 4] {
            let mut edges = vec![0];
            while edges.len() < len {
                let at = cfg.edges()[*edges.last().unwrap()].to;
                edges.push(cfg.out_edge_indices(at)[0]);
            }
            for window in 0..len {
                scenarios.push(ProtocolScenario {
                    edges: edges.clone(),
                    timing: FaultTiming::Transient(window),
                });
            }
        }
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        // Interleave scenarios (fault-major) so one wave holds every
        // trajectory length — the opposite of the scenario-major layout.
        let mut work = WorkList::with_capacity(faults.len() * t.scenario_count());
        for fault in &faults {
            for s in 0..t.scenario_count() {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        let packed = execute(&t, &work, 1);
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        for (i, &verdict) in packed.iter().enumerate() {
            let (s, group) = work.item(i);
            let sc = t.scenario(s);
            let scalar = run_item_scalar(&t, &mut sim, s, &sc, group, &mut outputs);
            assert_eq!(verdict, scalar, "item {i} (scenario {s})");
        }
    }
}
