//! Batched multi-word wave execution of campaigns over the packed
//! simulator.
//!
//! The wave executor is the throughput core behind
//! [`run_exhaustive`](crate::run_exhaustive),
//! [`run_multi_fault`](crate::run_multi_fault) and
//! [`VulnerabilityMap`](crate::VulnerabilityMap): the `(scenario, faults)`
//! work list is chunked into waves of up to `64 · W` injections
//! (`W` = [`CampaignConfig::lane_words`](crate::CampaignConfig::lane_words)
//! lane words, i.e. 64, 128 or 256 lanes), each wave runs as one
//! multi-cycle pass of a [`PackedSimulator`]`<W>` (per-lane register
//! preloads, per-lane per-cycle input words, per-lane fault masks re-armed
//! between `step_into` calls so each lane's [`FaultTiming`] window opens
//! and closes on its own schedule), and lanes are classified cycle by
//! cycle with the per-cycle outcomes folded into a trajectory verdict per
//! lane. Simulator scratch — the compiled netlist, value arrays,
//! preload/output words and extraction buffers — is reused across every
//! wave of a worker.
//!
//! # Wave-level cycle skipping
//!
//! [`Outcome::fold`] makes `Detected` *terminal*: once a lane's trajectory
//! has folded to `Detected`, no later cycle can change its verdict. The
//! executor exploits this twice:
//!
//! * a lane that is past its scenario length or already `Detected` is
//!   *dead* — it is no longer driven, faulted, extracted or classified
//!   (extraction + oracle classification are the per-lane serial cost, so
//!   on detection-dominated campaigns this is most of the win);
//! * when every lane of a wave is dead, the remaining cycles of the wave
//!   are skipped outright — on long protocol scenarios whose faults are
//!   caught early, the wave stops stepping as soon as the last live lane
//!   folds.
//!
//! Both cuts are verdict-preserving by construction (dead lanes' folds are
//! already fixed points), so reports stay byte-identical to the scalar
//! reference — the differential suites assert this at every width.
//!
//! Waves are sharded across threads in contiguous blocks. The outcome of
//! item `i` is written to slot `i` regardless of which thread, wave or
//! lane computed it, so results are deterministic: independent of the
//! thread count, the lane-word width, the wave boundaries and the lane
//! order.

use scfi_netlist::{extract_lane, lane_mask, PackedNetlist, PackedSimulator, LANES};

use crate::campaign::{Fault, FaultEffect, FaultSite, Outcome};
use crate::target::{FaultTarget, Scenario};

/// A flat `(scenario, faults)` work list: item `i` injects the fault group
/// `faults(i)` into scenario `scenario(i)`. Single-fault campaigns store
/// one fault per item; multi-fault campaigns store one group per run.
#[derive(Clone, Debug)]
pub(crate) struct WorkList {
    scenarios: Vec<u32>,
    /// Prefix offsets into `faults`, one extra entry at the end.
    offsets: Vec<u32>,
    faults: Vec<Fault>,
}

impl WorkList {
    pub(crate) fn with_capacity(items: usize) -> Self {
        let mut w = WorkList {
            scenarios: Vec::with_capacity(items),
            offsets: Vec::with_capacity(items + 1),
            faults: Vec::with_capacity(items),
        };
        w.offsets.push(0);
        w
    }

    /// Appends one item injecting `faults` simultaneously into `scenario`.
    ///
    /// # Panics
    ///
    /// Panics with a description of the limit if the scenario index or the
    /// accumulated fault count exceeds the packed `u32` representation
    /// (about 4.29 billion entries) — a campaign that large must be split
    /// into sub-campaigns rather than silently wrap and attribute
    /// outcomes to the wrong scenarios.
    pub(crate) fn push(&mut self, scenario: usize, faults: &[Fault]) {
        let scenario = u32::try_from(scenario)
            .expect("scenario index exceeds the work list's u32 range; split the campaign");
        self.scenarios.push(scenario);
        self.faults.extend_from_slice(faults);
        let end = u32::try_from(self.faults.len()).expect(
            "accumulated fault count exceeds the work list's u32 range; split the campaign",
        );
        self.offsets.push(end);
    }

    pub(crate) fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// The `(scenario, faults)` of item `i`.
    pub(crate) fn item(&self, i: usize) -> (usize, &[Fault]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (self.scenarios[i] as usize, &self.faults[lo..hi])
    }
}

/// Arms one fault in the selected lanes of a packed simulator. Mirrors the
/// scalar [`arm`](crate::campaign::arm) mapping exactly.
fn arm_lanes<const W: usize>(sim: &mut PackedSimulator<'_, W>, fault: Fault, lanes: [u64; W]) {
    match (fault.site, fault.effect) {
        (FaultSite::CellOutput(c), FaultEffect::Flip) => sim.set_net_flip(c.net(), lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck0) => sim.set_net_stuck(c.net(), false, lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck1) => sim.set_net_stuck(c.net(), true, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Flip) => sim.set_pin_flip(c, p as usize, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Stuck0) => {
            sim.set_pin_stuck(c, p as usize, false, lanes)
        }
        (FaultSite::Pin(c, p), FaultEffect::Stuck1) => {
            sim.set_pin_stuck(c, p as usize, true, lanes)
        }
        (FaultSite::Register(c), _) => sim.flip_register(c, lanes),
    }
}

/// Executes the work list on the packed engine and returns one outcome per
/// item, in item order. `threads` worker threads share the compiled
/// netlist; each owns its simulator and scratch. `lane_words` selects the
/// wave width (`W` ∈ {1, 2, 4} — 64, 128 or 256 lanes per wave); the
/// outcome vector is identical for every width.
///
/// # Panics
///
/// Panics if `lane_words` is not 1, 2 or 4.
pub(crate) fn execute<T: FaultTarget>(
    target: &T,
    work: &WorkList,
    threads: usize,
    lane_words: usize,
) -> Vec<Outcome> {
    execute_counting(target, work, threads, lane_words).0
}

/// [`execute`], additionally returning the number of wave clock edges
/// actually stepped — the observable for wave-level cycle skipping (a
/// campaign whose faults are all caught on their first classified cycle
/// steps one edge per wave, however long its scenarios are).
pub(crate) fn execute_counting<T: FaultTarget>(
    target: &T,
    work: &WorkList,
    threads: usize,
    lane_words: usize,
) -> (Vec<Outcome>, u64) {
    match lane_words {
        1 => execute_waves::<T, 1>(target, work, threads),
        2 => execute_waves::<T, 2>(target, work, threads),
        4 => execute_waves::<T, 4>(target, work, threads),
        other => panic!("unsupported lane_words {other}: the packed engine runs W in {{1, 2, 4}}"),
    }
}

/// Monomorphized executor body for one wave width.
fn execute_waves<T: FaultTarget, const W: usize>(
    target: &T,
    work: &WorkList,
    threads: usize,
) -> (Vec<Outcome>, u64) {
    let n = work.len();
    let mut outcomes = vec![Outcome::Masked; n];
    if n == 0 {
        return (outcomes, 0);
    }
    let compiled = PackedNetlist::compile(target.module());
    let wave_lanes = LANES * W;
    let waves = n.div_ceil(wave_lanes);
    let threads = threads.max(1).min(waves);
    let stepped = if threads <= 1 {
        run_waves::<T, W>(target, &compiled, work, 0, &mut outcomes)
    } else {
        // Contiguous blocks of whole waves per worker; each worker writes
        // its own disjoint outcome slice.
        let per = waves.div_ceil(threads) * wave_lanes;
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for (t, chunk) in outcomes.chunks_mut(per).enumerate() {
                let (compiled, total) = (&compiled, &total);
                scope.spawn(move || {
                    let edges = run_waves::<T, W>(target, compiled, work, t * per, chunk);
                    total.fetch_add(edges, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        total.into_inner()
    };
    (outcomes, stepped)
}

/// Runs the items `base..base + out.len()` of the work list, one wave of
/// up to `64 · W` injections at a time, writing trajectory verdicts into
/// `out`.
///
/// Each wave simulates at most `max(lane cycles)` clock edges. Before
/// every edge the fault masks are rebuilt from scratch
/// ([`PackedSimulator`]'s `clear_faults` is O(armed faults)), arming each
/// *live* lane's net/pin faults only while its [`FaultTiming`] window is
/// open and applying register flips once, at the window's first cycle —
/// exactly the scalar reference semantics of
/// [`run_item_scalar`](crate::campaign::run_item_scalar). A lane is live
/// while the cycle is within its scenario and its folded verdict is not
/// yet terminal ([`Outcome::Detected`] absorbs every later fold); dead
/// lanes keep stepping with the wave but are neither driven, faulted nor
/// classified, and once every lane of the wave is dead the remaining
/// cycles are skipped entirely.
///
/// Returns the number of clock edges actually stepped across all waves.
fn run_waves<T: FaultTarget, const W: usize>(
    target: &T,
    compiled: &PackedNetlist,
    work: &WorkList,
    base: usize,
    out: &mut [Outcome],
) -> u64 {
    let wave_lanes = LANES * W;
    let mut sim = PackedSimulator::<W>::new(compiled);
    let mut reg_words = vec![[0u64; W]; compiled.register_count()];
    let mut input_words = vec![[0u64; W]; compiled.input_count()];
    let mut out_words: Vec<[u64; W]> = Vec::with_capacity(compiled.output_count());
    let mut reg_bits: Vec<bool> = Vec::with_capacity(compiled.register_count());
    let mut out_bits: Vec<bool> = Vec::with_capacity(compiled.output_count());
    // Work lists are scenario-major, so a wave references very few distinct
    // scenarios; they are materialized once per wave, with the last one
    // carried over so a scenario spanning a wave boundary is not rebuilt.
    let mut scens: Vec<(usize, Scenario)> = Vec::new();
    let mut lane_scen = vec![0usize; wave_lanes];
    let mut verdicts = vec![Outcome::Masked; wave_lanes];
    let mut stepped = 0u64;

    let mut done = 0usize;
    while done < out.len() {
        let lanes = wave_lanes.min(out.len() - done);
        reg_words.fill([0; W]);
        let mut wave_cycles = 0usize;
        for (lane, slot_out) in lane_scen.iter_mut().enumerate().take(lanes) {
            let (scenario, _) = work.item(base + done + lane);
            let slot = match scens.iter().position(|s| s.0 == scenario) {
                Some(i) => i,
                None => {
                    let sc = target.scenario(scenario);
                    assert!(sc.cycles() >= 1, "scenario {scenario} has no cycles");
                    assert_eq!(
                        sc.regs.len(),
                        reg_words.len(),
                        "scenario register preload width mismatch"
                    );
                    for inputs in &sc.inputs {
                        assert_eq!(
                            inputs.len(),
                            input_words.len(),
                            "scenario input width mismatch"
                        );
                    }
                    scens.push((scenario, sc));
                    scens.len() - 1
                }
            };
            *slot_out = slot;
            let sc = &scens[slot].1;
            wave_cycles = wave_cycles.max(sc.cycles());
            let bit = lane_mask::<W>(lane);
            for (j, &v) in sc.regs.iter().enumerate() {
                if v {
                    for k in 0..W {
                        reg_words[j][k] |= bit[k];
                    }
                }
            }
        }
        sim.set_register_words(&reg_words);
        verdicts[..lanes].fill(Outcome::Masked);
        for cycle in 0..wave_cycles {
            // Rebuild this cycle's fault masks: clear, then re-arm every
            // live lane whose window is open. Register preloads landed
            // before any flip (flips mutate stored state, as in the scalar
            // engine); each lane's flips fire once, at its window start.
            sim.clear_faults();
            input_words.fill([0; W]);
            let mut live = 0usize;
            for lane in 0..lanes {
                let sc = &scens[lane_scen[lane]].1;
                if cycle >= sc.cycles() || verdicts[lane] == Outcome::Detected {
                    // Dead lane: past its trajectory, or its verdict is
                    // already terminal — skip driving and faulting it.
                    continue;
                }
                live += 1;
                let bit = lane_mask::<W>(lane);
                for (j, &v) in sc.inputs[cycle].iter().enumerate() {
                    if v {
                        for k in 0..W {
                            input_words[j][k] |= bit[k];
                        }
                    }
                }
                let (_, faults) = work.item(base + done + lane);
                let armed = sc.timing.armed_at(cycle);
                let flips = sc.timing.flip_cycle() == cycle;
                for &f in faults {
                    if matches!(f.site, FaultSite::Register(_)) {
                        if flips {
                            arm_lanes(&mut sim, f, bit);
                        }
                    } else if armed {
                        arm_lanes(&mut sim, f, bit);
                    }
                }
            }
            if live == 0 {
                // Every lane's verdict is settled: skip the wave's
                // remaining cycles outright.
                break;
            }
            sim.step_into(&input_words, &mut out_words);
            stepped += 1;
            for lane in 0..lanes {
                let (scenario, _) = work.item(base + done + lane);
                let sc = &scens[lane_scen[lane]].1;
                if cycle >= sc.cycles() || verdicts[lane] == Outcome::Detected {
                    continue;
                }
                extract_lane(sim.register_words(), lane, &mut reg_bits);
                extract_lane(&out_words, lane, &mut out_bits);
                verdicts[lane] =
                    verdicts[lane].fold(target.classify(scenario, cycle, &reg_bits, &out_bits));
            }
        }
        out[done..done + lanes].copy_from_slice(&verdicts[..lanes]);
        // Keep only the most recent scenario for the next wave.
        if scens.len() > 1 {
            let last = scens.pop().expect("nonempty");
            scens.clear();
            scens.push(last);
        }
        done += lanes;
    }
    stepped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{fault_list, CampaignConfig};
    use crate::target::ScfiTarget;
    use scfi_core::{harden, ScfiConfig};
    use scfi_fsm::parse_fsm;

    fn target_fsm() -> scfi_fsm::Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn work_list_round_trips_items() {
        let f = Fault {
            site: FaultSite::Register(scfi_netlist::CellId(3)),
            effect: FaultEffect::Flip,
        };
        let g = Fault {
            site: FaultSite::Pin(scfi_netlist::CellId(1), 2),
            effect: FaultEffect::Stuck1,
        };
        let mut w = WorkList::with_capacity(3);
        w.push(4, &[f]);
        w.push(9, &[f, g]);
        w.push(0, &[]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.item(0), (4, &[f][..]));
        assert_eq!(w.item(1), (9, &[f, g][..]));
        assert_eq!(w.item(2), (0, &[][..]));
    }

    #[test]
    fn outcomes_are_independent_of_thread_count_and_width() {
        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        let work = crate::campaign::exhaustive_work(&t, &faults);
        let one = execute(&t, &work, 1, 1);
        assert_eq!(one.len(), work.len());
        for threads in [1, 4] {
            for lane_words in [1, 2, 4] {
                let got = execute(&t, &work, threads, lane_words);
                assert_eq!(one, got, "threads {threads}, lane_words {lane_words}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported lane_words")]
    fn unsupported_widths_are_rejected() {
        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let work = WorkList::with_capacity(0);
        let _ = execute(&t, &work, 1, 3);
    }

    /// Lanes of *different* trajectory lengths inside the same wave: mix
    /// 1-cycle, 2-cycle and 4-cycle scenarios in one interleaved work list
    /// and check the wave verdicts item-for-item against independent
    /// scalar runs, at every wave width. Short lanes must neither be
    /// classified nor faulted past their own length while longer lanes
    /// keep stepping.
    #[test]
    fn mixed_length_lanes_in_one_wave_match_scalar() {
        use crate::campaign::run_item_scalar;
        use crate::target::{FaultTiming, ProtocolScenario};

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let cfg = h.cfg();
        let mut scenarios = Vec::new();
        for len in [1usize, 2, 4] {
            let mut edges = vec![0];
            while edges.len() < len {
                let at = cfg.edges()[*edges.last().unwrap()].to;
                edges.push(cfg.out_edge_indices(at)[0]);
            }
            for window in 0..len {
                scenarios.push(ProtocolScenario {
                    edges: edges.clone(),
                    timing: FaultTiming::Transient(window),
                });
            }
        }
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        // Interleave scenarios (fault-major) so one wave holds every
        // trajectory length — the opposite of the scenario-major layout.
        let mut work = WorkList::with_capacity(faults.len() * t.scenario_count());
        for fault in &faults {
            for s in 0..t.scenario_count() {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        let scalar: Vec<Outcome> = (0..work.len())
            .map(|i| {
                let (s, group) = work.item(i);
                let sc = t.scenario(s);
                run_item_scalar(&t, &mut sim, s, &sc, group, &mut outputs)
            })
            .collect();
        for lane_words in [1, 2, 4] {
            let packed = execute(&t, &work, 1, lane_words);
            assert_eq!(packed, scalar, "lane_words {lane_words}");
        }
    }

    /// Builds a work list of register-flip faults over depth-4 walks whose
    /// fault window is chosen per item by `window`.
    fn walk_work(
        h: &scfi_core::HardenedFsm,
        window: impl Fn(usize) -> usize,
        items_per_walk: usize,
    ) -> (Vec<crate::target::ProtocolScenario>, Vec<Fault>) {
        use crate::target::{FaultTiming, ProtocolScenario};
        let cfg = h.cfg();
        let walks = cfg.random_walks(4, 0xC1C1E);
        let mut scenarios = Vec::new();
        for walk in &walks {
            for _ in 0..items_per_walk {
                scenarios.push(ProtocolScenario {
                    edges: walk.clone(),
                    timing: FaultTiming::Transient(window(scenarios.len()) % 4),
                });
            }
        }
        let faults: Vec<Fault> = h
            .module()
            .registers()
            .iter()
            .map(|&r| Fault {
                site: FaultSite::Register(r),
                effect: FaultEffect::Flip,
            })
            .collect();
        (scenarios, faults)
    }

    /// All lanes of every wave fold to `Detected` on their very first
    /// classified cycle (SCFI detects single register flips immediately:
    /// the corrupted codeword is invalid, so the next state is ERROR).
    /// With the fault window at cycle 0 the executor must early-exit each
    /// wave after one stepped edge — a 4× cycle cut on depth-4 walks —
    /// while the verdicts stay identical to the scalar reference that
    /// steps every scheduled cycle.
    #[test]
    fn waves_detecting_on_cycle_zero_early_exit() {
        use crate::campaign::run_item_scalar;

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let (scenarios, faults) = walk_work(&h, |_| 0, 1);
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let mut work = WorkList::with_capacity(t.scenario_count() * faults.len());
        for s in 0..t.scenario_count() {
            for fault in &faults {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        for lane_words in [1usize, 2, 4] {
            let (outcomes, stepped) = execute_counting(&t, &work, 1, lane_words);
            let waves = work.len().div_ceil(LANES * lane_words) as u64;
            assert_eq!(
                stepped, waves,
                "lane_words {lane_words}: every wave must stop after one edge"
            );
            for (i, &verdict) in outcomes.iter().enumerate() {
                let (s, group) = work.item(i);
                let sc = t.scenario(s);
                assert_eq!(verdict, Outcome::Detected, "item {i}");
                assert_eq!(
                    verdict,
                    run_item_scalar(&t, &mut sim, s, &sc, group, &mut outputs),
                    "item {i}"
                );
            }
        }
    }

    /// A W = 4 wave whose four *words* carry four different transient
    /// windows: item `i` glitches cycle `(i / 64) % 4` of the same depth-4
    /// walk, so lanes in word 0 arm at cycle 0 while lanes in word 3 arm
    /// at cycle 3. The per-word fault re-arm schedule must keep them
    /// independent and match the scalar reference item for item; the
    /// stepped-edge count must still undercut the naive 4-cycles-per-wave
    /// schedule (no lane can fold before its window opens, so each wave
    /// runs exactly as long as its latest window).
    #[test]
    fn w4_wave_with_independent_windows_per_word_matches_scalar() {
        use crate::campaign::run_item_scalar;

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let n_regs = h.module().registers().len();
        // 64 / n_regs scenarios per window step give each word one window.
        let (scenarios, faults) = walk_work(&h, |i| i / (64 / n_regs).max(1), 64 / n_regs);
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let mut work = WorkList::with_capacity(t.scenario_count() * faults.len());
        for s in 0..t.scenario_count() {
            for fault in &faults {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        let (outcomes, stepped) = execute_counting(&t, &work, 1, 4);
        let waves = work.len().div_ceil(LANES * 4) as u64;
        assert!(
            stepped < 4 * waves,
            "mixed windows must still skip trailing cycles: {stepped} vs naive {}",
            4 * waves
        );
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        for (i, &verdict) in outcomes.iter().enumerate() {
            let (s, group) = work.item(i);
            let sc = t.scenario(s);
            assert_eq!(
                verdict,
                run_item_scalar(&t, &mut sim, s, &sc, group, &mut outputs),
                "item {i}"
            );
        }
    }
}
