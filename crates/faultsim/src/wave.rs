//! Batched 64-lane campaign execution over the packed simulator.
//!
//! The wave executor is the throughput core behind
//! [`run_exhaustive`](crate::run_exhaustive),
//! [`run_multi_fault`](crate::run_multi_fault) and
//! [`VulnerabilityMap`](crate::VulnerabilityMap): the `(scenario, faults)`
//! work list is chunked into waves of up to [`LANES`] injections, each wave
//! runs as one pass of a [`PackedSimulator`] (per-lane register preloads,
//! per-lane fault masks, one shared clock edge), and lanes are classified
//! by extracting each lane's registers and outputs. Simulator scratch —
//! the compiled netlist, value arrays, preload/output words and extraction
//! buffers — is reused across every wave of a worker.
//!
//! Waves are sharded across threads in contiguous blocks. The outcome of
//! item `i` is written to slot `i` regardless of which thread or lane
//! computed it, so results are deterministic: independent of the thread
//! count, the wave boundaries and the lane order.

use scfi_netlist::{extract_lane, PackedNetlist, PackedSimulator, LANES};

use crate::campaign::{Fault, FaultEffect, FaultSite, Outcome};
use crate::target::FaultTarget;

/// A flat `(scenario, faults)` work list: item `i` injects the fault group
/// `faults(i)` into scenario `scenario(i)`. Single-fault campaigns store
/// one fault per item; multi-fault campaigns store one group per run.
#[derive(Clone, Debug)]
pub(crate) struct WorkList {
    scenarios: Vec<u32>,
    /// Prefix offsets into `faults`, one extra entry at the end.
    offsets: Vec<u32>,
    faults: Vec<Fault>,
}

impl WorkList {
    pub(crate) fn with_capacity(items: usize) -> Self {
        let mut w = WorkList {
            scenarios: Vec::with_capacity(items),
            offsets: Vec::with_capacity(items + 1),
            faults: Vec::with_capacity(items),
        };
        w.offsets.push(0);
        w
    }

    /// Appends one item injecting `faults` simultaneously into `scenario`.
    pub(crate) fn push(&mut self, scenario: usize, faults: &[Fault]) {
        self.scenarios.push(scenario as u32);
        self.faults.extend_from_slice(faults);
        self.offsets.push(self.faults.len() as u32);
    }

    pub(crate) fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// The `(scenario, faults)` of item `i`.
    pub(crate) fn item(&self, i: usize) -> (usize, &[Fault]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (self.scenarios[i] as usize, &self.faults[lo..hi])
    }
}

/// Arms one fault in the selected lanes of a packed simulator. Mirrors the
/// scalar [`arm`](crate::campaign::arm) mapping exactly.
fn arm_lanes(sim: &mut PackedSimulator<'_>, fault: Fault, lanes: u64) {
    match (fault.site, fault.effect) {
        (FaultSite::CellOutput(c), FaultEffect::Flip) => sim.set_net_flip(c.net(), lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck0) => sim.set_net_stuck(c.net(), false, lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck1) => sim.set_net_stuck(c.net(), true, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Flip) => sim.set_pin_flip(c, p as usize, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Stuck0) => {
            sim.set_pin_stuck(c, p as usize, false, lanes)
        }
        (FaultSite::Pin(c, p), FaultEffect::Stuck1) => {
            sim.set_pin_stuck(c, p as usize, true, lanes)
        }
        (FaultSite::Register(c), _) => sim.flip_register(c, lanes),
    }
}

/// Executes the work list on the packed engine and returns one outcome per
/// item, in item order. `threads` worker threads share the compiled
/// netlist; each owns its simulator and scratch.
pub(crate) fn execute<T: FaultTarget>(target: &T, work: &WorkList, threads: usize) -> Vec<Outcome> {
    let n = work.len();
    let mut outcomes = vec![Outcome::Masked; n];
    if n == 0 {
        return outcomes;
    }
    let compiled = PackedNetlist::compile(target.module());
    let waves = n.div_ceil(LANES);
    let threads = threads.max(1).min(waves);
    if threads <= 1 {
        run_waves(target, &compiled, work, 0, &mut outcomes);
    } else {
        // Contiguous blocks of whole waves per worker; each worker writes
        // its own disjoint outcome slice.
        let per = waves.div_ceil(threads) * LANES;
        std::thread::scope(|scope| {
            for (t, chunk) in outcomes.chunks_mut(per).enumerate() {
                let compiled = &compiled;
                scope.spawn(move || run_waves(target, compiled, work, t * per, chunk));
            }
        });
    }
    outcomes
}

/// Runs the items `base..base + out.len()` of the work list, one wave of
/// up to [`LANES`] injections at a time, writing outcomes into `out`.
fn run_waves<T: FaultTarget>(
    target: &T,
    compiled: &PackedNetlist,
    work: &WorkList,
    base: usize,
    out: &mut [Outcome],
) {
    let mut sim = PackedSimulator::new(compiled);
    let mut reg_words = vec![0u64; compiled.register_count()];
    let mut input_words = vec![0u64; compiled.input_count()];
    let mut out_words: Vec<u64> = Vec::with_capacity(compiled.output_count());
    let mut reg_bits: Vec<bool> = Vec::with_capacity(compiled.register_count());
    let mut out_bits: Vec<bool> = Vec::with_capacity(compiled.output_count());
    // Work lists are scenario-major, so caching the last scenario's preload
    // makes the per-lane setup a pure bit-scatter for almost every wave.
    let mut cached: Option<(usize, Vec<bool>, Vec<bool>)> = None;

    let mut done = 0usize;
    while done < out.len() {
        let lanes = LANES.min(out.len() - done);
        sim.clear_faults();
        reg_words.fill(0);
        input_words.fill(0);
        for lane in 0..lanes {
            let (scenario, _) = work.item(base + done + lane);
            if cached.as_ref().map(|c| c.0) != Some(scenario) {
                let (regs, inputs) = target.scenario(scenario);
                assert_eq!(
                    regs.len(),
                    reg_words.len(),
                    "scenario register preload width mismatch"
                );
                assert_eq!(
                    inputs.len(),
                    input_words.len(),
                    "scenario input width mismatch"
                );
                cached = Some((scenario, regs, inputs));
            }
            let (_, regs, inputs) = cached.as_ref().expect("cached scenario");
            let bit = 1u64 << lane;
            for (j, &v) in regs.iter().enumerate() {
                if v {
                    reg_words[j] |= bit;
                }
            }
            for (j, &v) in inputs.iter().enumerate() {
                if v {
                    input_words[j] |= bit;
                }
            }
        }
        // Register preloads must land before register-flip faults arm:
        // flips mutate the stored state, as in the scalar engine.
        sim.set_register_words(&reg_words);
        for lane in 0..lanes {
            let (_, faults) = work.item(base + done + lane);
            for &f in faults {
                arm_lanes(&mut sim, f, 1u64 << lane);
            }
        }
        sim.step_into(&input_words, &mut out_words);
        for lane in 0..lanes {
            let (scenario, _) = work.item(base + done + lane);
            extract_lane(sim.register_words(), lane, &mut reg_bits);
            extract_lane(&out_words, lane, &mut out_bits);
            out[done + lane] = target.classify(scenario, &reg_bits, &out_bits);
        }
        done += lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{fault_list, CampaignConfig};
    use crate::target::ScfiTarget;
    use scfi_core::{harden, ScfiConfig};
    use scfi_fsm::parse_fsm;

    fn target_fsm() -> scfi_fsm::Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn work_list_round_trips_items() {
        let f = Fault {
            site: FaultSite::Register(scfi_netlist::CellId(3)),
            effect: FaultEffect::Flip,
        };
        let g = Fault {
            site: FaultSite::Pin(scfi_netlist::CellId(1), 2),
            effect: FaultEffect::Stuck1,
        };
        let mut w = WorkList::with_capacity(3);
        w.push(4, &[f]);
        w.push(9, &[f, g]);
        w.push(0, &[]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.item(0), (4, &[f][..]));
        assert_eq!(w.item(1), (9, &[f, g][..]));
        assert_eq!(w.item(2), (0, &[][..]));
    }

    #[test]
    fn outcomes_are_independent_of_thread_count() {
        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        let work = crate::campaign::exhaustive_work(&t, &faults);
        let one = execute(&t, &work, 1);
        let four = execute(&t, &work, 4);
        assert_eq!(one, four);
        assert_eq!(one.len(), work.len());
    }
}
