//! Batched multi-word wave execution of campaigns over the packed
//! simulator.
//!
//! The wave executor is the throughput core behind the packed and SIMD
//! [campaign backends](crate::backends): the `(scenario, faults)`
//! [`WorkList`] is chunked into waves of up to `64 · W` injections
//! (`W` = [`CampaignConfig::lane_words`](crate::CampaignConfig::lane_words)
//! lane words for the packed backend, eight words for the SIMD backend),
//! each wave runs as one multi-cycle pass of a [`PackedSimulator`]`<W>`
//! (per-lane register preloads, per-lane per-cycle input words, per-lane
//! fault masks armed while each lane's [`FaultTiming`] window is open),
//! and lanes are classified cycle by cycle with the per-cycle outcomes
//! folded into a trajectory verdict per lane. Simulator scratch — the
//! compiled netlist, value arrays, preload/output words and extraction
//! buffers — is reused across every wave of a worker.
//!
//! # Word-parallel classification
//!
//! When the target provides a [`WaveOracle`] (all three §6.1 targets do),
//! classification happens directly on the packed `[u64; W]` register and
//! output words: codeword decode, alert lines and the invalid/zero
//! detection rules are bitwise logic over whole 64-lane words, so the
//! per-lane `extract_lane` + scalar `classify` cost — previously the
//! dominant serial cost at W = 4 — disappears from the hot path. Targets
//! without an oracle fall back to per-lane extraction, which remains
//! bit-for-bit equivalent.
//!
//! # Incremental re-simulation
//!
//! On cycles where no net/pin fault mask is armed — register-flip
//! campaigns, and the pre-/post-window cycles of transient multi-cycle
//! schedules — every lane is the fault-free baseline plus a sparse state
//! divergence. The executor then steps through
//! [`PackedSimulator::eval_comb_pruned`] against a lazily computed scalar
//! baseline trace, skipping every op whose inputs sit on the baseline in
//! all live lanes — the campaign-side twin of the symbolic engine's cone
//! pruning.
//!
//! # Wave-level cycle skipping
//!
//! [`Outcome::fold`] makes `Detected` *terminal*: once a lane's trajectory
//! has folded to `Detected`, no later cycle can change its verdict. The
//! executor exploits this twice:
//!
//! * a lane that is past its scenario length or already `Detected` is
//!   *dead* — it is no longer driven, faulted or classified;
//! * when every lane of a wave is dead, the remaining cycles of the wave
//!   are skipped outright — on long protocol scenarios whose faults are
//!   caught early, the wave stops stepping as soon as the last live lane
//!   folds.
//!
//! The fault masks themselves are rebuilt only when they can have changed:
//! the live set moved, or some live lane's fault window opened or closed.
//! An all-`Permanent` wave arms its masks once and never touches them
//! again.
//!
//! All cuts are verdict-preserving by construction (dead lanes' folds are
//! already fixed points, skipped rebuilds leave identical masks, pruned
//! settles reproduce live-lane values exactly), so reports stay
//! byte-identical to the scalar reference — the differential suites assert
//! this at every width.
//!
//! Waves are sharded across threads in contiguous blocks. The outcome of
//! item `i` is written to slot `i` regardless of which thread, wave or
//! lane computed it, so results are deterministic: independent of the
//! thread count, the lane-word width, the wave boundaries and the lane
//! order.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use scfi_netlist::{
    extract_lane, lane_mask, NetId, PackedNetlist, PackedSimulator, Simulator, LANES,
};
use scfi_telemetry::{Histogram, Telemetry};

use crate::campaign::{Fault, FaultEffect, FaultSite, Outcome};
use crate::control::{CampaignError, LaneWidth, PartialReport, RunControl, StopReason};
use crate::target::{FaultTarget, FaultTiming, Scenario};

/// A flat `(scenario, faults)` work list: item `i` injects the fault group
/// `faults(i)` into scenario `scenario(i)`. Single-fault campaigns store
/// one fault per item; multi-fault campaigns store one group per run.
///
/// This is the unit of work a [`CampaignBackend`](crate::CampaignBackend)
/// executes: backends return one [`Outcome`] per item, in item order.
/// Campaign drivers build scenario-major lists (all faults of scenario 0,
/// then scenario 1, …), which the wave executor exploits; correctness does
/// not depend on the ordering.
#[derive(Clone, Debug)]
pub struct WorkList {
    scenarios: Vec<u32>,
    /// Prefix offsets into `faults`, one extra entry at the end.
    offsets: Vec<u32>,
    faults: Vec<Fault>,
    /// Per-fault arming-window overrides, parallel to `faults`: `None`
    /// falls through to the scenario's
    /// [`FaultSchedule`](crate::FaultSchedule). Plain pushes fill `None`,
    /// so single-window campaigns carry no per-item timing state.
    windows: Vec<Option<FaultTiming>>,
}

impl WorkList {
    /// An empty work list with room for `items` entries.
    pub fn with_capacity(items: usize) -> Self {
        let mut w = WorkList {
            scenarios: Vec::with_capacity(items),
            offsets: Vec::with_capacity(items + 1),
            faults: Vec::with_capacity(items),
            windows: Vec::with_capacity(items),
        };
        w.offsets.push(0);
        w
    }

    /// Appends one item injecting `faults` simultaneously into `scenario`.
    ///
    /// # Panics
    ///
    /// Panics with the [`CampaignError::WorkListOverflow`] description if
    /// the scenario index or the accumulated fault count exceeds the
    /// packed `u32` representation; use [`try_push`](Self::try_push) to
    /// handle oversized campaigns as a recoverable error.
    pub fn push(&mut self, scenario: usize, faults: &[Fault]) {
        self.try_push(scenario, faults)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Appends one item injecting `faults` simultaneously into `scenario`,
    /// or reports [`CampaignError::WorkListOverflow`] if the scenario
    /// index or the accumulated fault count exceeds the packed `u32`
    /// representation (about 4.29 billion entries) — a campaign that
    /// large must be split into sub-campaigns rather than silently wrap
    /// and attribute outcomes to the wrong scenarios.
    pub fn try_push(&mut self, scenario: usize, faults: &[Fault]) -> Result<(), CampaignError> {
        const LIMIT: usize = u32::MAX as usize;
        let Ok(scenario) = u32::try_from(scenario) else {
            return Err(CampaignError::WorkListOverflow {
                items: scenario,
                limit: LIMIT,
            });
        };
        let end = self.faults.len() + faults.len();
        let Ok(end) = u32::try_from(end) else {
            return Err(CampaignError::WorkListOverflow {
                items: end,
                limit: LIMIT,
            });
        };
        self.scenarios.push(scenario);
        self.faults.extend_from_slice(faults);
        self.windows.resize(self.faults.len(), None);
        self.offsets.push(end);
        Ok(())
    }

    /// Appends one item whose fault `j` overrides its arming window with
    /// `windows[j]` — how sampled multi-fault campaigns give each drawn
    /// glitch an independent timing without materializing a scenario per
    /// draw.
    ///
    /// # Panics
    ///
    /// Panics if `windows.len() != faults.len()`, or with the
    /// [`CampaignError::WorkListOverflow`] description on overflow.
    pub fn push_scheduled(&mut self, scenario: usize, faults: &[Fault], windows: &[FaultTiming]) {
        self.try_push_scheduled(scenario, faults, windows)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`push_scheduled`](Self::push_scheduled) as a fallible push,
    /// reporting [`CampaignError::WorkListOverflow`] like
    /// [`try_push`](Self::try_push).
    ///
    /// # Panics
    ///
    /// Panics if `windows.len() != faults.len()`.
    pub fn try_push_scheduled(
        &mut self,
        scenario: usize,
        faults: &[Fault],
        windows: &[FaultTiming],
    ) -> Result<(), CampaignError> {
        assert_eq!(
            windows.len(),
            faults.len(),
            "one arming window per fault of the group"
        );
        self.try_push(scenario, faults)?;
        let lo = self.faults.len() - faults.len();
        for (slot, &w) in self.windows[lo..].iter_mut().zip(windows) {
            *slot = Some(w);
        }
        Ok(())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the list holds no items.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The `(scenario, faults)` of item `i`.
    pub fn item(&self, i: usize) -> (usize, &[Fault]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (self.scenarios[i] as usize, &self.faults[lo..hi])
    }

    /// Item `i`'s per-fault window overrides, parallel to its fault group
    /// (`None` entries defer to the scenario's schedule). Resolve fault
    /// `j`'s effective window with
    /// [`Scenario::fault_window`](crate::Scenario::fault_window).
    pub fn windows(&self, i: usize) -> &[Option<FaultTiming>] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.windows[lo..hi]
    }
}

/// Execution counters from a wave run — observables for the cycle-skipping
/// and mask-rebuild optimizations. Not part of the report contract; the
/// differential tests use them to pin that the cuts actually fire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct WaveStats {
    /// Waves admitted and executed.
    pub waves: u64,
    /// Injections (lanes) carried by the executed waves.
    pub injections: u64,
    /// Wave clock edges actually stepped.
    pub stepped: u64,
    /// Scheduled wave cycles never stepped because every lane's verdict
    /// settled first (the wave-level early exit).
    pub skipped: u64,
    /// Cycles that cleared and re-armed the fault masks.
    pub rebuilds: u64,
    /// Stepped cycles that kept the previous cycle's masks — no live
    /// lane's window opened or closed and the live set held, so the
    /// clear-and-re-arm sweep was skipped.
    pub elided_rebuilds: u64,
    /// Stepped cycles classified word-parallel through the target's
    /// [`WaveOracle`](crate::WaveOracle).
    pub oracle_fastpath_cycles: u64,
    /// Stepped cycles classified through the per-lane `extract_lane`
    /// fallback (targets without an oracle).
    pub oracle_fallback_cycles: u64,
}

impl WaveStats {
    /// Accumulates another worker's counters.
    pub fn merge(&mut self, other: &WaveStats) {
        self.waves += other.waves;
        self.injections += other.injections;
        self.stepped += other.stepped;
        self.skipped += other.skipped;
        self.rebuilds += other.rebuilds;
        self.elided_rebuilds += other.elided_rebuilds;
        self.oracle_fastpath_cycles += other.oracle_fastpath_cycles;
        self.oracle_fallback_cycles += other.oracle_fallback_cycles;
    }

    /// Flushes the counters into their telemetry series (one relaxed
    /// `fetch_add` per series; a no-op on a disabled handle). Called once
    /// per run, off the wave hot path.
    pub fn flush(&self, telemetry: &Telemetry) {
        if !telemetry.enabled() {
            return;
        }
        telemetry
            .counter("scfi_campaign_waves_total")
            .add(self.waves);
        telemetry
            .counter("scfi_campaign_injections_total")
            .add(self.injections);
        telemetry
            .counter("scfi_campaign_cycles_stepped_total")
            .add(self.stepped);
        telemetry
            .counter("scfi_campaign_cycles_skipped_total")
            .add(self.skipped);
        telemetry
            .counter("scfi_campaign_mask_rebuilds_total")
            .add(self.rebuilds);
        telemetry
            .counter("scfi_campaign_mask_rebuild_elisions_total")
            .add(self.elided_rebuilds);
        telemetry
            .counter("scfi_campaign_oracle_fastpath_cycles_total")
            .add(self.oracle_fastpath_cycles);
        telemetry
            .counter("scfi_campaign_oracle_fallback_cycles_total")
            .add(self.oracle_fallback_cycles);
    }
}

/// Arms one fault in the selected lanes of a packed simulator. Mirrors the
/// scalar [`arm`](crate::campaign::arm) mapping exactly.
fn arm_lanes<const W: usize>(sim: &mut PackedSimulator<'_, W>, fault: Fault, lanes: [u64; W]) {
    match (fault.site, fault.effect) {
        (FaultSite::CellOutput(c), FaultEffect::Flip) => sim.set_net_flip(c.net(), lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck0) => sim.set_net_stuck(c.net(), false, lanes),
        (FaultSite::CellOutput(c), FaultEffect::Stuck1) => sim.set_net_stuck(c.net(), true, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Flip) => sim.set_pin_flip(c, p as usize, lanes),
        (FaultSite::Pin(c, p), FaultEffect::Stuck0) => {
            sim.set_pin_stuck(c, p as usize, false, lanes)
        }
        (FaultSite::Pin(c, p), FaultEffect::Stuck1) => {
            sim.set_pin_stuck(c, p as usize, true, lanes)
        }
        (FaultSite::Register(c), _) => sim.flip_register(c, lanes),
    }
}

/// Converts a raw lane-word count into a validated [`LaneWidth`],
/// admitting the SIMD backend's internal W = 8 alongside the
/// configurable {1, 2, 4}.
///
/// # Panics
///
/// Panics with the unified [`CampaignError::InvalidLaneWords`] message
/// for any other width.
#[cfg(test)]
fn width_from_words(lane_words: usize) -> LaneWidth {
    if lane_words == LaneWidth::SIMD.words() {
        LaneWidth::SIMD
    } else {
        LaneWidth::new(lane_words).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Everything one controlled run produced: slot-ordered outcomes
/// (`None` for items whose wave never ran or panicked), execution
/// counters, the first stop reason, and any caught wave panics.
pub(crate) struct RunOutput {
    pub outcomes: Vec<Option<Outcome>>,
    pub stats: WaveStats,
    pub stopped: Option<StopReason>,
    pub panics: Vec<(Range<usize>, String)>,
}

/// Extracts a printable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Folds a [`RunOutput`] into the backend result contract: a complete
/// slot-ordered outcome vector, or the typed [`CampaignError`] carrying
/// the completed portion. A caught wave panic outranks an interruption
/// (its data loss is unrecoverable; an interrupted run can be resumed).
pub(crate) fn finish_run(
    work: &WorkList,
    run: RunOutput,
) -> Result<(Vec<Outcome>, WaveStats), CampaignError> {
    let RunOutput {
        outcomes,
        stats,
        stopped,
        mut panics,
    } = run;
    if !panics.is_empty() {
        let (item_range, message) = panics.remove(0);
        return Err(CampaignError::WorkerPanic {
            item_range,
            message,
            partial: Box::new(PartialReport::from_outcomes(work, outcomes)),
        });
    }
    if let Some(reason) = stopped {
        return Err(CampaignError::Interrupted {
            reason,
            partial: Box::new(PartialReport::from_outcomes(work, outcomes)),
        });
    }
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("an uninterrupted run fills every slot"))
        .collect();
    Ok((outcomes, stats))
}

/// Executes the work list on the packed engine and returns one outcome per
/// item, in item order. `threads` worker threads share the compiled
/// netlist; each owns its simulator and scratch. `lane_words` selects the
/// wave width (`W` ∈ {1, 2, 4} for the tunable packed backend, 8 for the
/// fixed SIMD wave); the outcome vector is identical for every width.
///
/// # Panics
///
/// Panics if `lane_words` is not 1, 2, 4 or 8, or if a wave panics.
#[cfg(test)]
pub(crate) fn execute<T: FaultTarget>(
    target: &T,
    work: &WorkList,
    threads: usize,
    lane_words: usize,
) -> Vec<Outcome> {
    execute_counting(target, work, threads, lane_words).0
}

/// [`execute`], additionally returning the [`WaveStats`] counters — the
/// observables for wave-level cycle skipping (a campaign whose faults are
/// all caught on their first classified cycle steps one edge per wave,
/// however long its scenarios are) and mask-rebuild elision (an
/// all-`Permanent` wave rebuilds once).
#[cfg(test)]
pub(crate) fn execute_counting<T: FaultTarget>(
    target: &T,
    work: &WorkList,
    threads: usize,
    lane_words: usize,
) -> (Vec<Outcome>, WaveStats) {
    let width = width_from_words(lane_words);
    try_execute_counting(
        target,
        work,
        threads,
        width,
        None,
        &RunControl::unlimited(),
        &Telemetry::off(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// The controlled entry point behind the packed and SIMD backends: runs
/// under `control`, admitting one wave at a time, and returns either the
/// complete slot-ordered outcome vector or the typed error carrying the
/// completed portion. `precompiled`, when supplied (e.g. from a compile
/// cache via [`CampaignConfig::precompiled`](crate::CampaignConfig::precompiled)),
/// must be the compilation of `target.module()` and replaces the
/// per-run [`PackedNetlist::compile`].
pub(crate) fn try_execute<T: FaultTarget>(
    target: &T,
    work: &WorkList,
    threads: usize,
    width: LaneWidth,
    precompiled: Option<&PackedNetlist>,
    control: &RunControl,
    telemetry: &Telemetry,
) -> Result<Vec<Outcome>, CampaignError> {
    try_execute_counting(
        target,
        work,
        threads,
        width,
        precompiled,
        control,
        telemetry,
    )
    .map(|(outcomes, _)| outcomes)
}

/// [`try_execute`] with the [`WaveStats`] counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_execute_counting<T: FaultTarget>(
    target: &T,
    work: &WorkList,
    threads: usize,
    width: LaneWidth,
    precompiled: Option<&PackedNetlist>,
    control: &RunControl,
    telemetry: &Telemetry,
) -> Result<(Vec<Outcome>, WaveStats), CampaignError> {
    let run = match width.words() {
        1 => execute_waves::<T, 1>(target, work, threads, precompiled, control, telemetry),
        2 => execute_waves::<T, 2>(target, work, threads, precompiled, control, telemetry),
        4 => execute_waves::<T, 4>(target, work, threads, precompiled, control, telemetry),
        8 => execute_waves::<T, 8>(target, work, threads, precompiled, control, telemetry),
        _ => unreachable!("LaneWidth admits only 1, 2, 4 or 8 words"),
    };
    finish_run(work, run)
}

/// Per-worker result of [`run_waves`]: counters, the first refused
/// admission, and the item ranges of any caught wave panics.
struct WorkerRun {
    stats: WaveStats,
    stopped: Option<StopReason>,
    panics: Vec<(Range<usize>, String)>,
}

/// Monomorphized executor body for one wave width.
fn execute_waves<T: FaultTarget, const W: usize>(
    target: &T,
    work: &WorkList,
    threads: usize,
    precompiled: Option<&PackedNetlist>,
    control: &RunControl,
    telemetry: &Telemetry,
) -> RunOutput {
    let n = work.len();
    let mut outcomes: Vec<Option<Outcome>> = vec![None; n];
    if n == 0 {
        return RunOutput {
            outcomes,
            stats: WaveStats::default(),
            stopped: None,
            panics: Vec::new(),
        };
    }
    // The only live (non-flushed) telemetry sink of the executor: the
    // distribution of incremental-resim cone sizes is observed as pruned
    // cycles step. The handle is a shared no-op when telemetry is off.
    let cone_sizes = telemetry.histogram("scfi_campaign_resim_cone_gates");
    // A cached compile (validated against the module shape by the
    // backend) replaces the per-run compilation; `PackedNetlist` is
    // immutable, so sharing it across concurrent campaigns is sound.
    let owned;
    let compiled = match precompiled {
        Some(net) => net,
        None => {
            owned = PackedNetlist::compile(target.module());
            &owned
        }
    };
    let wave_lanes = LANES * W;
    let waves = n.div_ceil(wave_lanes);
    let threads = threads.max(1).min(waves);
    let workers: Vec<WorkerRun> = if threads <= 1 {
        vec![run_waves::<T, W>(
            target,
            compiled,
            work,
            0,
            &mut outcomes,
            control,
            &cone_sizes,
        )]
    } else {
        // Contiguous blocks of whole waves per worker; each worker writes
        // its own disjoint outcome slice. Workers catch their own wave
        // panics, so joins only fail on setup panics (propagated).
        let per = waves.div_ceil(threads) * wave_lanes;
        std::thread::scope(|scope| {
            let handles: Vec<_> = outcomes
                .chunks_mut(per)
                .enumerate()
                .map(|(t, chunk)| {
                    let cone_sizes = &cone_sizes;
                    scope.spawn(move || {
                        run_waves::<T, W>(
                            target,
                            compiled,
                            work,
                            t * per,
                            chunk,
                            control,
                            cone_sizes,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("wave workers catch their own panics"))
                .collect()
        })
    };
    let mut stats = WaveStats::default();
    let mut stopped = None;
    let mut panics = Vec::new();
    for w in workers {
        stats.merge(&w.stats);
        if stopped.is_none() {
            stopped = w.stopped;
        }
        panics.extend(w.panics);
    }
    stats.flush(telemetry);
    RunOutput {
        outcomes,
        stats,
        stopped,
        panics,
    }
}

/// Per-wave cached scenario: the materialized schedule, the per-cycle
/// expected landing states (word-parallel classification), and the lazily
/// computed fault-free baseline trace (pruned stepping).
struct SlotCache {
    index: usize,
    sc: Scenario,
    /// `expected[c]` = the oracle codebook index of the fault-free landing
    /// state after cycle `c`; empty when the target has no oracle.
    expected: Vec<usize>,
    /// `baseline[c][n]` = net `n`'s fault-free value settled during cycle
    /// `c` (registers hold start-of-cycle state). Computed on first use.
    baseline: Option<Vec<Vec<bool>>>,
}

/// The fault-free per-cycle net values of a scenario — the reference point
/// for [`PackedSimulator::eval_comb_pruned`].
fn baseline_trace(sim: &mut Simulator<'_>, sc: &Scenario, n_nets: usize) -> Vec<Vec<bool>> {
    sim.clear_faults();
    sim.reset_to(&sc.regs);
    let mut trace = Vec::with_capacity(sc.cycles());
    for inputs in &sc.inputs {
        sim.eval_comb(inputs);
        trace.push((0..n_nets).map(|n| sim.peek(NetId(n as u32))).collect());
        sim.commit_registers();
    }
    trace
}

/// Runs the items `base..base + out.len()` of the work list, one wave of
/// up to `64 · W` injections at a time, writing trajectory verdicts into
/// `out` (`Some` for every completed wave).
///
/// Each wave simulates at most `max(lane cycles)` clock edges. Fault
/// semantics are exactly the scalar reference of
/// [`run_item_scalar`](crate::campaign::run_item_scalar): net/pin masks
/// armed while each live lane's [`FaultTiming`] window is open (the masks
/// are cleared and re-armed only on cycles where the armed set can have
/// changed), register flips applied once at the window's first cycle. A
/// lane is live while the cycle is within its scenario and its folded
/// verdict is not yet terminal ([`Outcome::Detected`] absorbs every later
/// fold); dead lanes keep stepping with the wave but are neither driven,
/// faulted nor classified, and once every lane of the wave is dead the
/// remaining cycles are skipped entirely.
///
/// # Execution control
///
/// `control` is consulted exactly once per wave, before the wave starts;
/// a refused admission leaves the remaining slots `None` and records the
/// stop reason. Each wave body runs under [`catch_unwind`]: a panic
/// (poisoned scenario, broken target) fails only that wave's item range
/// — its slots stay `None`, the simulator scratch is wiped, and the next
/// wave rebuilds cleanly (every wave reloads registers, re-fills its
/// verdict buffer and re-arms masks from scratch by construction).
#[allow(clippy::too_many_arguments)]
fn run_waves<T: FaultTarget, const W: usize>(
    target: &T,
    compiled: &PackedNetlist,
    work: &WorkList,
    base: usize,
    out: &mut [Option<Outcome>],
    control: &RunControl,
    cone_sizes: &Histogram,
) -> WorkerRun {
    let wave_lanes = LANES * W;
    let oracle = target.wave_oracle();
    let mut sim = PackedSimulator::<W>::new(compiled);
    let mut base_sim = Simulator::new(target.module());
    let mut reg_words = vec![[0u64; W]; compiled.register_count()];
    let mut input_words = vec![[0u64; W]; compiled.input_count()];
    let mut out_words: Vec<[u64; W]> = Vec::with_capacity(compiled.output_count());
    let mut reg_bits: Vec<bool> = Vec::with_capacity(compiled.register_count());
    let mut out_bits: Vec<bool> = Vec::with_capacity(compiled.output_count());
    let mut activity: Vec<bool> = Vec::new();
    // Work lists are scenario-major, so a wave references very few distinct
    // scenarios; they are materialized once per wave, with the last one
    // carried over so a scenario spanning a wave boundary is not rebuilt.
    let mut scens: Vec<SlotCache> = Vec::new();
    let mut lane_scen = vec![0usize; wave_lanes];
    let mut verdicts = vec![Outcome::Masked; wave_lanes];
    // Per-slot masks of this cycle's live lanes, rebuilt every cycle.
    let mut slot_live: Vec<[u64; W]> = Vec::new();
    let mut stats = WaveStats::default();
    let mut stopped = None;
    let mut panics: Vec<(Range<usize>, String)> = Vec::new();

    let mut done = 0usize;
    while done < out.len() {
        let lanes = wave_lanes.min(out.len() - done);
        // The only control check of the engine: once per wave, off the
        // per-gate and per-cycle hot paths.
        if let Err(reason) = control.admit(lanes) {
            stopped = Some(reason);
            break;
        }
        stats.waves += 1;
        stats.injections += lanes as u64;
        let wave = catch_unwind(AssertUnwindSafe(|| {
            reg_words.fill([0; W]);
            let mut wave_cycles = 0usize;
            for (lane, slot_out) in lane_scen.iter_mut().enumerate().take(lanes) {
                let (scenario, _) = work.item(base + done + lane);
                // Scenario-major ordering means consecutive lanes almost
                // always share the wave's most recent scenario: check the last
                // slot first and fall back to the (short) linear scan only on
                // a miss, so resolution stays O(1) amortized even on
                // scenario-dense protocol campaigns.
                let slot = if scens.last().is_some_and(|s| s.index == scenario) {
                    scens.len() - 1
                } else if let Some(i) = scens.iter().position(|s| s.index == scenario) {
                    i
                } else {
                    let sc = target.scenario(scenario);
                    assert!(sc.cycles() >= 1, "scenario {scenario} has no cycles");
                    assert_eq!(
                        sc.regs.len(),
                        reg_words.len(),
                        "scenario register preload width mismatch"
                    );
                    for inputs in &sc.inputs {
                        assert_eq!(
                            inputs.len(),
                            input_words.len(),
                            "scenario input width mismatch"
                        );
                    }
                    let expected = if oracle.is_some() {
                        (0..sc.cycles())
                            .map(|c| target.expected_state(scenario, c))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    scens.push(SlotCache {
                        index: scenario,
                        sc,
                        expected,
                        baseline: None,
                    });
                    scens.len() - 1
                };
                *slot_out = slot;
                let sc = &scens[slot].sc;
                wave_cycles = wave_cycles.max(sc.cycles());
                let bit = lane_mask::<W>(lane);
                for (j, &v) in sc.regs.iter().enumerate() {
                    if v {
                        for k in 0..W {
                            reg_words[j][k] |= bit[k];
                        }
                    }
                }
            }
            sim.set_register_words(&reg_words);
            verdicts[..lanes].fill(Outcome::Masked);
            slot_live.clear();
            slot_live.resize(scens.len(), [0u64; W]);
            let mut prev_live: Option<[u64; W]> = None;
            for cycle in 0..wave_cycles {
                // Pass 1, every cycle: liveness, input words, register flips,
                // and per-fault window-movement detection. Flips mutate
                // stored state (not masks), so they fire at their own
                // window's start whether or not the masks are rebuilt below.
                input_words.fill([0; W]);
                for m in slot_live.iter_mut() {
                    *m = [0; W];
                }
                let mut live_words = [0u64; W];
                let mut live = 0usize;
                let mut windows_moved = cycle == 0;
                for lane in 0..lanes {
                    let slot = lane_scen[lane];
                    let sc = &scens[slot].sc;
                    if cycle >= sc.cycles() || verdicts[lane] == Outcome::Detected {
                        // Dead lane: past its trajectory, or its verdict is
                        // already terminal — skip driving and faulting it.
                        continue;
                    }
                    live += 1;
                    let bit = lane_mask::<W>(lane);
                    for k in 0..W {
                        live_words[k] |= bit[k];
                        slot_live[slot][k] |= bit[k];
                    }
                    for (j, &v) in sc.inputs[cycle].iter().enumerate() {
                        if v {
                            for k in 0..W {
                                input_words[j][k] |= bit[k];
                            }
                        }
                    }
                    let (_, faults) = work.item(base + done + lane);
                    let overrides = work.windows(base + done + lane);
                    for (j, &f) in faults.iter().enumerate() {
                        let w = sc.fault_window(overrides, j);
                        if matches!(f.site, FaultSite::Register(_)) {
                            if w.flip_cycle() == cycle {
                                arm_lanes(&mut sim, f, bit);
                            }
                        } else if !windows_moved && w.armed_at(cycle) != w.armed_at(cycle - 1) {
                            // This live lane's net/pin window opened or
                            // closed since the previous cycle.
                            windows_moved = true;
                        }
                    }
                }
                if live == 0 {
                    // Every lane's verdict is settled: skip the wave's
                    // remaining cycles outright.
                    stats.skipped += (wave_cycles - cycle) as u64;
                    break;
                }
                // Pass 2: rebuild the net/pin fault masks only when the armed
                // set can have changed — the live set moved, or some live
                // lane's fault window opened or closed since the previous
                // cycle (each fault of a group tracks its own window).
                // All-`Permanent` waves with a stable live set arm their
                // masks exactly once; every other stepped cycle elides the
                // clear-and-re-arm sweep.
                if windows_moved || prev_live != Some(live_words) {
                    stats.rebuilds += 1;
                    sim.clear_faults();
                    for lane in 0..lanes {
                        let sc = &scens[lane_scen[lane]].sc;
                        if cycle >= sc.cycles() || verdicts[lane] == Outcome::Detected {
                            continue;
                        }
                        let bit = lane_mask::<W>(lane);
                        let (_, faults) = work.item(base + done + lane);
                        let overrides = work.windows(base + done + lane);
                        for (j, &f) in faults.iter().enumerate() {
                            if !matches!(f.site, FaultSite::Register(_))
                                && sc.fault_window(overrides, j).armed_at(cycle)
                            {
                                arm_lanes(&mut sim, f, bit);
                            }
                        }
                    }
                } else {
                    stats.elided_rebuilds += 1;
                }
                prev_live = Some(live_words);
                if sim.has_faults() {
                    sim.step_into(&input_words, &mut out_words);
                } else {
                    // Incremental re-simulation: with no masks armed
                    // (register-flip campaigns, pre-/post-window cycles of
                    // transient schedules) every lane is a fault-free run plus
                    // a sparse state divergence, so the settle can skip every
                    // op whose inputs sit on the baseline in all live lanes.
                    // Any wave scenario's trace serves as the reference point
                    // — lanes from other scenarios simply seed divergence at
                    // the sources — so use the slot with the most live lanes.
                    let slot = slot_live
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, m)| m.iter().map(|w| w.count_ones()).sum::<u32>())
                        .map(|(i, _)| i)
                        .expect("a live lane exists");
                    let entry = &mut scens[slot];
                    let trace = entry.baseline.get_or_insert_with(|| {
                        baseline_trace(&mut base_sim, &entry.sc, compiled.len())
                    });
                    sim.step_into_pruned(
                        &input_words,
                        &trace[cycle],
                        live_words,
                        &mut activity,
                        &mut out_words,
                    );
                    if cone_sizes.enabled() {
                        // Cone size = ops actually re-evaluated this cycle.
                        // The count pass runs only with a recorder installed.
                        cone_sizes.observe(activity.iter().filter(|&&a| a).count() as u64);
                    }
                }
                stats.stepped += 1;
                match &oracle {
                    Some(oracle) => {
                        stats.oracle_fastpath_cycles += 1;
                        // Word-parallel classification: decode whole 64-lane
                        // words against the precompiled codebook and alert
                        // masks; only Detected/Hijack lanes are touched
                        // (Masked is the fold identity).
                        let regs = sim.register_words();
                        for w in 0..W {
                            if live_words[w] == 0 {
                                continue;
                            }
                            let det_base = oracle.detected_word(w, regs, &out_words);
                            for (slot, masks) in scens.iter().zip(&slot_live) {
                                let group = masks[w];
                                if group == 0 {
                                    continue;
                                }
                                let (det, hij) = oracle.classify_word(
                                    det_base,
                                    slot.expected[cycle],
                                    w,
                                    group,
                                    regs,
                                );
                                let mut bits = det;
                                while bits != 0 {
                                    let lane = w * LANES + bits.trailing_zeros() as usize;
                                    verdicts[lane] = Outcome::Detected;
                                    bits &= bits - 1;
                                }
                                // Live lanes are never Detected, so the fold
                                // of Hijack is Hijack.
                                let mut bits = hij;
                                while bits != 0 {
                                    let lane = w * LANES + bits.trailing_zeros() as usize;
                                    verdicts[lane] = Outcome::Hijack;
                                    bits &= bits - 1;
                                }
                            }
                        }
                    }
                    None => {
                        stats.oracle_fallback_cycles += 1;
                        for lane in 0..lanes {
                            let slot = lane_scen[lane];
                            let sc = &scens[slot].sc;
                            if cycle >= sc.cycles() || verdicts[lane] == Outcome::Detected {
                                continue;
                            }
                            extract_lane(sim.register_words(), lane, &mut reg_bits);
                            extract_lane(&out_words, lane, &mut out_bits);
                            verdicts[lane] = verdicts[lane].fold(target.classify(
                                scens[slot].index,
                                cycle,
                                &reg_bits,
                                &out_bits,
                            ));
                        }
                    }
                }
            }
        }));
        match wave {
            Ok(()) => {
                for (slot, &v) in out[done..done + lanes]
                    .iter_mut()
                    .zip(verdicts[..lanes].iter())
                {
                    *slot = Some(v);
                }
                // Keep only the most recent scenario for the next wave.
                if scens.len() > 1 {
                    let last = scens.pop().expect("nonempty");
                    scens.clear();
                    scens.push(last);
                }
            }
            Err(payload) => {
                // Isolate the poisoned wave: record its item range (slots
                // stay `None`), wipe the scratch it may have half-armed
                // (fault masks, scenario caches) and continue — the next
                // wave reloads registers, verdicts and masks from scratch
                // by construction, so it is unaffected.
                panics.push((base + done..base + done + lanes, panic_message(payload)));
                sim.clear_faults();
                scens.clear();
            }
        }
        done += lanes;
    }
    WorkerRun {
        stats,
        stopped,
        panics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{fault_list, CampaignConfig};
    use crate::target::ScfiTarget;
    use scfi_core::{harden, ScfiConfig};
    use scfi_fsm::parse_fsm;

    fn target_fsm() -> scfi_fsm::Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn work_list_round_trips_items() {
        let f = Fault {
            site: FaultSite::Register(scfi_netlist::CellId(3)),
            effect: FaultEffect::Flip,
        };
        let g = Fault {
            site: FaultSite::Pin(scfi_netlist::CellId(1), 2),
            effect: FaultEffect::Stuck1,
        };
        let mut w = WorkList::with_capacity(3);
        assert!(w.is_empty());
        w.push(4, &[f]);
        w.push(9, &[f, g]);
        w.push(0, &[]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.item(0), (4, &[f][..]));
        assert_eq!(w.item(1), (9, &[f, g][..]));
        assert_eq!(w.item(2), (0, &[][..]));
        // Plain pushes carry no per-fault window overrides…
        assert!(w.windows(1).iter().all(Option::is_none));
        // …while scheduled pushes override each fault of their group.
        w.push_scheduled(
            5,
            &[f, g],
            &[FaultTiming::Transient(1), FaultTiming::Permanent],
        );
        assert_eq!(w.item(3), (5, &[f, g][..]));
        assert_eq!(
            w.windows(3),
            &[
                Some(FaultTiming::Transient(1)),
                Some(FaultTiming::Permanent)
            ]
        );
        assert!(w.windows(0).iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "one arming window per fault")]
    fn scheduled_pushes_require_one_window_per_fault() {
        let f = Fault {
            site: FaultSite::Register(scfi_netlist::CellId(0)),
            effect: FaultEffect::Flip,
        };
        let mut w = WorkList::with_capacity(1);
        w.push_scheduled(0, &[f, f], &[FaultTiming::Permanent]);
    }

    #[test]
    fn outcomes_are_independent_of_thread_count_and_width() {
        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        let work = crate::campaign::exhaustive_work(&t, &faults);
        let one = execute(&t, &work, 1, 1);
        assert_eq!(one.len(), work.len());
        for threads in [1, 4] {
            for lane_words in [1, 2, 4, 8] {
                let got = execute(&t, &work, threads, lane_words);
                assert_eq!(one, got, "threads {threads}, lane_words {lane_words}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lane_words must be 1, 2 or 4")]
    fn unsupported_widths_are_rejected() {
        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let work = WorkList::with_capacity(0);
        let _ = execute(&t, &work, 1, 3);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversized_scenario_index_is_a_typed_overflow() {
        let mut w = WorkList::with_capacity(1);
        let err = w
            .try_push(u32::MAX as usize + 1, &[])
            .expect_err("overflow");
        assert!(matches!(err, CampaignError::WorkListOverflow { .. }));
        assert!(err.to_string().contains("split the campaign"));
        assert!(w.is_empty(), "failed push must not mutate the list");
    }

    /// Lanes of *different* trajectory lengths inside the same wave: mix
    /// 1-cycle, 2-cycle and 4-cycle scenarios in one interleaved work list
    /// and check the wave verdicts item-for-item against independent
    /// scalar runs, at every wave width. Short lanes must neither be
    /// classified nor faulted past their own length while longer lanes
    /// keep stepping.
    #[test]
    fn mixed_length_lanes_in_one_wave_match_scalar() {
        use crate::campaign::run_item_scalar;
        use crate::target::{FaultTiming, ProtocolScenario};

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let cfg = h.cfg();
        let mut scenarios = Vec::new();
        for len in [1usize, 2, 4] {
            let mut edges = vec![0];
            while edges.len() < len {
                let at = cfg.edges()[*edges.last().unwrap()].to;
                edges.push(cfg.out_edge_indices(at)[0]);
            }
            for window in 0..len {
                scenarios.push(ProtocolScenario::uniform(
                    edges.clone(),
                    FaultTiming::Transient(window),
                ));
            }
        }
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        // Interleave scenarios (fault-major) so one wave holds every
        // trajectory length — the opposite of the scenario-major layout.
        let mut work = WorkList::with_capacity(faults.len() * t.scenario_count());
        for fault in &faults {
            for s in 0..t.scenario_count() {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        let scalar: Vec<Outcome> = (0..work.len())
            .map(|i| {
                let (s, group) = work.item(i);
                let sc = t.scenario(s);
                run_item_scalar(&t, &mut sim, s, &sc, group, work.windows(i), &mut outputs)
            })
            .collect();
        for lane_words in [1, 2, 4, 8] {
            let packed = execute(&t, &work, 1, lane_words);
            assert_eq!(packed, scalar, "lane_words {lane_words}");
        }
    }

    /// Builds a work list of register-flip faults over depth-4 walks whose
    /// fault window is chosen per item by `window`.
    fn walk_work(
        h: &scfi_core::HardenedFsm,
        window: impl Fn(usize) -> usize,
        items_per_walk: usize,
    ) -> (Vec<crate::target::ProtocolScenario>, Vec<Fault>) {
        use crate::target::{FaultTiming, ProtocolScenario};
        let cfg = h.cfg();
        let walks = cfg.random_walks(4, 0xC1C1E);
        let mut scenarios = Vec::new();
        for walk in &walks {
            for _ in 0..items_per_walk {
                scenarios.push(ProtocolScenario::uniform(
                    walk.clone(),
                    FaultTiming::Transient(window(scenarios.len()) % 4),
                ));
            }
        }
        let faults: Vec<Fault> = h
            .module()
            .registers()
            .iter()
            .map(|&r| Fault {
                site: FaultSite::Register(r),
                effect: FaultEffect::Flip,
            })
            .collect();
        (scenarios, faults)
    }

    /// All lanes of every wave fold to `Detected` on their very first
    /// classified cycle (SCFI detects single register flips immediately:
    /// the corrupted codeword is invalid, so the next state is ERROR).
    /// With the fault window at cycle 0 the executor must early-exit each
    /// wave after one stepped edge — a 4× cycle cut on depth-4 walks —
    /// while the verdicts stay identical to the scalar reference that
    /// steps every scheduled cycle.
    #[test]
    fn waves_detecting_on_cycle_zero_early_exit() {
        use crate::campaign::run_item_scalar;

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let (scenarios, faults) = walk_work(&h, |_| 0, 1);
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let mut work = WorkList::with_capacity(t.scenario_count() * faults.len());
        for s in 0..t.scenario_count() {
            for fault in &faults {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        for lane_words in [1usize, 2, 4] {
            let (outcomes, stats) = execute_counting(&t, &work, 1, lane_words);
            let waves = work.len().div_ceil(LANES * lane_words) as u64;
            assert_eq!(
                stats.stepped, waves,
                "lane_words {lane_words}: every wave must stop after one edge"
            );
            for (i, &verdict) in outcomes.iter().enumerate() {
                let (s, group) = work.item(i);
                let sc = t.scenario(s);
                assert_eq!(verdict, Outcome::Detected, "item {i}");
                assert_eq!(
                    verdict,
                    run_item_scalar(&t, &mut sim, s, &sc, group, work.windows(i), &mut outputs),
                    "item {i}"
                );
            }
        }
    }

    /// A W = 4 wave whose four *words* carry four different transient
    /// windows: item `i` glitches cycle `(i / 64) % 4` of the same depth-4
    /// walk, so lanes in word 0 arm at cycle 0 while lanes in word 3 arm
    /// at cycle 3. The per-word fault re-arm schedule must keep them
    /// independent and match the scalar reference item for item; the
    /// stepped-edge count must still undercut the naive 4-cycles-per-wave
    /// schedule (no lane can fold before its window opens, so each wave
    /// runs exactly as long as its latest window).
    #[test]
    fn w4_wave_with_independent_windows_per_word_matches_scalar() {
        use crate::campaign::run_item_scalar;

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let n_regs = h.module().registers().len();
        // 64 / n_regs scenarios per window step give each word one window.
        let (scenarios, faults) = walk_work(&h, |i| i / (64 / n_regs).max(1), 64 / n_regs);
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let mut work = WorkList::with_capacity(t.scenario_count() * faults.len());
        for s in 0..t.scenario_count() {
            for fault in &faults {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        let (outcomes, stats) = execute_counting(&t, &work, 1, 4);
        let waves = work.len().div_ceil(LANES * 4) as u64;
        assert!(
            stats.stepped < 4 * waves,
            "mixed windows must still skip trailing cycles: {} vs naive {}",
            stats.stepped,
            4 * waves
        );
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        for (i, &verdict) in outcomes.iter().enumerate() {
            let (s, group) = work.item(i);
            let sc = t.scenario(s);
            assert_eq!(
                verdict,
                run_item_scalar(&t, &mut sim, s, &sc, group, work.windows(i), &mut outputs),
                "item {i}"
            );
        }
    }

    /// An all-`Permanent` multi-cycle campaign on a target with no
    /// detection mechanism: the live set never moves and no fault window
    /// opens or closes, so every wave must arm its masks exactly once —
    /// while the verdicts stay identical to the scalar reference. The
    /// same walks under `Transient` windows must rebuild more than once
    /// per wave (window open + close edges).
    #[test]
    fn permanent_waves_rebuild_masks_once() {
        use crate::campaign::run_item_scalar;
        use crate::target::{FaultTiming, ProtocolScenario, UnprotectedTarget};
        use scfi_fsm::lower_unprotected;

        let f = target_fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let probe = UnprotectedTarget::new(&f, &lowered);
        let depth = 4;
        let walks = probe
            .fsm()
            .cfg()
            .random_walks_where(depth, 7, |ei| probe.scenario_edge_is_drivable(ei));
        let build = |timing: &dyn Fn(usize) -> FaultTiming| {
            let scenarios: Vec<ProtocolScenario> = walks
                .iter()
                .enumerate()
                .map(|(i, w)| ProtocolScenario::uniform(w.clone(), timing(i)))
                .collect();
            UnprotectedTarget::with_scenarios(&f, &lowered, scenarios)
        };
        let t = build(&|_| FaultTiming::Permanent);
        let faults = fault_list(&t, &CampaignConfig::new());
        let work = crate::campaign::exhaustive_work(&t, &faults);
        let (outcomes, stats) = execute_counting(&t, &work, 1, 2);
        let waves = work.len().div_ceil(LANES * 2) as u64;
        assert_eq!(
            stats.rebuilds, waves,
            "all-Permanent waves must arm their masks exactly once"
        );
        assert_eq!(stats.stepped, depth as u64 * waves);
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        for (i, &verdict) in outcomes.iter().enumerate() {
            let (s, group) = work.item(i);
            let sc = t.scenario(s);
            assert_eq!(
                verdict,
                run_item_scalar(&t, &mut sim, s, &sc, group, work.windows(i), &mut outputs),
                "item {i}"
            );
        }
        // Transient windows in the middle of the walk open *and* close, so
        // the same campaign must rebuild at least twice per wave.
        let t2 = build(&|i| FaultTiming::Transient(1 + i % (depth - 1)));
        let work2 = crate::campaign::exhaustive_work(&t2, &faults);
        let (_, stats2) = execute_counting(&t2, &work2, 1, 2);
        let waves2 = work2.len().div_ceil(LANES * 2) as u64;
        assert!(
            stats2.rebuilds >= 2 * waves2,
            "transient windows must rebuild on open and close: {} rebuilds over {} waves",
            stats2.rebuilds,
            waves2
        );
    }

    /// Two faults of one group striking different steps of the same walk
    /// ([`FaultSchedule::PerFault`]): the wave executor's per-lane×per-fault
    /// arm/re-arm masks must match the scalar reference item for item, at
    /// every width.
    #[test]
    fn per_fault_schedules_match_scalar_at_every_width() {
        use crate::campaign::run_item_scalar;
        use crate::target::{FaultSchedule, FaultTiming, ProtocolScenario};

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let scenarios: Vec<ProtocolScenario> = h
            .cfg()
            .random_walks(4, 3)
            .into_iter()
            .enumerate()
            .map(|(i, walk)| {
                ProtocolScenario::new(
                    walk,
                    FaultSchedule::PerFault(vec![
                        FaultTiming::Transient(i % 4),
                        FaultTiming::Transient((i + 2) % 4),
                    ]),
                )
            })
            .collect();
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let faults = fault_list(&t, &CampaignConfig::new().with_register_flips());
        let mut work = WorkList::with_capacity(t.scenario_count() * faults.len() / 2);
        for s in 0..t.scenario_count() {
            for pair in faults.chunks(2) {
                work.push(s, pair);
            }
        }
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        let scalar: Vec<Outcome> = (0..work.len())
            .map(|i| {
                let (s, group) = work.item(i);
                let sc = t.scenario(s);
                run_item_scalar(&t, &mut sim, s, &sc, group, work.windows(i), &mut outputs)
            })
            .collect();
        for lane_words in [1, 2, 4, 8] {
            assert_eq!(
                execute(&t, &work, 1, lane_words),
                scalar,
                "lane_words {lane_words}"
            );
        }
    }

    /// Per-item window overrides ([`WorkList::push_scheduled`]) behave as
    /// if the scenario carried those windows: wave verdicts match the
    /// scalar reference, and cycles where no live window moves skip the
    /// mask rebuild (the re-arm-elision counter fires).
    #[test]
    fn window_overrides_match_scalar_and_elide_rebuilds() {
        use crate::campaign::run_item_scalar;
        use crate::target::{FaultTiming, ProtocolScenario};

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let depth = 4;
        let walk = {
            let cfg = h.cfg();
            let mut edges = vec![0];
            while edges.len() < depth {
                let at = cfg.edges()[*edges.last().unwrap()].to;
                edges.push(cfg.out_edge_indices(at)[0]);
            }
            edges
        };
        // The scenario says "whole walk"; every item narrows each fault to
        // its own drawn window via overrides.
        let t = ScfiTarget::with_scenarios(
            &h,
            vec![ProtocolScenario::uniform(walk, FaultTiming::Permanent)],
        );
        let faults = fault_list(&t, &CampaignConfig::new());
        let mut work = WorkList::with_capacity(faults.len());
        for pair in faults.chunks(2) {
            // Every fault glitches cycle 2, so cycles 0–1 run mask-free:
            // cycle 1 neither opens a window nor moves the live set, and
            // must elide its rebuild.
            let windows = vec![FaultTiming::Transient(2); pair.len()];
            work.push_scheduled(0, pair, &windows);
        }
        let mut sim = scfi_netlist::Simulator::new(t.module());
        let mut outputs = Vec::new();
        let scalar: Vec<Outcome> = (0..work.len())
            .map(|i| {
                let (s, group) = work.item(i);
                let sc = t.scenario(s);
                run_item_scalar(&t, &mut sim, s, &sc, group, work.windows(i), &mut outputs)
            })
            .collect();
        for lane_words in [1, 2, 4] {
            let (packed, stats) = execute_counting(&t, &work, 1, lane_words);
            assert_eq!(packed, scalar, "lane_words {lane_words}");
            let waves = work.len().div_ceil(LANES * lane_words) as u64;
            assert_eq!(
                stats.elided_rebuilds, waves,
                "lane_words {lane_words}: cycle 1 of every wave must keep its masks"
            );
        }
    }

    /// The word-parallel oracle path and the per-lane extraction fallback
    /// must agree verdict-for-verdict: run the same campaign through the
    /// target directly (oracle) and through a wrapper that hides the
    /// oracle (fallback), at every width.
    #[test]
    fn oracle_and_extraction_fallback_agree() {
        struct NoOracle<'a, T: FaultTarget>(&'a T);
        impl<T: FaultTarget> FaultTarget for NoOracle<'_, T> {
            fn module(&self) -> &scfi_netlist::Module {
                self.0.module()
            }
            fn scenario_count(&self) -> usize {
                self.0.scenario_count()
            }
            fn scenario(&self, index: usize) -> Scenario {
                self.0.scenario(index)
            }
            fn classify(
                &self,
                index: usize,
                cycle: usize,
                regs: &[bool],
                outputs: &[bool],
            ) -> Outcome {
                self.0.classify(index, cycle, regs, outputs)
            }
            // wave_oracle deliberately left at the default None.
        }

        use crate::target::{FaultSchedule, FaultTiming, ProtocolScenario};

        let f = target_fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        // Multi-window waves (per-fault schedules) must keep the oracle
        // path hot too — per-fault arming affects only the mask rebuilds,
        // never the classification path.
        let per_fault: Vec<ProtocolScenario> = h
            .cfg()
            .random_walks(3, 5)
            .into_iter()
            .enumerate()
            .map(|(i, walk)| {
                ProtocolScenario::new(
                    walk,
                    FaultSchedule::PerFault(vec![
                        FaultTiming::Transient(i % 3),
                        FaultTiming::Transient((i + 1) % 3),
                    ]),
                )
            })
            .collect();
        for t in [
            ScfiTarget::new(&h),
            ScfiTarget::with_protocol(&h, 3, 9),
            ScfiTarget::with_scenarios(&h, per_fault),
        ] {
            assert!(t.wave_oracle().is_some());
            let faults = fault_list(
                &t,
                &CampaignConfig::new()
                    .with_register_flips()
                    .with_pin_faults(),
            );
            let work = crate::campaign::exhaustive_work(&t, &faults);
            for lane_words in [1, 4, 8] {
                let with_oracle = execute(&t, &work, 1, lane_words);
                let fallback = execute(&NoOracle(&t), &work, 1, lane_words);
                assert_eq!(with_oracle, fallback, "lane_words {lane_words}");
            }
        }
    }
}
