//! Fault-campaign targets: the three §6.1 configurations behind one trait.
//!
//! Since the multi-cycle generalization, a *scenario* is no longer one CFG
//! edge but an N-cycle [`Scenario`]: a register preload, a per-cycle input
//! schedule, and a [`FaultTiming`] window saying when during the schedule
//! the injected faults are armed. The paper's §6.4 single-transition
//! experiment is the trivial `N = 1` case ([`Scenario::single`]); protocol
//! campaigns attack [`ProtocolScenario`] walks — multi-step transition
//! sequences such as a secure-boot handshake — with a fault glitching one
//! step and the classification judging the *whole trajectory*.

use scfi_core::{HardenedFsm, RedundantFsm, StateDecode};
use scfi_fsm::{Cfg, Fsm, LoweredFsm, StateId};
use scfi_netlist::Module;

use crate::campaign::Outcome;
use crate::oracle::{AlertModel, WaveOracle};

/// When during a scenario's cycle schedule the injected faults are armed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultTiming {
    /// Armed for the whole trajectory: stuck-ats model a permanently broken
    /// wire, flips a persistently glitched net. Register flips are applied
    /// once, before the first cycle (FT1).
    Permanent,
    /// Armed only during cycle `c` (0-based) and cleared afterwards — the
    /// paper's transient attacker glitching one step of a protocol.
    /// Register flips are applied just before cycle `c`.
    Transient(usize),
}

impl FaultTiming {
    /// Whether net/pin fault masks are active during `cycle`.
    pub fn armed_at(&self, cycle: usize) -> bool {
        match *self {
            FaultTiming::Permanent => true,
            FaultTiming::Transient(c) => cycle == c,
        }
    }

    /// The cycle just before which register-bit flips are applied (the
    /// start of the fault window).
    pub fn flip_cycle(&self) -> usize {
        match *self {
            FaultTiming::Permanent => 0,
            FaultTiming::Transient(c) => c,
        }
    }
}

/// Per-fault arming windows for a scenario's fault group — the §3 temporal
/// attacker, who may time each of their N−1 glitches independently.
///
/// The legacy one-window-per-scenario model lowers to
/// [`FaultSchedule::Uniform`] with unchanged semantics; a
/// [`FaultSchedule::PerFault`] schedule gives fault `j` of the injected
/// group its own [`FaultTiming`], so two glitches can strike different
/// steps of the same protocol walk. Work items can additionally override
/// windows per fault (see
/// [`WorkList::push_scheduled`](crate::WorkList::push_scheduled)), which
/// is how sampled multi-fault campaigns draw independent timings per run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Every fault in the group shares one window.
    Uniform(FaultTiming),
    /// Fault `j` of the group is armed during window `j`; groups larger
    /// than the schedule reuse its last window.
    PerFault(Vec<FaultTiming>),
}

impl FaultSchedule {
    /// The arming window of fault `j` of the injected group.
    ///
    /// # Panics
    ///
    /// Panics on an empty [`FaultSchedule::PerFault`] schedule.
    pub fn window(&self, fault: usize) -> FaultTiming {
        match self {
            FaultSchedule::Uniform(t) => *t,
            FaultSchedule::PerFault(ws) => {
                assert!(!ws.is_empty(), "per-fault schedule has no windows");
                ws[fault.min(ws.len() - 1)]
            }
        }
    }

    /// All distinct windows of the schedule (one entry for `Uniform`).
    pub fn windows(&self) -> &[FaultTiming] {
        match self {
            FaultSchedule::Uniform(t) => std::slice::from_ref(t),
            FaultSchedule::PerFault(ws) => ws,
        }
    }
}

impl From<FaultTiming> for FaultSchedule {
    fn from(t: FaultTiming) -> Self {
        FaultSchedule::Uniform(t)
    }
}

/// One N-cycle attack scenario: where the registers start, what drives the
/// inputs on every cycle, and when the faults under test are live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Register preload, in `Module::registers()` order.
    pub regs: Vec<bool>,
    /// Input-port vector per cycle; `inputs.len()` is the trajectory length
    /// N ≥ 1.
    pub inputs: Vec<Vec<bool>>,
    /// The per-fault arming windows within the schedule.
    pub schedule: FaultSchedule,
}

impl Scenario {
    /// The single-transition scenario of the paper's §6.4 experiment: one
    /// cycle, faults armed throughout.
    pub fn single(regs: Vec<bool>, inputs: Vec<bool>) -> Self {
        Scenario {
            regs,
            inputs: vec![inputs],
            schedule: FaultSchedule::Uniform(FaultTiming::Permanent),
        }
    }

    /// Trajectory length in cycles.
    pub fn cycles(&self) -> usize {
        self.inputs.len()
    }

    /// The effective arming window of fault `j` of a work item: the item's
    /// per-fault override when present, the scenario schedule otherwise.
    pub fn fault_window(&self, overrides: &[Option<FaultTiming>], j: usize) -> FaultTiming {
        overrides
            .get(j)
            .copied()
            .flatten()
            .unwrap_or_else(|| self.schedule.window(j))
    }
}

/// A multi-cycle protocol scenario over a CFG: a connected walk of edge
/// indices (each edge's target is the next edge's source) plus the
/// per-fault arming schedule. [`protocol_scenarios`] generates the
/// standard campaign set; hand-written schedules can be passed to the
/// targets' `with_scenarios` constructors directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolScenario {
    /// Indices into [`Cfg::edges`], connected head to tail.
    pub edges: Vec<usize>,
    /// When during the walk each fault of the injected group is armed.
    pub schedule: FaultSchedule,
    /// Optional per-cycle raw-input override (adversarial input fuzzing):
    /// when present, cycle `c` drives `inputs[c]` instead of edge `c`'s
    /// representative input vector. The override must still drive the
    /// walk's edge sequence — a fuzzed schedule changes *which* admissible
    /// word drives each step, never the step itself.
    pub inputs: Option<Vec<Vec<bool>>>,
}

impl ProtocolScenario {
    /// A walk whose fault group follows `schedule`.
    pub fn new(edges: Vec<usize>, schedule: FaultSchedule) -> Self {
        ProtocolScenario {
            edges,
            schedule,
            inputs: None,
        }
    }

    /// A walk with one shared window for the whole fault group — the
    /// legacy one-`FaultTiming`-per-scenario form.
    pub fn uniform(edges: Vec<usize>, timing: FaultTiming) -> Self {
        Self::new(edges, FaultSchedule::Uniform(timing))
    }

    /// Overrides the per-cycle input vectors (adversarial input fuzzing);
    /// `inputs.len()` must equal the walk length.
    pub fn with_inputs(mut self, inputs: Vec<Vec<bool>>) -> Self {
        self.inputs = Some(inputs);
        self
    }
}

/// The standard multi-cycle campaign scenario set: seeded random CFG walks
/// of `depth` edges (one walk per starting edge, via
/// [`Cfg::random_walks`]), each expanded into `depth` scenarios — one per
/// injection cycle, with [`FaultTiming::Transient`] arming the faults
/// during exactly that step of the protocol.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn protocol_scenarios(cfg: &Cfg, depth: usize, seed: u64) -> Vec<ProtocolScenario> {
    expand_walks(cfg.random_walks(depth, seed))
}

/// Expands walks into per-injection-cycle [`ProtocolScenario`]s.
fn expand_walks(walks: Vec<Vec<usize>>) -> Vec<ProtocolScenario> {
    let mut scenarios = Vec::new();
    for walk in walks {
        for cycle in 0..walk.len() {
            scenarios.push(ProtocolScenario::uniform(
                walk.clone(),
                FaultTiming::Transient(cycle),
            ));
        }
    }
    scenarios
}

/// The seeded xorshift64* stream shared by the scenario generators (the
/// same generator as [`Cfg::random_walks`] and the multi-fault draw).
fn xorshift64star(seed: u64) -> impl FnMut() -> u64 {
    let mut rng = seed.max(1);
    move || {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        rng.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Adversarial protocol walks biased toward wrong-but-close codewords:
/// at each step, with probability 1/2 the successor is the outgoing edge
/// whose `word_of` codeword is Hamming-closest to the *previous* step's
/// codeword (ties broken by edge index), otherwise it is drawn uniformly
/// — so consecutive condition words tend to differ in as few bits as the
/// CFG allows, the schedules a glitch is most likely to confuse. One walk
/// per starting edge, deterministic in `seed`.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn adversarial_walks(
    cfg: &Cfg,
    depth: usize,
    seed: u64,
    word_of: impl Fn(usize) -> Vec<bool>,
) -> Vec<Vec<usize>> {
    assert!(depth > 0, "protocol walks need at least one edge");
    let mut next = xorshift64star(seed);
    let hamming = |a: &[bool], b: &[bool]| a.iter().zip(b).filter(|(x, y)| x != y).count();
    let mut walks = Vec::with_capacity(cfg.edges().len());
    for start in 0..cfg.edges().len() {
        let mut walk = Vec::with_capacity(depth);
        walk.push(start);
        let mut at = cfg.edges()[start].to;
        while walk.len() < depth {
            let choices = cfg.out_edge_indices(at);
            let prev_word = word_of(*walk.last().expect("walk is nonempty"));
            let e = if next() & 1 == 0 {
                *choices
                    .iter()
                    .min_by_key(|&&e| (hamming(&word_of(e), &prev_word), e))
                    .expect("every state has an outgoing edge")
            } else {
                choices[(next() % choices.len() as u64) as usize]
            };
            walk.push(e);
            at = cfg.edges()[e].to;
        }
        walks.push(walk);
    }
    walks
}

/// The adversarially fuzzed campaign scenario set: [`adversarial_walks`]
/// expanded one scenario per injection cycle, exactly like
/// [`protocol_scenarios`] but with the walk shapes biased toward
/// close-codeword transitions.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn fuzzed_protocol_scenarios(
    cfg: &Cfg,
    depth: usize,
    seed: u64,
    word_of: impl Fn(usize) -> Vec<bool>,
) -> Vec<ProtocolScenario> {
    expand_walks(adversarial_walks(cfg, depth, seed, word_of))
}

/// A circuit (plus its oracle) a fault campaign can attack.
///
/// A target defines the scenario space and classifies the simulated
/// trajectory cycle by cycle against the fault-free expectation. The
/// executors fold the per-cycle outcomes with [`Outcome::fold`], so a
/// hijacked state that collapses to ERROR later in the walk counts as
/// [`Outcome::Detected`] — the paper's "invalid state reaches ERROR on the
/// next edge" argument applied along the whole protocol.
pub trait FaultTarget: Sync {
    /// The netlist under attack.
    fn module(&self) -> &Module;

    /// Number of scenarios.
    fn scenario_count(&self) -> usize;

    /// The N-cycle scenario at `index`.
    fn scenario(&self, index: usize) -> Scenario;

    /// Classifies the post-step registers and outputs after cycle `cycle`
    /// of scenario `index` (0-based, one call per cycle of the
    /// trajectory).
    fn classify(&self, index: usize, cycle: usize, regs: &[bool], outputs: &[bool]) -> Outcome;

    /// A precompiled word-level classification oracle, if the target can
    /// express [`FaultTarget::classify`] as packed-word logic (see
    /// [`WaveOracle`]). The wave executor then decodes whole 64-lane
    /// words at a time instead of extracting each lane; `None` keeps the
    /// per-lane extraction + `classify` fallback, which is correct for
    /// every target, just slower.
    ///
    /// Contract: at every scenario cycle the oracle's verdicts must equal
    /// `classify`'s on the same post-step registers and outputs, with
    /// [`FaultTarget::expected_state`] naming the cycle's fault-free
    /// landing state. The differential suites pin this against the scalar
    /// engine on every Table-1 FSM.
    fn wave_oracle(&self) -> Option<WaveOracle> {
        None
    }

    /// The codebook index (in [`FaultTarget::wave_oracle`]'s codeword
    /// order) of the fault-free landing state after `cycle` of scenario
    /// `index`. Only consulted when `wave_oracle` returns an oracle.
    fn expected_state(&self, index: usize, cycle: usize) -> usize {
        let _ = (index, cycle);
        unimplemented!("targets providing a wave_oracle must implement expected_state")
    }
}

/// Shared scenario-space bookkeeping behind the three targets: either the
/// single-transition space (scenario `i` = one CFG edge) or a validated
/// protocol space of multi-cycle walks. Centralizes the index → edge
/// resolution and the [`Scenario`] assembly, so the targets differ only
/// in how they encode register preloads and per-edge input vectors — and
/// a future timing extension lands in one place, not three.
#[derive(Clone, Debug)]
struct ScenarioSpace {
    /// `None` = the single-transition §6.4 space.
    protocol: Option<Vec<ProtocolScenario>>,
}

impl ScenarioSpace {
    fn single_transition() -> Self {
        ScenarioSpace { protocol: None }
    }

    /// A protocol space; panics if a walk is empty, disconnected, times
    /// any fault window past the walk's end, or overrides its inputs with
    /// a schedule of the wrong length.
    fn protocol(cfg: &Cfg, scenarios: Vec<ProtocolScenario>) -> Self {
        for (i, s) in scenarios.iter().enumerate() {
            assert!(!s.edges.is_empty(), "protocol scenario {i} has no edges");
            for pair in s.edges.windows(2) {
                assert_eq!(
                    cfg.edges()[pair[0]].to,
                    cfg.edges()[pair[1]].from,
                    "protocol scenario {i} is not a connected walk"
                );
            }
            assert!(
                !s.schedule.windows().is_empty(),
                "protocol scenario {i} has an empty per-fault schedule"
            );
            for w in s.schedule.windows() {
                if let FaultTiming::Transient(c) = *w {
                    assert!(
                        c < s.edges.len(),
                        "protocol scenario {i} arms its fault at cycle {c}, past the {}-cycle walk",
                        s.edges.len()
                    );
                }
            }
            if let Some(inputs) = &s.inputs {
                assert_eq!(
                    inputs.len(),
                    s.edges.len(),
                    "protocol scenario {i} overrides inputs for {} cycles of a {}-cycle walk",
                    inputs.len(),
                    s.edges.len()
                );
            }
        }
        ScenarioSpace {
            protocol: Some(scenarios),
        }
    }

    /// Scenario count; `single_count` is the size of the
    /// single-transition space.
    fn count(&self, single_count: usize) -> usize {
        self.protocol.as_ref().map_or(single_count, Vec::len)
    }

    /// The CFG edge index driven at `cycle` of scenario `index`;
    /// `single_edge` maps a single-transition scenario index to its edge.
    fn edge_at(
        &self,
        index: usize,
        cycle: usize,
        single_edge: impl FnOnce(usize) -> usize,
    ) -> usize {
        match &self.protocol {
            Some(scenarios) => scenarios[index].edges[cycle],
            None => {
                debug_assert_eq!(cycle, 0, "single-transition scenarios have one cycle");
                single_edge(index)
            }
        }
    }

    /// Assembles the [`Scenario`] at `index`: registers preloaded with the
    /// first edge's source state, one input vector per walk edge.
    fn scenario(
        &self,
        index: usize,
        cfg: &Cfg,
        single_edge: impl Fn(usize) -> usize,
        regs_of: impl Fn(StateId) -> Vec<bool>,
        inputs_of: impl Fn(usize) -> Vec<bool>,
    ) -> Scenario {
        match &self.protocol {
            None => {
                let ei = single_edge(index);
                Scenario::single(regs_of(cfg.edges()[ei].from), inputs_of(ei))
            }
            Some(scenarios) => {
                let p = &scenarios[index];
                Scenario {
                    regs: regs_of(cfg.edges()[p.edges[0]].from),
                    inputs: match &p.inputs {
                        Some(fuzzed) => fuzzed.clone(),
                        None => p.edges.iter().map(|&ei| inputs_of(ei)).collect(),
                    },
                    schedule: p.schedule.clone(),
                }
            }
        }
    }
}

/// Campaign target for an SCFI-hardened FSM.
///
/// Detection = terminal ERROR, an invalid (non-codeword) register state
/// (which collapses to ERROR on the next edge), or an asserted alert — at
/// *any* cycle of the trajectory.
#[derive(Clone, Debug)]
pub struct ScfiTarget<'a> {
    hardened: &'a HardenedFsm,
    space: ScenarioSpace,
}

impl<'a> ScfiTarget<'a> {
    /// Wraps a hardened FSM with the single-transition scenario space (one
    /// scenario per CFG edge).
    pub fn new(hardened: &'a HardenedFsm) -> Self {
        ScfiTarget {
            hardened,
            space: ScenarioSpace::single_transition(),
        }
    }

    /// Multi-cycle protocol target: seeded random CFG walks of `depth`
    /// transitions, one transient injection scenario per walk step (see
    /// [`protocol_scenarios`]).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_protocol(hardened: &'a HardenedFsm, depth: usize, seed: u64) -> Self {
        Self::with_scenarios(hardened, protocol_scenarios(hardened.cfg(), depth, seed))
    }

    /// Adversarially fuzzed multi-cycle target: walks biased toward
    /// wrong-but-close condition codewords (see [`adversarial_walks`]),
    /// so consecutive steps drive condition words a small glitch is most
    /// likely to confuse. Every driven word stays a valid codeword — the
    /// §5 interface assumption (and with it the certification
    /// cross-oracle) is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_fuzzed_protocol(hardened: &'a HardenedFsm, depth: usize, seed: u64) -> Self {
        let cfg = hardened.cfg();
        let scenarios = fuzzed_protocol_scenarios(cfg, depth, seed, |ei| {
            let edge = &cfg.edges()[ei];
            hardened
                .condition_word(edge.local_index(hardened.fsm()))
                .iter()
                .collect()
        });
        Self::with_scenarios(hardened, scenarios)
    }

    /// Multi-cycle target over hand-picked protocol scenarios.
    ///
    /// # Panics
    ///
    /// Panics if a walk is empty, disconnected, or times its fault window
    /// past the walk's end.
    pub fn with_scenarios(hardened: &'a HardenedFsm, scenarios: Vec<ProtocolScenario>) -> Self {
        ScfiTarget {
            hardened,
            space: ScenarioSpace::protocol(hardened.cfg(), scenarios),
        }
    }

    /// The underlying hardened FSM.
    pub fn hardened(&self) -> &'a HardenedFsm {
        self.hardened
    }
}

impl FaultTarget for ScfiTarget<'_> {
    fn module(&self) -> &Module {
        self.hardened.module()
    }

    fn scenario_count(&self) -> usize {
        self.space.count(self.hardened.cfg().edges().len())
    }

    fn scenario(&self, index: usize) -> Scenario {
        let h = self.hardened;
        self.space.scenario(
            index,
            h.cfg(),
            |i| i,
            |s| h.encode_state(s).iter().collect(),
            |ei| {
                let edge = &h.cfg().edges()[ei];
                h.condition_word(edge.local_index(h.fsm())).iter().collect()
            },
        )
    }

    fn classify(&self, index: usize, cycle: usize, regs: &[bool], outputs: &[bool]) -> Outcome {
        let ei = self.space.edge_at(index, cycle, |i| i);
        let to = self.hardened.cfg().edges()[ei].to;
        let (alert_line, in_error) = self.hardened.alert_lines(outputs);
        let alert = alert_line || in_error;
        match self.hardened.decode_registers(regs) {
            StateDecode::State(s) if s == to && !alert => Outcome::Masked,
            StateDecode::State(s) if s == to => Outcome::Detected,
            StateDecode::Error | StateDecode::Invalid => Outcome::Detected,
            StateDecode::State(_) if alert => Outcome::Detected,
            StateDecode::State(_) => Outcome::Hijack,
        }
    }

    fn wave_oracle(&self) -> Option<WaveOracle> {
        let h = self.hardened;
        // decode_registers reads the whole register file as the state
        // codeword; fall back to the scalar path if that ever diverges.
        if h.state_code().width() != h.module().registers().len() {
            return None;
        }
        let codewords = (0..h.fsm().state_count())
            .map(|s| h.encode_state(StateId(s)).iter().collect())
            .collect();
        // Zero words are terminal ERROR, invalid codewords are caught on
        // the next edge, and the last two ports are alert/in_error —
        // exactly the scalar classification above.
        Some(WaveOracle::new(
            codewords,
            true,
            true,
            AlertModel::LastTwoOutputs,
        ))
    }

    fn expected_state(&self, index: usize, cycle: usize) -> usize {
        let ei = self.space.edge_at(index, cycle, |i| i);
        self.hardened.cfg().edges()[ei].to.0
    }
}

/// Campaign target for the redundancy baseline.
///
/// Detection = the register-mismatch alert. An undetected landing in any
/// state other than the cycle's expected state — including out-of-range
/// binary codes — is a hijack.
#[derive(Clone, Debug)]
pub struct RedundancyTarget<'a> {
    redundant: &'a RedundantFsm,
    space: ScenarioSpace,
}

impl<'a> RedundancyTarget<'a> {
    /// Wraps a redundancy-protected FSM (single-transition scenarios).
    pub fn new(redundant: &'a RedundantFsm) -> Self {
        RedundancyTarget {
            redundant,
            space: ScenarioSpace::single_transition(),
        }
    }

    /// Multi-cycle protocol target (see [`ScfiTarget::with_protocol`]).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_protocol(redundant: &'a RedundantFsm, depth: usize, seed: u64) -> Self {
        RedundancyTarget {
            redundant,
            space: ScenarioSpace::protocol(
                redundant.cfg(),
                protocol_scenarios(redundant.cfg(), depth, seed),
            ),
        }
    }

    /// Adversarially fuzzed multi-cycle target (see
    /// [`ScfiTarget::with_fuzzed_protocol`]): walks biased toward
    /// close-codeword condition transitions.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_fuzzed_protocol(redundant: &'a RedundantFsm, depth: usize, seed: u64) -> Self {
        let cfg = redundant.cfg();
        let scenarios = fuzzed_protocol_scenarios(cfg, depth, seed, |ei| {
            let edge = &cfg.edges()[ei];
            redundant
                .cond_code()
                .word(edge.local_index(redundant.fsm()))
                .iter()
                .collect()
        });
        RedundancyTarget {
            redundant,
            space: ScenarioSpace::protocol(cfg, scenarios),
        }
    }

    /// Multi-cycle target over hand-picked protocol scenarios.
    ///
    /// # Panics
    ///
    /// Panics if a walk is empty, disconnected, or times its fault window
    /// past the walk's end.
    pub fn with_scenarios(redundant: &'a RedundantFsm, scenarios: Vec<ProtocolScenario>) -> Self {
        RedundancyTarget {
            redundant,
            space: ScenarioSpace::protocol(redundant.cfg(), scenarios),
        }
    }

    /// The preload for a replica-bank register file holding `state`.
    fn preload(&self, state: StateId) -> Vec<bool> {
        let code = scfi_gf2::BitVec::from_u64(state.0 as u64, self.redundant.state_bits());
        let n_regs = self.redundant.module().registers().len();
        let replicas = n_regs / self.redundant.state_bits();
        let mut regs = Vec::with_capacity(n_regs);
        for _ in 0..replicas {
            regs.extend(code.iter());
        }
        regs
    }
}

impl FaultTarget for RedundancyTarget<'_> {
    fn module(&self) -> &Module {
        self.redundant.module()
    }

    fn scenario_count(&self) -> usize {
        self.space.count(self.redundant.cfg().edges().len())
    }

    fn scenario(&self, index: usize) -> Scenario {
        let r = self.redundant;
        self.space.scenario(
            index,
            r.cfg(),
            |i| i,
            |s| self.preload(s),
            |ei| {
                let edge = &r.cfg().edges()[ei];
                r.cond_code()
                    .word(edge.local_index(r.fsm()))
                    .iter()
                    .collect()
            },
        )
    }

    fn classify(&self, index: usize, cycle: usize, regs: &[bool], outputs: &[bool]) -> Outcome {
        let ei = self.space.edge_at(index, cycle, |i| i);
        let to = self.redundant.cfg().edges()[ei].to;
        // The mismatch comparator is combinational on the register banks,
        // so a corruption committed on this edge raises the alert in the
        // *next* cycle — evaluate it on the post-step banks directly.
        let sb = self.redundant.state_bits();
        let mismatch = regs.chunks(sb).skip(1).any(|bank| bank != &regs[..sb]);
        let alert = outputs[outputs.len() - 1] || mismatch;
        match self.redundant.decode_registers(regs) {
            Some(s) if s == to && !alert => Outcome::Masked,
            _ if alert => Outcome::Detected,
            _ => Outcome::Hijack,
        }
    }

    fn wave_oracle(&self) -> Option<WaveOracle> {
        let r = self.redundant;
        let sb = r.state_bits();
        // Bank 0 (the first state_bits registers) carries the natural
        // binary code; the alert is the registered mismatch line plus the
        // combinational replica comparison — the scalar classification
        // above, word-parallel.
        let codewords = (0..r.fsm().state_count())
            .map(|s| scfi_gf2::BitVec::from_u64(s as u64, sb).iter().collect())
            .collect();
        Some(WaveOracle::new(
            codewords,
            false,
            false,
            AlertModel::BankMismatch { state_bits: sb },
        ))
    }

    fn expected_state(&self, index: usize, cycle: usize) -> usize {
        let ei = self.space.edge_at(index, cycle, |i| i);
        self.redundant.cfg().edges()[ei].to.0
    }
}

/// Campaign target for a plain unprotected FSM netlist: no detection
/// mechanism exists, so every wrong landing is a hijack.
#[derive(Debug)]
pub struct UnprotectedTarget<'a> {
    fsm: &'a Fsm,
    lowered: &'a LoweredFsm,
    cfg: scfi_fsm::Cfg,
    /// Representative raw inputs per CFG edge; `None` for edges no input
    /// valuation can drive.
    representatives: Vec<Option<Vec<bool>>>,
    /// Drivable edges in ascending order — the single-transition scenario
    /// space.
    drivable: Vec<usize>,
    space: ScenarioSpace,
}

impl<'a> UnprotectedTarget<'a> {
    /// Builds the scenario list: one representative raw-input vector per
    /// reachable CFG edge (found by enumerating input valuations).
    ///
    /// # Panics
    ///
    /// Panics if the FSM has more than 20 control signals (enumeration
    /// guard).
    pub fn new(fsm: &'a Fsm, lowered: &'a LoweredFsm) -> Self {
        let n = fsm.signals().len();
        assert!(n <= 20, "too many signals to enumerate scenarios");
        let cfg = fsm.cfg();
        let mut representatives = vec![None; cfg.edges().len()];
        for bits in 0..(1u64 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            for s in fsm.states() {
                let ei = cfg.matched_edge(s, &inputs);
                if representatives[ei].is_none() {
                    representatives[ei] = Some(inputs.clone());
                }
            }
        }
        let drivable = (0..cfg.edges().len())
            .filter(|&ei| representatives[ei].is_some())
            .collect();
        UnprotectedTarget {
            fsm,
            lowered,
            cfg,
            representatives,
            drivable,
            space: ScenarioSpace::single_transition(),
        }
    }

    /// Multi-cycle protocol target: seeded random walks over the *drivable*
    /// edges only (an edge no input valuation can take cannot appear in a
    /// concrete input schedule).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (and inherits [`UnprotectedTarget::new`]'s
    /// signal-count guard).
    pub fn with_protocol(fsm: &'a Fsm, lowered: &'a LoweredFsm, depth: usize, seed: u64) -> Self {
        let mut target = Self::new(fsm, lowered);
        let walks = target
            .cfg
            .random_walks_where(depth, seed, |ei| target.representatives[ei].is_some());
        target.space = ScenarioSpace::protocol(&target.cfg, expand_walks(walks));
        target
    }

    /// Adversarially fuzzed multi-cycle target: the same drivable random
    /// walks as [`with_protocol`](Self::with_protocol), but every cycle of
    /// every scenario samples its raw input word from *all* valuations
    /// driving that edge (up to [`Self::INPUT_VARIANTS`] per edge) instead
    /// of reusing the one on-walk representative — the attacker's free
    /// choice of inputs from §3, restricted to words that keep the walk on
    /// its edge sequence.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (and inherits [`UnprotectedTarget::new`]'s
    /// signal-count guard).
    pub fn with_fuzzed_protocol(
        fsm: &'a Fsm,
        lowered: &'a LoweredFsm,
        depth: usize,
        seed: u64,
    ) -> Self {
        let mut target = Self::new(fsm, lowered);
        let n = fsm.signals().len();
        // Every admissible valuation per edge, capped per edge: the same
        // enumeration as `new`, kept instead of first-hit-only.
        let mut variants: Vec<Vec<Vec<bool>>> = vec![Vec::new(); target.cfg.edges().len()];
        for bits in 0..(1u64 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            for s in fsm.states() {
                let ei = target.cfg.matched_edge(s, &inputs);
                if variants[ei].len() < Self::INPUT_VARIANTS {
                    variants[ei].push(inputs.clone());
                }
            }
        }
        let walks = target
            .cfg
            .random_walks_where(depth, seed, |ei| target.representatives[ei].is_some());
        let mut next = xorshift64star(seed ^ 0xF0_22_1E);
        let mut scenarios = Vec::new();
        for walk in walks {
            for cycle in 0..walk.len() {
                let fuzzed: Vec<Vec<bool>> = walk
                    .iter()
                    .map(|&ei| {
                        let pool = &variants[ei];
                        pool[(next() % pool.len() as u64) as usize].clone()
                    })
                    .collect();
                scenarios.push(
                    ProtocolScenario::uniform(walk.clone(), FaultTiming::Transient(cycle))
                        .with_inputs(fuzzed),
                );
            }
        }
        target.space = ScenarioSpace::protocol(&target.cfg, scenarios);
        target
    }

    /// Input valuations sampled per edge by
    /// [`with_fuzzed_protocol`](Self::with_fuzzed_protocol).
    pub const INPUT_VARIANTS: usize = 8;

    /// Multi-cycle target over hand-picked protocol scenarios. Every walk
    /// edge must be drivable (see
    /// [`UnprotectedTarget::scenario_edge_is_drivable`]) — an edge no input
    /// valuation can take has no concrete input vector to schedule.
    ///
    /// # Panics
    ///
    /// Panics if a walk is empty, disconnected, times its fault window past
    /// the walk's end, or uses an undrivable edge.
    pub fn with_scenarios(
        fsm: &'a Fsm,
        lowered: &'a LoweredFsm,
        scenarios: Vec<ProtocolScenario>,
    ) -> Self {
        let mut target = Self::new(fsm, lowered);
        for (i, s) in scenarios.iter().enumerate() {
            for &ei in &s.edges {
                assert!(
                    target.representatives[ei].is_some(),
                    "protocol scenario {i} uses edge {ei}, which no input valuation drives"
                );
            }
        }
        target.space = ScenarioSpace::protocol(&target.cfg, scenarios);
        target
    }

    /// Whether some input valuation takes CFG edge `ei` — i.e. whether the
    /// edge can appear in a concrete protocol schedule.
    pub fn scenario_edge_is_drivable(&self, ei: usize) -> bool {
        self.representatives[ei].is_some()
    }

    /// The source FSM.
    pub fn fsm(&self) -> &'a Fsm {
        self.fsm
    }

    fn raw_inputs(&self, ei: usize) -> Vec<bool> {
        self.representatives[ei]
            .clone()
            .expect("scenario edges are drivable by construction")
    }
}

impl FaultTarget for UnprotectedTarget<'_> {
    fn module(&self) -> &Module {
        self.lowered.module()
    }

    fn scenario_count(&self) -> usize {
        self.space.count(self.drivable.len())
    }

    fn scenario(&self, index: usize) -> Scenario {
        self.space.scenario(
            index,
            &self.cfg,
            |i| self.drivable[i],
            |s| self.lowered.encoding(s).iter().collect(),
            |ei| self.raw_inputs(ei),
        )
    }

    fn classify(&self, index: usize, cycle: usize, regs: &[bool], _outputs: &[bool]) -> Outcome {
        let ei = self.space.edge_at(index, cycle, |i| self.drivable[i]);
        match self.lowered.decode_registers(regs) {
            Some(s) if s == self.cfg.edges()[ei].to => Outcome::Masked,
            _ => Outcome::Hijack,
        }
    }

    fn wave_oracle(&self) -> Option<WaveOracle> {
        let enc = self.lowered.encodings();
        // decode_registers matches the whole register file against the
        // binary encodings; a width mismatch would never decode, so keep
        // the scalar fallback for that (impossible by construction) case.
        if enc.is_empty() || enc[0].len() != self.module().registers().len() {
            return None;
        }
        Some(WaveOracle::new(
            enc.iter().map(|e| e.iter().collect()).collect(),
            false,
            false,
            AlertModel::None,
        ))
    }

    fn expected_state(&self, index: usize, cycle: usize) -> usize {
        let ei = self.space.edge_at(index, cycle, |i| self.drivable[i]);
        self.cfg.edges()[ei].to.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_core::{harden, redundancy, ScfiConfig};
    use scfi_fsm::{lower_unprotected, parse_fsm};

    fn fsm() -> Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn scfi_scenarios_cover_all_edges() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        assert_eq!(t.scenario_count(), h.cfg().edges().len());
        for i in 0..t.scenario_count() {
            let sc = t.scenario(i);
            assert_eq!(sc.cycles(), 1);
            assert_eq!(sc.schedule, FaultSchedule::Uniform(FaultTiming::Permanent));
            assert_eq!(sc.regs.len(), h.state_code().width());
            assert_eq!(sc.inputs[0].len(), h.cond_code().width());
        }
    }

    #[test]
    fn redundancy_scenarios_preload_all_banks() {
        let f = fsm();
        let r = redundancy(&f, 3).unwrap();
        let t = RedundancyTarget::new(&r);
        let sc = t.scenario(0);
        assert_eq!(sc.regs.len(), r.module().registers().len());
    }

    #[test]
    fn unprotected_scenarios_cover_reachable_edges() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let t = UnprotectedTarget::new(&f, &lowered);
        // All 6 edges (S0: a, b, stay; S1: b, stay; S2: goto) are drivable.
        assert_eq!(t.scenario_count(), f.cfg().edges().len());
    }

    #[test]
    fn fault_free_runs_classify_as_masked() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        for i in 0..t.scenario_count() {
            let sc = t.scenario(i);
            let mut sim = scfi_netlist::Simulator::new(t.module());
            sim.set_register_values(&sc.regs);
            let out = sim.step(&sc.inputs[0]);
            assert_eq!(
                t.classify(i, 0, sim.register_values(), &out),
                Outcome::Masked,
                "scenario {i}"
            );
        }
    }

    /// Walks every protocol scenario of every target fault-free and checks
    /// each cycle classifies as Masked — the N-cycle generalization of the
    /// fault-free sanity check.
    #[test]
    fn fault_free_protocol_walks_classify_as_masked_every_cycle() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::with_protocol(&h, 4, 11);
        assert!(t.scenario_count() > 0);
        for i in 0..t.scenario_count() {
            let sc = t.scenario(i);
            assert_eq!(sc.cycles(), 4);
            let mut sim = scfi_netlist::Simulator::new(t.module());
            sim.set_register_values(&sc.regs);
            for (c, inputs) in sc.inputs.iter().enumerate() {
                let out = sim.step(inputs);
                assert_eq!(
                    t.classify(i, c, sim.register_values(), &out),
                    Outcome::Masked,
                    "scenario {i} cycle {c}"
                );
            }
        }
    }

    #[test]
    fn protocol_scenarios_expand_one_injection_cycle_per_step() {
        let f = fsm();
        let cfg = f.cfg();
        let depth = 3;
        let scenarios = protocol_scenarios(&cfg, depth, 99);
        assert_eq!(scenarios.len(), cfg.edges().len() * depth);
        for s in &scenarios {
            assert_eq!(s.edges.len(), depth);
            match s.schedule.window(0) {
                FaultTiming::Transient(c) => assert!(c < depth),
                FaultTiming::Permanent => panic!("generator emits transient windows"),
            }
        }
    }

    #[test]
    fn unprotected_protocol_walks_stay_drivable() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let t = UnprotectedTarget::with_protocol(&f, &lowered, 3, 5);
        for i in 0..t.scenario_count() {
            let sc = t.scenario(i);
            // Replaying the schedule on the behavioral FSM must follow the
            // walk exactly (each representative input drives its edge).
            let mut state = t.cfg.edges()[t.space.protocol.as_ref().unwrap()[i].edges[0]].from;
            for (c, raw) in sc.inputs.iter().enumerate() {
                let ei = t.cfg.matched_edge(state, raw);
                assert_eq!(ei, t.space.protocol.as_ref().unwrap()[i].edges[c]);
                state = t.cfg.edges()[ei].to;
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a connected walk")]
    fn disconnected_walks_are_rejected() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let cfg = h.cfg();
        // Find two edges that do not chain.
        let e0 = 0;
        let e1 = (0..cfg.edges().len())
            .find(|&e| cfg.edges()[e0].to != cfg.edges()[e].from)
            .expect("some disconnected pair");
        let _ = ScfiTarget::with_scenarios(
            &h,
            vec![ProtocolScenario::uniform(
                vec![e0, e1],
                FaultTiming::Permanent,
            )],
        );
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn late_fault_windows_are_rejected() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let _ = ScfiTarget::with_scenarios(
            &h,
            vec![ProtocolScenario::uniform(
                vec![0],
                FaultTiming::Transient(1),
            )],
        );
    }

    #[test]
    fn per_fault_schedules_window_each_fault_and_clamp() {
        let s = FaultSchedule::PerFault(vec![FaultTiming::Transient(0), FaultTiming::Transient(2)]);
        assert_eq!(s.window(0), FaultTiming::Transient(0));
        assert_eq!(s.window(1), FaultTiming::Transient(2));
        // Groups larger than the schedule reuse the last window.
        assert_eq!(s.window(5), FaultTiming::Transient(2));
        assert_eq!(s.windows().len(), 2);
        let u: FaultSchedule = FaultTiming::Permanent.into();
        assert_eq!(u.window(3), FaultTiming::Permanent);
        assert_eq!(u.windows(), &[FaultTiming::Permanent]);
    }

    #[test]
    fn work_item_overrides_beat_the_scenario_schedule() {
        let sc = Scenario::single(vec![], vec![]);
        assert_eq!(sc.fault_window(&[], 0), FaultTiming::Permanent);
        let ov = [None, Some(FaultTiming::Transient(0))];
        assert_eq!(sc.fault_window(&ov, 0), FaultTiming::Permanent);
        assert_eq!(sc.fault_window(&ov, 1), FaultTiming::Transient(0));
    }

    #[test]
    #[should_panic(expected = "empty per-fault schedule")]
    fn empty_per_fault_schedules_are_rejected() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let _ = ScfiTarget::with_scenarios(
            &h,
            vec![ProtocolScenario::new(
                vec![0],
                FaultSchedule::PerFault(Vec::new()),
            )],
        );
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn late_per_fault_windows_are_rejected() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let _ = ScfiTarget::with_scenarios(
            &h,
            vec![ProtocolScenario::new(
                vec![0],
                FaultSchedule::PerFault(vec![FaultTiming::Transient(0), FaultTiming::Transient(1)]),
            )],
        );
    }

    #[test]
    fn fuzzed_unprotected_walks_stay_drivable_and_vary_words() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let t = UnprotectedTarget::with_fuzzed_protocol(&f, &lowered, 3, 5);
        let protocol = t.space.protocol.as_ref().unwrap();
        assert!(t.scenario_count() > 0);
        assert_eq!(protocol.len(), t.scenario_count());
        let mut varied = false;
        for (i, walk) in protocol.iter().enumerate() {
            let sc = t.scenario(i);
            let mut state = t.cfg.edges()[walk.edges[0]].from;
            for (c, raw) in sc.inputs.iter().enumerate() {
                let ei = t.cfg.matched_edge(state, raw);
                assert_eq!(ei, walk.edges[c], "scenario {i} cycle {c}");
                varied |= Some(raw) != t.representatives[ei].as_ref();
                state = t.cfg.edges()[ei].to;
            }
        }
        assert!(varied, "fuzzing never left the representative words");
    }

    #[test]
    fn adversarial_walks_prefer_hamming_close_codewords() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::with_fuzzed_protocol(&h, 4, 7);
        // Every fuzzed walk is still a connected drivable walk with one
        // transient scenario per injection cycle (validated on
        // construction); the set is deterministic in the seed.
        assert_eq!(t.scenario_count(), h.cfg().edges().len() * 4);
        let again = ScfiTarget::with_fuzzed_protocol(&h, 4, 7);
        for i in 0..t.scenario_count() {
            assert_eq!(t.scenario(i), again.scenario(i));
        }
    }

    #[test]
    fn fault_timing_windows() {
        assert!(FaultTiming::Permanent.armed_at(0));
        assert!(FaultTiming::Permanent.armed_at(7));
        assert_eq!(FaultTiming::Permanent.flip_cycle(), 0);
        let t = FaultTiming::Transient(2);
        assert!(!t.armed_at(1));
        assert!(t.armed_at(2));
        assert!(!t.armed_at(3));
        assert_eq!(t.flip_cycle(), 2);
    }
}
