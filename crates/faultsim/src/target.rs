//! Fault-campaign targets: the three §6.1 configurations behind one trait.

use scfi_core::{HardenedFsm, RedundantFsm, StateDecode};
use scfi_fsm::{Fsm, LoweredFsm};
use scfi_netlist::Module;

use crate::campaign::Outcome;

/// A circuit (plus its oracle) a fault campaign can attack.
///
/// A target defines the scenario space — one scenario per CFG edge — and
/// classifies post-transition register/output values against the fault-free
/// expectation.
pub trait FaultTarget: Sync {
    /// The netlist under attack.
    fn module(&self) -> &Module;

    /// Number of scenarios (CFG edges).
    fn scenario_count(&self) -> usize;

    /// Register preload and input vector for a scenario.
    fn scenario(&self, index: usize) -> (Vec<bool>, Vec<bool>);

    /// Classifies the post-step registers and outputs.
    fn classify(&self, index: usize, regs: &[bool], outputs: &[bool]) -> Outcome;
}

/// Campaign target for an SCFI-hardened FSM.
///
/// Detection = terminal ERROR, an invalid (non-codeword) register state
/// (which collapses to ERROR on the next edge), or an asserted alert.
#[derive(Clone, Copy, Debug)]
pub struct ScfiTarget<'a> {
    hardened: &'a HardenedFsm,
}

impl<'a> ScfiTarget<'a> {
    /// Wraps a hardened FSM.
    pub fn new(hardened: &'a HardenedFsm) -> Self {
        ScfiTarget { hardened }
    }

    /// The underlying hardened FSM.
    pub fn hardened(&self) -> &'a HardenedFsm {
        self.hardened
    }
}

impl FaultTarget for ScfiTarget<'_> {
    fn module(&self) -> &Module {
        self.hardened.module()
    }

    fn scenario_count(&self) -> usize {
        self.hardened.cfg().edges().len()
    }

    fn scenario(&self, index: usize) -> (Vec<bool>, Vec<bool>) {
        let edge = &self.hardened.cfg().edges()[index];
        let regs = self.hardened.encode_state(edge.from).iter().collect();
        let class = edge.local_index(self.hardened.fsm());
        let xe = self.hardened.condition_word(class).iter().collect();
        (regs, xe)
    }

    fn classify(&self, index: usize, regs: &[bool], outputs: &[bool]) -> Outcome {
        let edge = &self.hardened.cfg().edges()[index];
        let n = outputs.len();
        let alert = outputs[n - 2] || outputs[n - 1];
        match self.hardened.decode_registers(regs) {
            StateDecode::State(s) if s == edge.to && !alert => Outcome::Masked,
            StateDecode::State(s) if s == edge.to => Outcome::Detected,
            StateDecode::Error | StateDecode::Invalid => Outcome::Detected,
            StateDecode::State(_) if alert => Outcome::Detected,
            StateDecode::State(_) => Outcome::Hijack,
        }
    }
}

/// Campaign target for the redundancy baseline.
///
/// Detection = the register-mismatch alert. An undetected landing in any
/// state other than the edge target — including out-of-range binary codes —
/// is a hijack.
#[derive(Clone, Copy, Debug)]
pub struct RedundancyTarget<'a> {
    redundant: &'a RedundantFsm,
}

impl<'a> RedundancyTarget<'a> {
    /// Wraps a redundancy-protected FSM.
    pub fn new(redundant: &'a RedundantFsm) -> Self {
        RedundancyTarget { redundant }
    }
}

impl FaultTarget for RedundancyTarget<'_> {
    fn module(&self) -> &Module {
        self.redundant.module()
    }

    fn scenario_count(&self) -> usize {
        self.redundant.cfg().edges().len()
    }

    fn scenario(&self, index: usize) -> (Vec<bool>, Vec<bool>) {
        let fsm = self.redundant.fsm();
        let edge = &self.redundant.cfg().edges()[index];
        // Every replica bank holds the same source-state code.
        let code = scfi_gf2::BitVec::from_u64(edge.from.0 as u64, self.redundant.state_bits());
        let n_regs = self.redundant.module().registers().len();
        let replicas = n_regs / self.redundant.state_bits();
        let mut regs = Vec::with_capacity(n_regs);
        for _ in 0..replicas {
            regs.extend(code.iter());
        }
        let xe = self
            .redundant
            .cond_code()
            .word(edge.local_index(fsm))
            .iter()
            .collect();
        (regs, xe)
    }

    fn classify(&self, index: usize, regs: &[bool], outputs: &[bool]) -> Outcome {
        let edge = &self.redundant.cfg().edges()[index];
        // The mismatch comparator is combinational on the register banks,
        // so a corruption committed on this edge raises the alert in the
        // *next* cycle — evaluate it on the post-step banks directly.
        let sb = self.redundant.state_bits();
        let mismatch = regs.chunks(sb).skip(1).any(|bank| bank != &regs[..sb]);
        let alert = outputs[outputs.len() - 1] || mismatch;
        match self.redundant.decode_registers(regs) {
            Some(s) if s == edge.to && !alert => Outcome::Masked,
            _ if alert => Outcome::Detected,
            _ => Outcome::Hijack,
        }
    }
}

/// Campaign target for a plain unprotected FSM netlist: no detection
/// mechanism exists, so every wrong landing is a hijack.
#[derive(Debug)]
pub struct UnprotectedTarget<'a> {
    fsm: &'a Fsm,
    lowered: &'a LoweredFsm,
    cfg: scfi_fsm::Cfg,
    /// One `(edge index, raw inputs)` representative per CFG edge.
    scenarios: Vec<(usize, Vec<bool>)>,
}

impl<'a> UnprotectedTarget<'a> {
    /// Builds the scenario list: one representative raw-input vector per
    /// reachable CFG edge (found by enumerating input valuations).
    ///
    /// # Panics
    ///
    /// Panics if the FSM has more than 20 control signals (enumeration
    /// guard).
    pub fn new(fsm: &'a Fsm, lowered: &'a LoweredFsm) -> Self {
        let n = fsm.signals().len();
        assert!(n <= 20, "too many signals to enumerate scenarios");
        let cfg = fsm.cfg();
        let mut scenarios = Vec::new();
        let mut covered = vec![false; cfg.edges().len()];
        for bits in 0..(1u64 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            for s in fsm.states() {
                let ei = cfg.matched_edge(s, &inputs);
                if !covered[ei] {
                    covered[ei] = true;
                    scenarios.push((ei, inputs.clone()));
                }
            }
        }
        scenarios.sort_by_key(|&(ei, _)| ei);
        UnprotectedTarget {
            fsm,
            lowered,
            cfg,
            scenarios,
        }
    }

    /// The source FSM.
    pub fn fsm(&self) -> &'a Fsm {
        self.fsm
    }
}

impl FaultTarget for UnprotectedTarget<'_> {
    fn module(&self) -> &Module {
        self.lowered.module()
    }

    fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    fn scenario(&self, index: usize) -> (Vec<bool>, Vec<bool>) {
        let (ei, ref inputs) = self.scenarios[index];
        let edge = &self.cfg.edges()[ei];
        let regs = self.lowered.encoding(edge.from).iter().collect();
        (regs, inputs.clone())
    }

    fn classify(&self, index: usize, regs: &[bool], _outputs: &[bool]) -> Outcome {
        let (ei, _) = self.scenarios[index];
        let edge = &self.cfg.edges()[ei];
        match self.lowered.decode_registers(regs) {
            Some(s) if s == edge.to => Outcome::Masked,
            _ => Outcome::Hijack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_core::{harden, redundancy, ScfiConfig};
    use scfi_fsm::{lower_unprotected, parse_fsm};

    fn fsm() -> Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn scfi_scenarios_cover_all_edges() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        assert_eq!(t.scenario_count(), h.cfg().edges().len());
        for i in 0..t.scenario_count() {
            let (regs, xe) = t.scenario(i);
            assert_eq!(regs.len(), h.state_code().width());
            assert_eq!(xe.len(), h.cond_code().width());
        }
    }

    #[test]
    fn redundancy_scenarios_preload_all_banks() {
        let f = fsm();
        let r = redundancy(&f, 3).unwrap();
        let t = RedundancyTarget::new(&r);
        let (regs, _) = t.scenario(0);
        assert_eq!(regs.len(), r.module().registers().len());
    }

    #[test]
    fn unprotected_scenarios_cover_reachable_edges() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let t = UnprotectedTarget::new(&f, &lowered);
        // All 6 edges (S0: a, b, stay; S1: b, stay; S2: goto) are drivable.
        assert_eq!(t.scenario_count(), f.cfg().edges().len());
    }

    #[test]
    fn fault_free_runs_classify_as_masked() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        for i in 0..t.scenario_count() {
            let (regs, xe) = t.scenario(i);
            let mut sim = scfi_netlist::Simulator::new(t.module());
            sim.set_register_values(&regs);
            let out = sim.step(&xe);
            assert_eq!(
                t.classify(i, sim.register_values(), &out),
                Outcome::Masked,
                "scenario {i}"
            );
        }
    }
}
