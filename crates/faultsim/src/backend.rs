//! Pluggable campaign execution backends.
//!
//! A [`CampaignBackend`] is the execution contract behind every campaign
//! driver: compile the target's netlist once, run a [`WorkList`] of
//! `(scenario, faults)` items, and return **one [`Outcome`] per item, in
//! item order** — deterministically, independent of thread count, batching
//! or internal lane order. Everything above the backend (aggregation,
//! vulnerability maps, certification cross-checks, the CLI) is engine
//! agnostic; everything below it is free to batch, prune and parallelize
//! however it likes, as long as the slot-ordered outcome vector is
//! byte-identical across backends. The workspace differential suites pin
//! that equivalence on every Table-1 FSM at every width and thread count.
//!
//! Three implementations ship:
//!
//! * [`ScalarBackend`] — one [`Simulator`] per worker, one injection at a
//!   time. The semantic reference: slowest, trivially auditable, and the
//!   engine the packed backends are differentially tested against.
//! * [`PackedBackend`] — the bit-parallel wave engine over `[u64; W]` net
//!   words, `W` ∈ {1, 2, 4} from [`CampaignConfig::lane_words`]: 64–256
//!   injections per netlist pass with word-parallel classification,
//!   incremental re-simulation and wave-level cycle skipping.
//! * [`SimdBackend`] — the same wave engine fixed at
//!   [`SIMD_LANE_WORDS`] = 8 words (512 lanes per op). The `[u64; 8]`
//!   inner loops are shaped for the compiler's vectorizer (full 512-bit
//!   rows on AVX-512, pairs of 256-bit ops on AVX2); on narrow machines it
//!   degrades gracefully to unrolled scalar word ops.
//!
//! Campaign drivers pick the backend from
//! [`CampaignConfig::backend`](CampaignConfig::backend); the CLI exposes
//! the same choice as `scfi analyze --backend scalar|packed|simd`.

use scfi_netlist::{Simulator, SIMD_LANE_WORDS};

use crate::campaign::{run_item_scalar, CampaignConfig, Outcome};
use crate::target::{FaultTarget, Scenario};
use crate::wave::{self, WorkList};

/// Selects which [`CampaignBackend`] a campaign runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The scalar reference engine ([`ScalarBackend`]).
    Scalar,
    /// The tunable-width packed wave engine ([`PackedBackend`]).
    #[default]
    Packed,
    /// The fixed 512-lane vectorization-shaped wave engine
    /// ([`SimdBackend`]).
    Simd,
}

impl Backend {
    /// Every backend, in `scalar < packed < simd` order.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Packed, Backend::Simd];

    /// Parses a backend name as accepted by `scfi analyze --backend`.
    pub fn parse(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "packed" => Some(Backend::Packed),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }

    /// The backend's canonical name (`parse`'s inverse).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Packed => "packed",
            Backend::Simd => "simd",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A campaign execution engine.
///
/// # Contract
///
/// `execute` returns exactly `work.len()` outcomes, where outcome `i` is
/// the folded trajectory verdict of injecting `work.item(i)`'s fault group
/// into its scenario — the verdict the scalar reference loop computes. The
/// vector must be *deterministic*: a pure function of `(target, work)`,
/// never of `config.threads`, wave boundaries, or scheduling. Backends may
/// consult `config` only for execution-shape knobs (threads, lane words).
pub trait CampaignBackend {
    /// The backend's canonical name (for reports and diagnostics).
    fn name(&self) -> &'static str;

    /// Runs every item of `work` against `target`, returning slot-ordered
    /// outcomes.
    fn execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
    ) -> Vec<Outcome>;
}

/// The scalar reference backend: one [`Simulator`] per worker thread,
/// injections run one at a time with the last scenario cached, outcomes
/// written straight into their work-list slots.
///
/// Strictly slower than the wave backends; it exists as the differential
/// oracle (and for debugging single injections with `peek` and VCD hooks).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarBackend;

/// The tunable-width packed wave backend: `[u64; W]` waves with
/// `W` = [`CampaignConfig::lane_words`] ∈ {1, 2, 4}.
#[derive(Clone, Copy, Debug, Default)]
pub struct PackedBackend;

/// The fixed-width SIMD wave backend: [`SIMD_LANE_WORDS`]-word
/// (512-lane) waves, ignoring [`CampaignConfig::lane_words`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimdBackend;

impl CampaignBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
    ) -> Vec<Outcome> {
        let n = work.len();
        let mut outcomes = vec![Outcome::Masked; n];
        if n == 0 {
            return outcomes;
        }
        // Each worker owns one reusable simulator and output buffer and
        // caches the last materialized scenario, so the per-injection cost
        // is one register reset plus the scenario's simulated cycles.
        let run_range = |start: usize, out: &mut [Outcome]| {
            let mut sim = Simulator::new(target.module());
            let mut outputs = Vec::with_capacity(target.module().outputs().len());
            let mut cached: Option<(usize, Scenario)> = None;
            for (k, slot) in out.iter_mut().enumerate() {
                let (scenario, faults) = work.item(start + k);
                if cached.as_ref().map(|c| c.0) != Some(scenario) {
                    cached = Some((scenario, target.scenario(scenario)));
                }
                let (_, sc) = cached.as_ref().expect("cached scenario");
                *slot = run_item_scalar(target, &mut sim, scenario, sc, faults, &mut outputs);
            }
        };
        let threads = config.thread_count().min(n);
        if threads <= 1 || n < 64 {
            run_range(0, &mut outcomes);
        } else {
            // Contiguous slot ranges per worker: each writes its own
            // disjoint outcome slice, so the result is slot-ordered by
            // construction.
            let per = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, chunk) in outcomes.chunks_mut(per).enumerate() {
                    let run_range = &run_range;
                    scope.spawn(move || run_range(t * per, chunk));
                }
            });
        }
        outcomes
    }
}

impl CampaignBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
    ) -> Vec<Outcome> {
        wave::execute(
            target,
            work,
            config.thread_count(),
            config.lane_word_count(),
        )
    }
}

impl CampaignBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
    ) -> Vec<Outcome> {
        wave::execute(target, work, config.thread_count(), SIMD_LANE_WORDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip_through_parse() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(Backend::parse("avx1024"), None);
        assert_eq!(Backend::default(), Backend::Packed);
    }

    #[test]
    fn trait_names_match_enum_names() {
        assert_eq!(ScalarBackend.name(), Backend::Scalar.name());
        assert_eq!(PackedBackend.name(), Backend::Packed.name());
        assert_eq!(SimdBackend.name(), Backend::Simd.name());
    }
}
