//! Pluggable campaign execution backends.
//!
//! A [`CampaignBackend`] is the execution contract behind every campaign
//! driver: compile the target's netlist once, run a [`WorkList`] of
//! `(scenario, faults)` items, and return **one [`Outcome`] per item, in
//! item order** — deterministically, independent of thread count, batching
//! or internal lane order. Everything above the backend (aggregation,
//! vulnerability maps, certification cross-checks, the CLI) is engine
//! agnostic; everything below it is free to batch, prune and parallelize
//! however it likes, as long as the slot-ordered outcome vector is
//! byte-identical across backends. The workspace differential suites pin
//! that equivalence on every Table-1 FSM at every width and thread count.
//!
//! Three implementations ship:
//!
//! * [`ScalarBackend`] — one [`Simulator`] per worker, one injection at a
//!   time. The semantic reference: slowest, trivially auditable, and the
//!   engine the packed backends are differentially tested against.
//! * [`PackedBackend`] — the bit-parallel wave engine over `[u64; W]` net
//!   words, `W` ∈ {1, 2, 4} from [`CampaignConfig::lane_words`]: 64–256
//!   injections per netlist pass with word-parallel classification,
//!   incremental re-simulation and wave-level cycle skipping.
//! * [`SimdBackend`] — the same wave engine fixed at
//!   [`SIMD_LANE_WORDS`](scfi_netlist::SIMD_LANE_WORDS) = 8 words
//!   (512 lanes per op). The `[u64; 8]`
//!   inner loops are shaped for the compiler's vectorizer (full 512-bit
//!   rows on AVX-512, pairs of 256-bit ops on AVX2); on narrow machines it
//!   degrades gracefully to unrolled scalar word ops.
//!
//! Campaign drivers pick the backend from
//! [`CampaignConfig::backend`](CampaignConfig::backend); the CLI exposes
//! the same choice as `scfi analyze --backend scalar|packed|simd`.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use scfi_netlist::{Simulator, LANES};

use crate::campaign::{run_item_scalar, CampaignConfig, Outcome};
use crate::control::{CampaignError, LaneWidth, RunControl, StopReason};
use crate::target::{FaultTarget, Scenario};
use crate::wave::{self, RunOutput, WaveStats, WorkList};

/// Selects which [`CampaignBackend`] a campaign runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The scalar reference engine ([`ScalarBackend`]).
    Scalar,
    /// The tunable-width packed wave engine ([`PackedBackend`]).
    #[default]
    Packed,
    /// The fixed 512-lane vectorization-shaped wave engine
    /// ([`SimdBackend`]).
    Simd,
}

impl Backend {
    /// Every backend, in `scalar < packed < simd` order.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Packed, Backend::Simd];

    /// Parses a backend name as accepted by `scfi analyze --backend`.
    pub fn parse(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "packed" => Some(Backend::Packed),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }

    /// The backend's canonical name (`parse`'s inverse).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Packed => "packed",
            Backend::Simd => "simd",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A campaign execution engine.
///
/// # Contract
///
/// `try_execute` returns exactly `work.len()` outcomes, where outcome `i`
/// is the folded trajectory verdict of injecting `work.item(i)`'s fault
/// group into its scenario — the verdict the scalar reference loop
/// computes. The vector must be *deterministic*: a pure function of
/// `(target, work)`, never of `config.threads`, wave boundaries, or
/// scheduling. Backends may consult `config` only for execution-shape
/// knobs (threads, lane words).
///
/// # Execution control
///
/// Backends consult `control` through [`RunControl::admit`] once per wave
/// (never per gate or per cycle) and wrap each wave in
/// [`std::panic::catch_unwind`]. The determinism contract extends to
/// interruption: a refused wave leaves its slots out of the
/// [`PartialReport`](crate::PartialReport), and every slot that *did*
/// complete is byte-identical to the same slot of an uninterrupted run —
/// at any thread count, on any backend.
pub trait CampaignBackend {
    /// The backend's canonical name (for reports and diagnostics).
    fn name(&self) -> &'static str;

    /// Runs `work` against `target` under `control`, returning
    /// slot-ordered outcomes — or, when interrupted or poisoned, the
    /// typed [`CampaignError`] carrying everything that completed.
    fn try_execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
        control: &RunControl,
    ) -> Result<Vec<Outcome>, CampaignError>;

    /// Runs every item of `work` against `target`, returning slot-ordered
    /// outcomes. Thin wrapper over [`try_execute`](Self::try_execute)
    /// with an unlimited [`RunControl`].
    ///
    /// # Panics
    ///
    /// Panics with the [`CampaignError`] description if a wave panics
    /// (the caught payload is embedded in the message).
    fn execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
    ) -> Vec<Outcome> {
        self.try_execute(target, work, config, &RunControl::unlimited())
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The scalar reference backend: one [`Simulator`] per worker thread,
/// injections run one at a time with the last scenario cached, outcomes
/// written straight into their work-list slots.
///
/// Strictly slower than the wave backends; it exists as the differential
/// oracle (and for debugging single injections with `peek` and VCD hooks).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarBackend;

/// The tunable-width packed wave backend: `[u64; W]` waves with
/// `W` = [`CampaignConfig::lane_words`] ∈ {1, 2, 4}.
#[derive(Clone, Copy, Debug, Default)]
pub struct PackedBackend;

/// The fixed-width SIMD wave backend:
/// [`SIMD_LANE_WORDS`](scfi_netlist::SIMD_LANE_WORDS)-word (512-lane)
/// waves, ignoring [`CampaignConfig::lane_words`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimdBackend;

impl CampaignBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn try_execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
        control: &RunControl,
    ) -> Result<Vec<Outcome>, CampaignError> {
        let n = work.len();
        let mut outcomes: Vec<Option<Outcome>> = vec![None; n];
        if n == 0 {
            return Ok(Vec::new());
        }
        // Each worker owns one reusable simulator and output buffer and
        // caches the last materialized scenario, so the per-injection cost
        // is one register reset plus the scenario's simulated cycles.
        // Items run one at a time, but control checks and panic isolation
        // are chunked at the wave granularity ([`LANES`] items) so the
        // scalar backend honors the same wave-boundary contract as the
        // packed engines.
        let telemetry = config.telemetry_handle();
        let waves_total = telemetry.counter("scfi_campaign_waves_total");
        let injections_total = telemetry.counter("scfi_campaign_injections_total");
        let run_range = |start: usize,
                         out: &mut [Option<Outcome>]|
         -> (Option<StopReason>, Vec<(Range<usize>, String)>) {
            let mut sim = Simulator::new(target.module());
            let mut outputs = Vec::with_capacity(target.module().outputs().len());
            let mut cached: Option<(usize, Scenario)> = None;
            let mut stopped = None;
            let mut panics = Vec::new();
            let mut done = 0usize;
            while done < out.len() {
                let chunk = LANES.min(out.len() - done);
                if let Err(reason) = control.admit(chunk) {
                    stopped = Some(reason);
                    break;
                }
                waves_total.inc();
                injections_total.add(chunk as u64);
                let wave = catch_unwind(AssertUnwindSafe(|| {
                    for (k, slot) in out.iter_mut().enumerate().skip(done).take(chunk) {
                        let (scenario, faults) = work.item(start + k);
                        if cached.as_ref().map(|c| c.0) != Some(scenario) {
                            cached = Some((scenario, target.scenario(scenario)));
                        }
                        let (_, sc) = cached.as_ref().expect("cached scenario");
                        *slot = Some(run_item_scalar(
                            target,
                            &mut sim,
                            scenario,
                            sc,
                            faults,
                            work.windows(start + k),
                            &mut outputs,
                        ));
                    }
                }));
                if let Err(payload) = wave {
                    // Fail the whole chunk (partially computed slots
                    // included — a poisoned wave reports no outcomes) and
                    // restore clean per-worker scratch for the next chunk.
                    for slot in &mut out[done..done + chunk] {
                        *slot = None;
                    }
                    panics.push((
                        start + done..start + done + chunk,
                        wave::panic_message(payload),
                    ));
                    sim.clear_faults();
                    cached = None;
                }
                done += chunk;
            }
            (stopped, panics)
        };
        let threads = config.thread_count().min(n);
        let (stopped, panics) = if threads <= 1 || n < 64 {
            run_range(0, &mut outcomes)
        } else {
            // Contiguous slot ranges per worker: each writes its own
            // disjoint outcome slice, so the result is slot-ordered by
            // construction.
            let per = n.div_ceil(threads);
            let workers: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = outcomes
                    .chunks_mut(per)
                    .enumerate()
                    .map(|(t, chunk)| {
                        let run_range = &run_range;
                        scope.spawn(move || run_range(t * per, chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scalar workers catch their own panics"))
                    .collect()
            });
            let mut stopped = None;
            let mut panics = Vec::new();
            for (s, p) in workers {
                if stopped.is_none() {
                    stopped = s;
                }
                panics.extend(p);
            }
            (stopped, panics)
        };
        wave::finish_run(
            work,
            RunOutput {
                outcomes,
                stats: WaveStats::default(),
                stopped,
                panics,
            },
        )
        .map(|(outcomes, _)| outcomes)
    }
}

impl CampaignBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn try_execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
        control: &RunControl,
    ) -> Result<Vec<Outcome>, CampaignError> {
        wave::try_execute(
            target,
            work,
            config.thread_count(),
            config.lane_width(),
            config.precompiled_for(target.module()),
            control,
            config.telemetry_handle(),
        )
    }
}

impl CampaignBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn try_execute<T: FaultTarget>(
        &self,
        target: &T,
        work: &WorkList,
        config: &CampaignConfig,
        control: &RunControl,
    ) -> Result<Vec<Outcome>, CampaignError> {
        wave::try_execute(
            target,
            work,
            config.thread_count(),
            LaneWidth::SIMD,
            config.precompiled_for(target.module()),
            control,
            config.telemetry_handle(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip_through_parse() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(Backend::parse("avx1024"), None);
        assert_eq!(Backend::default(), Backend::Packed);
    }

    #[test]
    fn trait_names_match_enum_names() {
        assert_eq!(ScalarBackend.name(), Backend::Scalar.name());
        assert_eq!(PackedBackend.name(), Backend::Packed.name());
        assert_eq!(SimdBackend.name(), Backend::Simd.name());
    }
}
