//! Execution control for fault campaigns: cancellation, deadlines,
//! injection budgets, partial results and typed campaign errors.
//!
//! Every campaign engine in this crate runs *open-loop* without this
//! module: a run either finishes or takes the process down with it. The
//! [`RunControl`] handle closes the loop. It is a cheaply clonable token
//! carrying three optional limits — a cancellation flag, a wall-clock
//! deadline and an injection budget — that every
//! [`CampaignBackend`](crate::CampaignBackend) consults **once per wave**
//! (never on the per-gate hot path) through [`RunControl::admit`]. A wave
//! that is admitted runs to completion; a wave that is refused is simply
//! never started, and the run returns a [`PartialReport`] over the waves
//! that did complete.
//!
//! # Determinism under interruption
//!
//! Each wave computes its slots' outcomes independently of every other
//! wave and writes them to fixed work-list slots. Cancellation only
//! decides *which* waves run, never *what* a wave computes — so every
//! completed slot of a [`PartialReport`] is byte-identical to the same
//! slot of an uninterrupted run, at any thread count, on any backend.
//! The interruption-determinism property tests pin exactly this.
//!
//! # Panic isolation
//!
//! Backends wrap each wave in [`std::panic::catch_unwind`]: a poisoned
//! scenario or target panics only its own wave's item range, which is
//! reported as [`CampaignError::WorkerPanic`] while every other wave of
//! the campaign completes normally. The panicking wave's slots stay
//! `None` in the partial report — they are never fabricated.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::campaign::{CampaignReport, FaultRecord, Outcome};
use crate::wave::WorkList;

/// Validated lane-word width of the packed wave engine.
///
/// The single source of truth for which wave widths exist: the
/// configurable packed backend runs `W` ∈ {1, 2, 4} (64-, 128- or
/// 256-lane waves), and the SIMD backend uses an internal fixed W = 8
/// that is deliberately *not* constructible from campaign configuration.
/// Both [`CampaignConfig::lane_words`](crate::CampaignConfig::lane_words)
/// and the wave executor validate through this type, so the rejection
/// message exists exactly once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LaneWidth(usize);

impl LaneWidth {
    /// The fixed 8-word (512-lane) width of the SIMD backend. Internal:
    /// config validation only admits {1, 2, 4}.
    pub(crate) const SIMD: LaneWidth = LaneWidth(8);

    /// Validates a packed-engine lane-word count: 1, 2 or 4 words
    /// (64/128/256 lanes). Anything else is
    /// [`CampaignError::InvalidLaneWords`].
    pub fn new(words: usize) -> Result<LaneWidth, CampaignError> {
        match words {
            1 | 2 | 4 => Ok(LaneWidth(words)),
            other => Err(CampaignError::InvalidLaneWords { requested: other }),
        }
    }

    /// Lane words per wave.
    pub fn words(self) -> usize {
        self.0
    }

    /// Lanes (injections) per wave: `64 · words`.
    pub fn lanes(self) -> usize {
        self.0 * 64
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} words ({} lanes)", self.0, self.lanes())
    }
}

/// Why a controlled run stopped before completing its work list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// [`RunControl::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline of [`RunControl::with_deadline`] passed.
    DeadlineExpired,
    /// Admitting the next wave would exceed the injection budget of
    /// [`RunControl::with_injection_budget`].
    InjectionBudgetExhausted,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExpired => "deadline expired",
            StopReason::InjectionBudgetExhausted => "injection budget exhausted",
        })
    }
}

/// Shared state behind cloned [`RunControl`] handles.
struct ControlInner {
    cancel: AtomicBool,
    deadline: Option<Instant>,
    injection_budget: Option<u64>,
    injected: AtomicU64,
}

/// A cancellation token, wall-clock deadline and injection budget for one
/// campaign run — the execution-control handle threaded through every
/// [`CampaignBackend`](crate::CampaignBackend).
///
/// Clone the handle to keep a controller side: [`cancel`](Self::cancel)
/// from any thread stops the run at its next wave boundary. Limits are
/// configured up front with the builder methods and are immutable once
/// the handle has been cloned.
///
/// ```
/// use scfi_faultsim::RunControl;
///
/// let control = RunControl::unlimited().with_injection_budget(128);
/// assert!(control.admit(64).is_ok());
/// assert!(control.admit(64).is_ok());
/// assert!(control.admit(1).is_err()); // budget spent
/// ```
#[derive(Clone)]
pub struct RunControl {
    inner: Arc<ControlInner>,
}

impl RunControl {
    /// A control handle with no limits: never cancelled (until
    /// [`cancel`](Self::cancel)), no deadline, no budget. Campaigns run
    /// under this handle behave exactly like the infallible API.
    pub fn unlimited() -> RunControl {
        RunControl {
            inner: Arc::new(ControlInner {
                cancel: AtomicBool::new(false),
                deadline: None,
                injection_budget: None,
                injected: AtomicU64::new(0),
            }),
        }
    }

    fn inner_mut(&mut self) -> &mut ControlInner {
        Arc::get_mut(&mut self.inner).expect("configure RunControl before cloning the handle")
    }

    /// Sets a wall-clock deadline `timeout` from now. Waves that would
    /// start after the deadline are refused with
    /// [`StopReason::DeadlineExpired`].
    ///
    /// # Panics
    ///
    /// Panics if the handle has already been cloned (limits are fixed at
    /// construction).
    pub fn with_deadline(mut self, timeout: Duration) -> RunControl {
        self.inner_mut().deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Caps the total number of admitted injections at `budget`. A wave
    /// that would push the count past the budget is refused with
    /// [`StopReason::InjectionBudgetExhausted`] — the budget is never
    /// over-admitted, even under concurrent workers.
    ///
    /// # Panics
    ///
    /// Panics if the handle has already been cloned (limits are fixed at
    /// construction).
    pub fn with_injection_budget(mut self, budget: u64) -> RunControl {
        self.inner_mut().injection_budget = Some(budget);
        self
    }

    /// Requests cancellation: every subsequent [`admit`](Self::admit)
    /// across all clones returns [`StopReason::Cancelled`]. Waves already
    /// running complete normally (cancellation is wave-granular).
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancel.load(Ordering::Relaxed)
    }

    /// Asks permission to run a wave of `items` injections. Checked by
    /// backends once per wave — wave-boundary only, never per gate or per
    /// cycle. Returns the stop reason if the run should wind down instead.
    ///
    /// Budget accounting is a compare-and-swap loop, so concurrent
    /// workers can never jointly over-admit the injection budget.
    pub fn admit(&self, items: usize) -> Result<(), StopReason> {
        if self.inner.cancel.load(Ordering::Relaxed) {
            return Err(StopReason::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(StopReason::DeadlineExpired);
            }
        }
        let items = items as u64;
        if let Some(budget) = self.inner.injection_budget {
            let mut current = self.inner.injected.load(Ordering::Relaxed);
            loop {
                if current.saturating_add(items) > budget {
                    return Err(StopReason::InjectionBudgetExhausted);
                }
                match self.inner.injected.compare_exchange_weak(
                    current,
                    current + items,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => current = actual,
                }
            }
        } else {
            // No budget to guard, but keep the counter live: `admitted`
            // is the progress observable of long-running campaigns (the
            // job server reports it while a campaign is in flight).
            self.inner.injected.fetch_add(items, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Total injections admitted so far across all clones — a monotone
    /// progress counter updated at wave boundaries, suitable for live
    /// status reporting of a campaign in flight.
    pub fn admitted(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .field("injection_budget", &self.inner.injection_budget)
            .field("injected", &self.inner.injected.load(Ordering::Relaxed))
            .finish()
    }
}

/// The completed portion of an interrupted campaign.
///
/// `outcomes[i]` is `Some` iff work item `i`'s wave completed; every
/// `Some` value is byte-identical to slot `i` of an uninterrupted run
/// (interruption decides *which* waves run, never what they compute).
/// `report` aggregates the completed slots only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialReport {
    /// Slot-ordered outcomes; `None` for items whose wave never ran (or
    /// panicked).
    pub outcomes: Vec<Option<Outcome>>,
    /// Number of completed (`Some`) slots.
    pub completed: usize,
    /// Aggregate over the completed slots, with hijack examples recorded
    /// exactly as a full run records them.
    pub report: CampaignReport,
}

impl PartialReport {
    /// Aggregates the completed slots of a slot-ordered outcome vector
    /// into a partial report, mirroring the full-run aggregation
    /// (including the first-64 hijack examples, in work-list order).
    pub fn from_outcomes(work: &WorkList, outcomes: Vec<Option<Outcome>>) -> PartialReport {
        let mut report = CampaignReport::empty();
        let mut completed = 0usize;
        for (i, outcome) in outcomes.iter().enumerate() {
            let Some(outcome) = outcome else { continue };
            completed += 1;
            report.injections += 1;
            match outcome {
                Outcome::Masked => report.masked += 1,
                Outcome::Detected => report.detected += 1,
                Outcome::Hijack => {
                    report.hijacked += 1;
                    if report.hijack_examples.len() < 64 {
                        let (scenario, faults) = work.item(i);
                        report.hijack_examples.push(FaultRecord {
                            scenario,
                            faults: faults.to_vec(),
                        });
                    }
                }
            }
        }
        PartialReport {
            outcomes,
            completed,
            report,
        }
    }

    /// Total work items of the interrupted run (completed or not).
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }
}

/// A campaign that could not run to completion, with everything that
/// *did* complete.
#[derive(Clone, Debug)]
pub enum CampaignError {
    /// The run was stopped at a wave boundary by its [`RunControl`]
    /// (cancelled, past deadline, or out of injection budget).
    Interrupted {
        /// Which limit stopped the run.
        reason: StopReason,
        /// The completed prefix — byte-identical, slot for slot, to an
        /// uninterrupted run. Boxed to keep the `Err` variant (and with
        /// it every `Result` on the campaign path) small.
        partial: Box<PartialReport>,
    },
    /// A worker panicked while executing one wave. Only that wave's item
    /// range failed; every other wave of the campaign completed.
    WorkerPanic {
        /// The work-list slots of the poisoned wave (left `None` in the
        /// partial report).
        item_range: Range<usize>,
        /// The captured panic payload.
        message: String,
        /// Everything outside the poisoned wave.
        partial: Box<PartialReport>,
    },
    /// A lane-word width outside the packed engine's {1, 2, 4} set was
    /// requested.
    InvalidLaneWords {
        /// The rejected width.
        requested: usize,
    },
    /// A work list outgrew its packed `u32` slot representation.
    WorkListOverflow {
        /// The offending item/fault count (or scenario index).
        items: usize,
        /// The representable maximum.
        limit: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Interrupted { reason, partial } => write!(
                f,
                "campaign interrupted ({reason}): {} of {} injections completed",
                partial.completed,
                partial.total()
            ),
            CampaignError::WorkerPanic {
                item_range,
                message,
                partial,
            } => write!(
                f,
                "campaign worker panicked on items {}..{} ({} of {} other injections completed): {message}",
                item_range.start,
                item_range.end,
                partial.completed,
                partial.total()
            ),
            CampaignError::InvalidLaneWords { requested } => write!(
                f,
                "lane_words must be 1, 2 or 4 words (64/128/256 lanes), got {requested}"
            ),
            CampaignError::WorkListOverflow { items, limit } => write!(
                f,
                "work list overflow: {items} exceeds the packed u32 limit of {limit}; \
                 split the campaign into sub-campaigns"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_control_admits_everything() {
        let c = RunControl::unlimited();
        for _ in 0..1000 {
            assert_eq!(c.admit(usize::MAX / 2), Ok(()));
        }
        assert!(!c.is_cancelled());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let c = RunControl::unlimited();
        let worker = c.clone();
        assert_eq!(worker.admit(64), Ok(()));
        c.cancel();
        assert!(worker.is_cancelled());
        assert_eq!(worker.admit(64), Err(StopReason::Cancelled));
        assert_eq!(c.admit(0), Err(StopReason::Cancelled));
    }

    #[test]
    fn zero_deadline_refuses_immediately() {
        let c = RunControl::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(c.admit(1), Err(StopReason::DeadlineExpired));
    }

    #[test]
    fn generous_deadline_admits() {
        let c = RunControl::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(c.admit(1), Ok(()));
    }

    #[test]
    fn budget_is_never_over_admitted() {
        let c = RunControl::unlimited().with_injection_budget(100);
        assert_eq!(c.admit(64), Ok(()));
        assert_eq!(
            c.admit(64),
            Err(StopReason::InjectionBudgetExhausted),
            "64 + 64 > 100 must be refused"
        );
        // A smaller wave still fits the remainder.
        assert_eq!(c.admit(36), Ok(()));
        assert_eq!(c.admit(1), Err(StopReason::InjectionBudgetExhausted));
    }

    #[test]
    fn concurrent_budget_admission_is_exact() {
        let c = RunControl::unlimited().with_injection_budget(1000);
        let admitted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while c.admit(7).is_ok() {
                        admitted.fetch_add(7, Ordering::Relaxed);
                    }
                });
            }
        });
        let total = admitted.into_inner();
        assert!(total <= 1000, "over-admitted: {total}");
        assert!(total > 1000 - 7 * 8, "under-admitted: {total}");
    }

    #[test]
    fn lane_width_admits_the_packed_set_only() {
        for w in [1usize, 2, 4] {
            let width = LaneWidth::new(w).expect("valid width");
            assert_eq!(width.words(), w);
            assert_eq!(width.lanes(), 64 * w);
        }
        for w in [0usize, 3, 5, 8, 64] {
            let err = LaneWidth::new(w).expect_err("invalid width");
            let msg = err.to_string();
            assert!(msg.contains("64/128/256"), "message names the set: {msg}");
            assert!(
                msg.contains(&w.to_string()),
                "message names the input: {msg}"
            );
        }
        assert_eq!(LaneWidth::SIMD.words(), 8);
        assert_eq!(LaneWidth::SIMD.lanes(), 512);
    }

    #[test]
    fn stop_reasons_and_errors_display() {
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert_eq!(StopReason::DeadlineExpired.to_string(), "deadline expired");
        let overflow = CampaignError::WorkListOverflow {
            items: 5_000_000_000,
            limit: u32::MAX as usize,
        };
        assert!(overflow.to_string().contains("split the campaign"));
        let panic = CampaignError::WorkerPanic {
            item_range: 64..128,
            message: "scenario 3 has no cycles".into(),
            partial: Box::new(PartialReport {
                outcomes: vec![],
                completed: 0,
                report: CampaignReport::empty(),
            }),
        };
        let msg = panic.to_string();
        assert!(msg.contains("64..128"), "{msg}");
        assert!(msg.contains("has no cycles"), "{msg}");
    }
}
