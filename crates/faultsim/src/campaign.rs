//! Fault-campaign execution and reporting.

use std::fmt;
use std::ops::Range;

use scfi_netlist::{CellId, CellKind, Module, Simulator};

use crate::backend::{Backend, CampaignBackend, PackedBackend, ScalarBackend, SimdBackend};
use crate::control::{CampaignError, LaneWidth, RunControl};
use crate::target::{FaultTarget, FaultTiming};
use crate::wave::WorkList;

/// The effect dimension of the fault model (§2.1: "transient, i.e.
/// bit-flips, or stuck-at effects").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultEffect {
    /// Transient bit-flip for the transition cycle.
    Flip,
    /// Permanent stuck-at-0.
    Stuck0,
    /// Permanent stuck-at-1.
    Stuck1,
}

/// The spatial dimension of the fault model: where the fault lands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultSite {
    /// The output net of a cell (covers gate faults and wire faults).
    CellOutput(CellId),
    /// One input pin of a cell (a wire fault local to one fanout branch).
    Pin(CellId, u8),
    /// A stored register bit, flipped before the cycle (FT1).
    Register(CellId),
}

/// One injectable fault.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fault {
    /// Where.
    pub site: FaultSite,
    /// What.
    pub effect: FaultEffect,
}

/// Classification of one injection (§6.4 semantics, generalized to
/// N-cycle trajectories).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The FSM followed the intended transition (or, multi-cycle, the whole
    /// intended walk) with no alert.
    Masked,
    /// The fault was caught: terminal-error/invalid state or alert at some
    /// cycle of the trajectory.
    Detected,
    /// The FSM silently reached a valid-but-wrong state and was never
    /// caught — a successful control-flow hijack.
    Hijack,
}

impl Outcome {
    /// Folds per-cycle classifications into the trajectory verdict:
    /// `Detected` dominates (a hijacked state that collapses to ERROR two
    /// cycles later *was* caught — the paper's "invalid state reaches
    /// ERROR on the next edge" argument), then `Hijack`, then `Masked`.
    pub fn fold(self, later: Outcome) -> Outcome {
        match (self, later) {
            (Outcome::Detected, _) | (_, Outcome::Detected) => Outcome::Detected,
            (Outcome::Hijack, _) | (_, Outcome::Hijack) => Outcome::Hijack,
            (Outcome::Masked, Outcome::Masked) => Outcome::Masked,
        }
    }
}

/// A recorded hijack: which fault group, in which scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultRecord {
    /// Scenario index (a CFG edge for single-transition campaigns, a
    /// protocol scenario otherwise).
    pub scenario: usize,
    /// The simultaneously injected fault group (one entry for single-fault
    /// campaigns; possibly empty for degenerate multi-fault draws).
    pub faults: Vec<Fault>,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    effects: Vec<FaultEffect>,
    region: Option<Range<u32>>,
    include_register_flips: bool,
    include_pin_faults: bool,
    threads: usize,
    lane_words: LaneWidth,
    seed: u64,
    backend: Backend,
    fault_windows: bool,
    precompiled: Option<std::sync::Arc<scfi_netlist::PackedNetlist>>,
    telemetry: scfi_telemetry::Telemetry,
}

impl CampaignConfig {
    /// Defaults: transient flips on every gate output, no pin faults, no
    /// register flips, one worker thread per available CPU, the packed
    /// backend with 4-word (256-lane) waves.
    pub fn new() -> Self {
        CampaignConfig {
            effects: vec![FaultEffect::Flip],
            region: None,
            include_register_flips: false,
            include_pin_faults: false,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            lane_words: LaneWidth::new(4).expect("4 words is a valid packed width"),
            seed: 0xFA17,
            backend: Backend::default(),
            fault_windows: false,
            precompiled: None,
            telemetry: scfi_telemetry::Telemetry::off(),
        }
    }

    /// Installs a telemetry recorder: backends report execution counters
    /// (waves, injections, cycle skips, mask-rebuild elisions, oracle
    /// path ratios, re-simulation cone sizes) into it at wave/run
    /// granularity. The default is the disabled handle; recording never
    /// changes campaign results — reports are byte-identical with
    /// telemetry on or off (the observability suites assert this).
    pub fn telemetry(mut self, telemetry: scfi_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The installed telemetry handle (disabled unless
    /// [`telemetry`](Self::telemetry) was called).
    pub(crate) fn telemetry_handle(&self) -> &scfi_telemetry::Telemetry {
        &self.telemetry
    }

    /// Which fault effects to inject.
    pub fn effects(mut self, effects: Vec<FaultEffect>) -> Self {
        self.effects = effects;
        self
    }

    /// Restricts cell-output faults to a cell-index region (e.g. the
    /// diffusion layer from
    /// [`HardenRegions`](scfi_core::HardenRegions)).
    pub fn region(mut self, region: Range<u32>) -> Self {
        self.region = Some(region);
        self
    }

    /// Also flips stored register bits directly (FT1).
    pub fn with_register_flips(mut self) -> Self {
        self.include_register_flips = true;
        self
    }

    /// Also injects faults on individual cell input pins.
    pub fn with_pin_faults(mut self) -> Self {
        self.include_pin_faults = true;
        self
    }

    /// Worker threads for the campaign (default:
    /// [`std::thread::available_parallelism`]).
    ///
    /// Campaign results are deterministic regardless of this setting: the
    /// wave executor writes each injection's outcome to its work-list slot,
    /// so reports are independent of thread count, lane-word width, wave
    /// boundaries and lane order.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Lane words per wave of the packed engine: `W` ∈ {1, 2, 4}, giving
    /// 64-, 128- or 256-lane waves (default: 4).
    ///
    /// This is a pure throughput knob — campaign reports are byte-identical
    /// at every width (the differential suites assert it). Wider waves
    /// amortize the netlist sweep over more injections but multiply the
    /// per-net working set; see the README's "choosing W" note.
    ///
    /// # Panics
    ///
    /// Panics with the [`CampaignError::InvalidLaneWords`] description if
    /// `w` is not 1, 2 or 4; use [`try_lane_words`](Self::try_lane_words)
    /// to validate instead.
    pub fn lane_words(mut self, w: usize) -> Self {
        self.lane_words = LaneWidth::new(w).unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// [`lane_words`](Self::lane_words) as a fallible validation:
    /// rejects widths outside {1, 2, 4} with
    /// [`CampaignError::InvalidLaneWords`] instead of panicking.
    pub fn try_lane_words(mut self, w: usize) -> Result<Self, CampaignError> {
        self.lane_words = LaneWidth::new(w)?;
        Ok(self)
    }

    /// Seed for sampled campaigns.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Which [`CampaignBackend`] executes the campaign (default:
    /// [`Backend::Packed`]).
    ///
    /// Backends are pure throughput/auditability trade-offs — every
    /// backend produces byte-identical reports for the same campaign (the
    /// differential suites assert it at every width and thread count).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The configured execution backend.
    pub fn backend_kind(&self) -> Backend {
        self.backend
    }

    /// Samples an independent transient arming window per drawn fault in
    /// multi-fault campaigns — the §3 temporal attacker, who times each of
    /// their glitches separately within the scenario's schedule.
    ///
    /// Off by default: without this knob the sampled draw stream (scenario
    /// draw, then fault draws, one shared window) is bit-identical to the
    /// historical one, so seeded campaign aggregates stay reproducible.
    pub fn with_fault_windows(mut self) -> Self {
        self.fault_windows = true;
        self
    }

    /// Whether multi-fault campaigns draw per-fault arming windows.
    pub fn fault_windows_enabled(&self) -> bool {
        self.fault_windows
    }

    /// Restricts the campaign to `module`'s FT1 register fault space:
    /// stored-bit flips plus faults on the register-region cells
    /// (`region` spanning the flip-flop cell indices, which every
    /// lowering in this workspace allocates contiguously per bank).
    ///
    /// This is the shared definition of "the register faults" used by
    /// the conformance suites, the `scfi certify` CLI default and the
    /// certification benches — one source of truth instead of four
    /// restatements of the contiguity assumption.
    ///
    /// # Panics
    ///
    /// Panics if `module` has no registers.
    pub fn register_region(mut self, module: &Module) -> Self {
        let regs = module.registers();
        let lo = regs
            .iter()
            .map(|r| r.0)
            .min()
            .expect("module has registers");
        let hi = regs
            .iter()
            .map(|r| r.0)
            .max()
            .expect("module has registers");
        self.region = Some(lo..hi + 1);
        self.include_register_flips = true;
        self
    }

    /// Supplies a pre-compiled [`PackedNetlist`](scfi_netlist::PackedNetlist)
    /// for the wave backends, skipping the per-campaign
    /// `PackedNetlist::compile` of the target's module.
    ///
    /// This is the seam behind compile caches (the `scfi serve` job
    /// server compiles each distinct `(FSM, config, N)` once and reuses
    /// the artifact across repeat submissions). The netlist **must** be
    /// the compilation of the campaign target's module: backends verify
    /// the structural shape (cell, input, output and register counts)
    /// and silently fall back to a fresh compile on any mismatch, so a
    /// stale hint can cost the speedup but never correctness. The scalar
    /// backend ignores the hint entirely.
    pub fn precompiled(mut self, net: std::sync::Arc<scfi_netlist::PackedNetlist>) -> Self {
        self.precompiled = Some(net);
        self
    }

    /// The pre-compiled netlist hint, if [`precompiled`](Self::precompiled)
    /// supplied one matching `module`'s shape.
    pub(crate) fn precompiled_for(&self, module: &Module) -> Option<&scfi_netlist::PackedNetlist> {
        let net = self.precompiled.as_deref()?;
        let matches = net.len() == module.len()
            && net.input_count() == module.inputs().len()
            && net.output_count() == module.outputs().len()
            && net.register_count() == module.registers().len();
        matches.then_some(net)
    }

    /// Configured worker thread count.
    pub(crate) fn thread_count(&self) -> usize {
        self.threads
    }

    /// Configured validated wave width of the packed backend.
    pub(crate) fn lane_width(&self) -> LaneWidth {
        self.lane_words
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig::new()
    }
}

/// Aggregated campaign results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignReport {
    /// Total injections performed.
    pub injections: usize,
    /// Fault had no effect on the transition.
    pub masked: usize,
    /// Fault caught (error state / invalid state / alert).
    pub detected: usize,
    /// Silent control-flow hijacks.
    pub hijacked: usize,
    /// Up to 64 recorded hijacks for inspection.
    pub hijack_examples: Vec<FaultRecord>,
}

impl CampaignReport {
    /// The paper's headline metric: the fraction of injections enabling a
    /// hijack (0.42 % in §6.4).
    pub fn hijack_rate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.hijacked as f64 / self.injections as f64
        }
    }

    /// Fraction of injections that were detected among all *effective*
    /// faults (detected + hijacked), i.e. the error coverage.
    pub fn coverage(&self) -> f64 {
        let effective = self.detected + self.hijacked;
        if effective == 0 {
            1.0
        } else {
            self.detected as f64 / effective as f64
        }
    }

    pub(crate) fn empty() -> Self {
        CampaignReport {
            injections: 0,
            masked: 0,
            detected: 0,
            hijacked: 0,
            hijack_examples: Vec::new(),
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} injections: {} masked, {} detected, {} hijacked ({:.2} % escape rate, {:.1} % coverage)",
            self.injections,
            self.masked,
            self.detected,
            self.hijacked,
            100.0 * self.hijack_rate(),
            100.0 * self.coverage()
        )
    }
}

/// Enumerates the fault list for a target under a config.
pub(crate) fn fault_list<T: FaultTarget>(target: &T, config: &CampaignConfig) -> Vec<Fault> {
    enumerate_faults(target.module(), config)
}

/// Enumerates every injectable fault of `module` under `config`'s fault
/// model: each configured [`FaultEffect`] on every gate/register output
/// (and, when enabled, every cell input pin), plus stored-bit register
/// flips, all restricted to the configured cell region.
///
/// This is the single source of truth for the fault-site space — the
/// campaign executors, the [`VulnerabilityMap`](crate::VulnerabilityMap)
/// attribution and the `scfi-symbolic` formal certifier all enumerate
/// through it, so their verdicts are site-for-site comparable.
///
/// # Example
///
/// ```
/// use scfi_core::{harden, ScfiConfig};
/// use scfi_faultsim::{enumerate_faults, CampaignConfig};
/// use scfi_fsm::parse_fsm;
///
/// let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
/// let h = harden(&fsm, &ScfiConfig::new(2))?;
/// let flips = enumerate_faults(h.module(), &CampaignConfig::new());
/// let with_regs = enumerate_faults(h.module(), &CampaignConfig::new().with_register_flips());
/// assert_eq!(with_regs.len(), flips.len() + h.module().registers().len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn enumerate_faults(module: &Module, config: &CampaignConfig) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (i, cell) in module.cells().iter().enumerate() {
        if matches!(cell.kind, CellKind::Input | CellKind::Const(_)) {
            continue;
        }
        if let Some(region) = &config.region {
            if !region.contains(&(i as u32)) {
                continue;
            }
        }
        let id = CellId(i as u32);
        for &effect in &config.effects {
            faults.push(Fault {
                site: FaultSite::CellOutput(id),
                effect,
            });
            if config.include_pin_faults {
                for pin in 0..cell.pins.len() {
                    faults.push(Fault {
                        site: FaultSite::Pin(id, pin as u8),
                        effect,
                    });
                }
            }
        }
    }
    if config.include_register_flips {
        for &r in module.registers() {
            if let Some(region) = &config.region {
                if !region.contains(&r.0) {
                    continue;
                }
            }
            faults.push(Fault {
                site: FaultSite::Register(r),
                effect: FaultEffect::Flip,
            });
        }
    }
    faults
}

/// Arms one fault on a scalar simulator: masks for net/pin faults, a
/// direct state mutation for register flips.
///
/// Public because injection semantics must have exactly one definition:
/// the campaign executors arm through this, and the `scfi-symbolic`
/// certifier replays counterexample witnesses through it — if the
/// mapping ever changes, both oracles move together.
pub fn arm(sim: &mut Simulator<'_>, fault: Fault) {
    match (fault.site, fault.effect) {
        (FaultSite::CellOutput(c), FaultEffect::Flip) => sim.set_net_flip(c.net()),
        (FaultSite::CellOutput(c), FaultEffect::Stuck0) => sim.set_net_stuck(c.net(), false),
        (FaultSite::CellOutput(c), FaultEffect::Stuck1) => sim.set_net_stuck(c.net(), true),
        (FaultSite::Pin(c, p), FaultEffect::Flip) => sim.set_pin_flip(c, p as usize),
        (FaultSite::Pin(c, p), FaultEffect::Stuck0) => sim.set_pin_stuck(c, p as usize, false),
        (FaultSite::Pin(c, p), FaultEffect::Stuck1) => sim.set_pin_stuck(c, p as usize, true),
        (FaultSite::Register(c), _) => sim.flip_register(c),
    }
}

/// Runs one work item — a fault group through an N-cycle scenario — on a
/// scalar simulator and returns the trajectory verdict. This is the scalar
/// reference semantics the packed wave executor must reproduce:
///
/// * registers preloaded, then cycles stepped in schedule order;
/// * fault `j`'s effective window is [`Scenario::fault_window`] — the work
///   item's per-fault override when present, the scenario's
///   [`FaultSchedule`](crate::FaultSchedule) otherwise;
/// * net/pin fault masks are rebuilt whenever any fault's window opens or
///   closes (and at cycle 0), so each mask is live exactly while
///   [`FaultTiming::armed_at`] holds for its own window;
/// * register flips are applied once each, just before their window's
///   [`FaultTiming::flip_cycle`];
/// * per-cycle classifications folded with [`Outcome::fold`].
///
/// With a uniform schedule and no overrides this is step-for-step the
/// legacy one-window loop: arm everything on window entry, clear on exit.
pub(crate) fn run_item_scalar<T: FaultTarget>(
    target: &T,
    sim: &mut Simulator<'_>,
    index: usize,
    scenario: &crate::target::Scenario,
    faults: &[Fault],
    windows: &[Option<FaultTiming>],
    outputs: &mut Vec<bool>,
) -> Outcome {
    assert!(
        scenario.cycles() >= 1,
        "scenario {index} has no cycles" // same rejection as the wave executor
    );
    debug_assert!(
        scenario
            .schedule
            .windows()
            .iter()
            .chain(windows.iter().flatten())
            .all(|w| w.flip_cycle() < scenario.cycles()),
        "scenario {index}'s fault window lies past its schedule"
    );
    let is_register = |f: &Fault| matches!(f.site, FaultSite::Register(_));
    sim.clear_faults();
    sim.reset_to(&scenario.regs);
    let mut verdict = Outcome::Masked;
    for (cycle, inputs) in scenario.inputs.iter().enumerate() {
        // Register flips are direct state mutations (clear_faults cannot
        // undo them), so each fires exactly once, at its own window start.
        for (j, &f) in faults.iter().enumerate() {
            if is_register(&f) && scenario.fault_window(windows, j).flip_cycle() == cycle {
                arm(sim, f);
            }
        }
        let moved = cycle == 0
            || faults.iter().enumerate().any(|(j, f)| {
                !is_register(f) && {
                    let w = scenario.fault_window(windows, j);
                    w.armed_at(cycle) != w.armed_at(cycle - 1)
                }
            });
        if moved {
            sim.clear_faults();
            for (j, &f) in faults.iter().enumerate() {
                if !is_register(&f) && scenario.fault_window(windows, j).armed_at(cycle) {
                    arm(sim, f);
                }
            }
        }
        sim.step_into(inputs, outputs);
        verdict = verdict.fold(target.classify(index, cycle, sim.register_values(), outputs));
    }
    verdict
}

/// Folds per-item outcomes back into the aggregate report, recording the
/// first 64 hijacks (in work-list order) as examples.
fn aggregate(work: &WorkList, outcomes: &[Outcome]) -> CampaignReport {
    let mut report = CampaignReport::empty();
    for (i, &outcome) in outcomes.iter().enumerate() {
        report.injections += 1;
        match outcome {
            Outcome::Masked => report.masked += 1,
            Outcome::Detected => report.detected += 1,
            Outcome::Hijack => {
                report.hijacked += 1;
                if report.hijack_examples.len() < 64 {
                    let (scenario, faults) = work.item(i);
                    report.hijack_examples.push(FaultRecord {
                        scenario,
                        faults: faults.to_vec(),
                    });
                }
            }
        }
    }
    report
}

/// Runs a work list under `control` on the backend selected by
/// [`CampaignConfig::backend`]. The single dispatch point between the
/// campaign drivers (and the vulnerability map) and the
/// [`CampaignBackend`] implementations.
pub(crate) fn try_execute_backend<T: FaultTarget>(
    target: &T,
    work: &WorkList,
    config: &CampaignConfig,
    control: &RunControl,
) -> Result<Vec<Outcome>, CampaignError> {
    match config.backend {
        Backend::Scalar => ScalarBackend.try_execute(target, work, config, control),
        Backend::Packed => PackedBackend.try_execute(target, work, config, control),
        Backend::Simd => SimdBackend.try_execute(target, work, config, control),
    }
}

/// Builds the exhaustive scenario-major work list: every scenario × every
/// fault in the list. [`CampaignError::WorkListOverflow`] if the campaign
/// outgrows the packed `u32` slot representation.
pub(crate) fn try_exhaustive_work<T: FaultTarget>(
    target: &T,
    faults: &[Fault],
) -> Result<WorkList, CampaignError> {
    let scenarios = target.scenario_count();
    let mut work = WorkList::with_capacity(scenarios * faults.len());
    for s in 0..scenarios {
        for fault in faults {
            work.try_push(s, std::slice::from_ref(fault))?;
        }
    }
    Ok(work)
}

/// [`try_exhaustive_work`], panicking on overflow.
#[cfg(test)]
pub(crate) fn exhaustive_work<T: FaultTarget>(target: &T, faults: &[Fault]) -> WorkList {
    try_exhaustive_work(target, faults).unwrap_or_else(|e| panic!("{e}"))
}

/// Exhaustive single-fault campaign: every scenario × every fault site ×
/// every configured effect — the §6.4 experiment.
///
/// Runs on the [`CampaignBackend`] selected by [`CampaignConfig::backend`]
/// (default: the bit-parallel packed wave engine, up to 256 injections per
/// netlist pass, sharded across [`CampaignConfig::threads`] workers with
/// early exit for waves whose lanes have all folded to terminal verdicts).
/// Every backend produces injection-for-injection the same report; the
/// workspace conformance suite pins them against each other on every
/// Table-1 FSM at every wave width.
///
/// # Example
///
/// ```
/// use scfi_core::{harden, ScfiConfig};
/// use scfi_faultsim::{run_exhaustive, CampaignConfig, ScfiTarget};
/// use scfi_fsm::parse_fsm;
///
/// let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
/// let hardened = harden(&fsm, &ScfiConfig::new(2))?;
/// let target = ScfiTarget::new(&hardened);
/// let report = run_exhaustive(&target, &CampaignConfig::new());
/// // Every injection lands in exactly one §6.4 bucket…
/// assert_eq!(report.injections, report.masked + report.detected + report.hijacked);
/// // …and the wave width never changes the report, only the throughput.
/// let narrow = run_exhaustive(&target, &CampaignConfig::new().lane_words(1));
/// assert_eq!(report, narrow);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_exhaustive<T: FaultTarget>(target: &T, config: &CampaignConfig) -> CampaignReport {
    try_run_exhaustive(target, config, &RunControl::unlimited()).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_exhaustive`] under a [`RunControl`]: the campaign can be
/// cancelled, deadlined or injection-budgeted, and stops cleanly at the
/// next wave boundary. On interruption the returned
/// [`CampaignError::Interrupted`] carries a
/// [`PartialReport`](crate::PartialReport) whose completed slots are
/// byte-identical to the same slots of an uninterrupted run — at any
/// thread count, on any backend. A panicking wave is isolated to its item
/// range and surfaces as [`CampaignError::WorkerPanic`] with the rest of
/// the campaign completed.
///
/// # Example
///
/// ```
/// use scfi_core::{harden, ScfiConfig};
/// use scfi_faultsim::{try_run_exhaustive, CampaignConfig, CampaignError, RunControl};
/// use scfi_fsm::parse_fsm;
///
/// let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
/// let hardened = harden(&fsm, &ScfiConfig::new(2))?;
/// let target = scfi_faultsim::ScfiTarget::new(&hardened);
///
/// // Unlimited control behaves exactly like `run_exhaustive`…
/// let full = try_run_exhaustive(&target, &CampaignConfig::new(), &RunControl::unlimited())?;
///
/// // …while an exhausted injection budget yields the completed prefix.
/// let control = RunControl::unlimited().with_injection_budget(64);
/// let err = try_run_exhaustive(&target, &CampaignConfig::new(), &control).unwrap_err();
/// let CampaignError::Interrupted { partial, .. } = err else { panic!("interrupted") };
/// assert!(partial.completed <= 64);
/// assert_eq!(partial.total(), full.injections);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn try_run_exhaustive<T: FaultTarget>(
    target: &T,
    config: &CampaignConfig,
    control: &RunControl,
) -> Result<CampaignReport, CampaignError> {
    let faults = fault_list(target, config);
    let work = try_exhaustive_work(target, &faults)?;
    let outcomes = try_execute_backend(target, &work, config, control)?;
    Ok(aggregate(&work, &outcomes))
}

/// [`run_exhaustive`] forced onto the [`ScalarBackend`] — the differential
/// oracle the wave backends are pinned against (and the engine of choice
/// when debugging single injections with `peek` and VCD hooks).
pub fn run_exhaustive_scalar<T: FaultTarget>(
    target: &T,
    config: &CampaignConfig,
) -> CampaignReport {
    run_exhaustive(target, &config.clone().backend(Backend::Scalar))
}

/// Draws the multi-fault work list: `runs` items of `faults_per_run`
/// simultaneous faults each, from the config's seeded xorshift64* stream
/// (scenario draw first, then the fault draws, then — only with
/// [`CampaignConfig::with_fault_windows`] — one transient window draw per
/// fault, per run). With windows off the stream is bit-identical to the
/// historical one.
fn multi_fault_work<T: FaultTarget>(
    target: &T,
    faults: &[Fault],
    faults_per_run: usize,
    runs: usize,
    seed: u64,
    fault_windows: bool,
) -> Result<WorkList, CampaignError> {
    let mut rng = seed.max(1);
    let mut next = move || {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        rng.wrapping_mul(0x2545F4914F6CDD1D)
    };
    // The draws reduce the full 64-bit stream value modulo the pool size
    // (never through a `usize` cast, which silently truncates to 32 bits
    // on 32-bit hosts and would shift every sampled campaign there). On
    // 64-bit hosts this is bit-identical to the historical stream, keeping
    // seeded conformance aggregates stable; the residual modulo bias is
    // bounded by pool_size / 2^64 per draw — negligible against any
    // realistic fault list.
    let mut draw = move |pool: usize| (next() % pool as u64) as usize;
    let mut work = WorkList::with_capacity(runs);
    let mut armed = Vec::with_capacity(faults_per_run);
    let mut windows = Vec::with_capacity(faults_per_run);
    let mut cycles_memo: Vec<Option<usize>> = vec![None; target.scenario_count()];
    for _ in 0..runs {
        let scenario = draw(target.scenario_count());
        armed.clear();
        for _ in 0..faults_per_run {
            armed.push(faults[draw(faults.len())]);
        }
        if fault_windows {
            let cycles =
                *cycles_memo[scenario].get_or_insert_with(|| target.scenario(scenario).cycles());
            windows.clear();
            for _ in 0..faults_per_run {
                windows.push(FaultTiming::Transient(draw(cycles)));
            }
            work.try_push_scheduled(scenario, &armed, &windows)?;
        } else {
            work.try_push(scenario, &armed)?;
        }
    }
    Ok(work)
}

/// Seeded random multi-fault campaign: `runs` experiments, each injecting
/// `faults_per_run` simultaneous faults into a random scenario — the
/// multi-fault attacker of the threat model (§3, "N−1 faults").
///
/// Runs on the configured [`CampaignBackend`]; the fault draw stream is
/// part of the work-list construction, not the backend, so every backend
/// reports the same results for the same seed.
pub fn run_multi_fault<T: FaultTarget>(
    target: &T,
    faults_per_run: usize,
    runs: usize,
    config: &CampaignConfig,
) -> CampaignReport {
    try_run_multi_fault(
        target,
        faults_per_run,
        runs,
        config,
        &RunControl::unlimited(),
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_multi_fault`] under a [`RunControl`] — the controlled twin, with
/// the same interruption and panic-isolation contract as
/// [`try_run_exhaustive`]: the completed slots of the
/// [`PartialReport`](crate::PartialReport) are byte-identical to the same
/// slots of an uninterrupted run with the same seed.
pub fn try_run_multi_fault<T: FaultTarget>(
    target: &T,
    faults_per_run: usize,
    runs: usize,
    config: &CampaignConfig,
    control: &RunControl,
) -> Result<CampaignReport, CampaignError> {
    let faults = fault_list(target, config);
    if faults.is_empty() || target.scenario_count() == 0 {
        return Ok(CampaignReport::empty());
    }
    let work = multi_fault_work(
        target,
        &faults,
        faults_per_run,
        runs,
        config.seed,
        config.fault_windows,
    )?;
    let outcomes = try_execute_backend(target, &work, config, control)?;
    Ok(aggregate(&work, &outcomes))
}

/// [`run_multi_fault`] forced onto the [`ScalarBackend`] (same seeded draw
/// stream, scalar simulator).
pub fn run_multi_fault_scalar<T: FaultTarget>(
    target: &T,
    faults_per_run: usize,
    runs: usize,
    config: &CampaignConfig,
) -> CampaignReport {
    run_multi_fault(
        target,
        faults_per_run,
        runs,
        &config.clone().backend(Backend::Scalar),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{RedundancyTarget, ScfiTarget, UnprotectedTarget};
    use scfi_core::{harden, redundancy, ScfiConfig};
    use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};

    fn fsm() -> Fsm {
        parse_fsm(
            "fsm m { inputs a, b;
               state S0 { if a -> S1; if b -> S2; }
               state S1 { if b -> S2; }
               state S2 { goto S0; } }",
        )
        .unwrap()
    }

    #[test]
    fn exhaustive_flip_campaign_on_scfi_has_low_escape_rate() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let report = run_exhaustive(&t, &CampaignConfig::new());
        assert!(report.injections > 100);
        assert_eq!(
            report.injections,
            report.masked + report.detected + report.hijacked
        );
        assert!(
            report.hijack_rate() < 0.05,
            "escape rate {:.3} too high: {report}",
            report.hijack_rate()
        );
    }

    #[test]
    fn unprotected_fsm_is_trivially_hijackable() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let t = UnprotectedTarget::new(&f, &lowered);
        let report = run_exhaustive(&t, &CampaignConfig::new().with_register_flips());
        assert!(
            report.hijack_rate() > 0.1,
            "unprotected FSM must be easy to hijack: {report}"
        );
    }

    #[test]
    fn scfi_beats_unprotected_by_orders_of_magnitude() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let lowered = lower_unprotected(&f).unwrap();
        let scfi = run_exhaustive(&ScfiTarget::new(&h), &CampaignConfig::new());
        let unprot = run_exhaustive(
            &UnprotectedTarget::new(&f, &lowered),
            &CampaignConfig::new(),
        );
        assert!(scfi.hijack_rate() < unprot.hijack_rate() / 2.0);
    }

    #[test]
    fn register_flips_never_hijack_scfi() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let regs_region = {
            let regs = h.module().registers();
            regs[0].0..regs[regs.len() - 1].0 + 1
        };
        let report = run_exhaustive(
            &t,
            &CampaignConfig::new()
                .effects(vec![])
                .region(regs_region)
                .with_register_flips(),
        );
        assert!(report.injections > 0);
        assert_eq!(report.hijacked, 0, "{report}");
    }

    #[test]
    fn redundancy_detects_single_register_faults() {
        let f = fsm();
        let r = redundancy(&f, 2).unwrap();
        let t = RedundancyTarget::new(&r);
        let regs = r.module().registers();
        let report = run_exhaustive(
            &t,
            &CampaignConfig::new()
                .effects(vec![])
                .region(regs[0].0..regs[regs.len() - 1].0 + 1)
                .with_register_flips(),
        );
        assert!(report.injections > 0);
        assert_eq!(report.hijacked, 0, "{report}");
    }

    #[test]
    fn stuck_at_effects_are_injectable() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let report = run_exhaustive(
            &t,
            &CampaignConfig::new().effects(vec![FaultEffect::Stuck0, FaultEffect::Stuck1]),
        );
        assert!(report.injections > 200);
        assert!(report.hijack_rate() < 0.05, "{report}");
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let seq = run_exhaustive(&t, &CampaignConfig::new().threads(1));
        let par = run_exhaustive(&t, &CampaignConfig::new().threads(2));
        assert_eq!(seq.injections, par.injections);
        assert_eq!(seq.masked, par.masked);
        assert_eq!(seq.detected, par.detected);
        assert_eq!(seq.hijacked, par.hijacked);
    }

    #[test]
    fn region_restriction_shrinks_fault_list() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let full = run_exhaustive(&t, &CampaignConfig::new());
        let diff = run_exhaustive(
            &t,
            &CampaignConfig::new().region(h.regions().diffusion.clone()),
        );
        assert!(diff.injections < full.injections);
        assert!(diff.injections > 0);
    }

    #[test]
    fn multi_fault_campaign_runs_and_reports() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let report = run_multi_fault(&t, 3, 500, &CampaignConfig::new().seed(99));
        assert_eq!(report.injections, 500);
        // Multi-fault attacks may escape occasionally but detection must
        // dominate among effective faults.
        assert!(report.coverage() > 0.8, "{report}");
    }

    #[test]
    fn multi_fault_is_deterministic_per_seed() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let a = run_multi_fault(&t, 2, 200, &CampaignConfig::new().seed(5));
        let b = run_multi_fault(&t, 2, 200, &CampaignConfig::new().seed(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "64/128/256")]
    fn lane_words_rejection_names_the_accepted_set() {
        let _ = CampaignConfig::new().lane_words(3);
    }

    /// The public fault enumeration and the internal campaign fault list
    /// are the same space — what the symbolic certifier enumerates is
    /// site-for-site what the campaigns inject.
    #[test]
    fn enumerate_faults_matches_the_campaign_fault_space() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        for config in [
            CampaignConfig::new(),
            CampaignConfig::new()
                .effects(vec![FaultEffect::Flip, FaultEffect::Stuck0])
                .with_pin_faults()
                .with_register_flips(),
            CampaignConfig::new().region(h.regions().diffusion.clone()),
        ] {
            assert_eq!(
                fault_list(&t, &config),
                enumerate_faults(h.module(), &config)
            );
        }
    }

    #[test]
    fn pin_faults_expand_the_fault_list() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let plain = fault_list(&t, &CampaignConfig::new());
        let with_pins = fault_list(&t, &CampaignConfig::new().with_pin_faults());
        assert!(with_pins.len() > 2 * plain.len());
    }

    #[test]
    fn selector_rails_reduce_selector_escapes() {
        // §7 extension: duplicated selector rails make wrong-match
        // assertion require multiple faults, so the escape rate over the
        // pattern-match + modifier-select logic must not get worse.
        let f = fsm();
        let h1 = harden(&f, &ScfiConfig::new(2)).unwrap();
        let h2 = harden(&f, &ScfiConfig::new(2).selector_rails(2)).unwrap();
        let rate = |h: &scfi_core::HardenedFsm| {
            let r = h.regions();
            run_exhaustive(
                &ScfiTarget::new(h),
                &CampaignConfig::new()
                    .region(r.pattern_match.start..r.modifier_select.end)
                    .with_pin_faults(),
            )
            .hijack_rate()
        };
        let r1 = rate(&h1);
        let r2 = rate(&h2);
        assert!(
            r2 <= r1,
            "rails=2 rate {r2} must not exceed rails=1 rate {r1}"
        );
    }

    #[test]
    fn adaptive_mds_target_still_protects() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2).adaptive_mds(true)).unwrap();
        assert!(h.mds().width() < 32, "small FSM must get a small matrix");
        let report = run_exhaustive(&ScfiTarget::new(&h), &CampaignConfig::new());
        // Branch number drops with the smaller matrix; detection must
        // still dominate.
        assert!(report.coverage() > 0.8, "{report}");
    }

    /// Field-wise aggregate comparison (hijack examples included — both
    /// engines record the first 64 hijacks in work-list order).
    fn assert_reports_identical(packed: &CampaignReport, scalar: &CampaignReport, what: &str) {
        assert_eq!(packed, scalar, "{what}: packed and scalar reports differ");
    }

    #[test]
    fn packed_exhaustive_matches_scalar_across_fault_models() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let configs = [
            CampaignConfig::new(),
            CampaignConfig::new().with_register_flips(),
            CampaignConfig::new().with_pin_faults(),
            CampaignConfig::new()
                .effects(vec![
                    FaultEffect::Flip,
                    FaultEffect::Stuck0,
                    FaultEffect::Stuck1,
                ])
                .with_pin_faults()
                .with_register_flips(),
            CampaignConfig::new().region(h.regions().diffusion.clone()),
        ];
        for (i, config) in configs.iter().enumerate() {
            let packed = run_exhaustive(&t, config);
            let scalar = run_exhaustive_scalar(&t, &config.clone().threads(1));
            assert_reports_identical(&packed, &scalar, &format!("config {i}"));
        }
    }

    #[test]
    fn packed_exhaustive_matches_scalar_on_baselines() {
        let f = fsm();
        let lowered = lower_unprotected(&f).unwrap();
        let unprot = UnprotectedTarget::new(&f, &lowered);
        let config = CampaignConfig::new()
            .with_register_flips()
            .with_pin_faults();
        assert_reports_identical(
            &run_exhaustive(&unprot, &config),
            &run_exhaustive_scalar(&unprot, &config),
            "unprotected",
        );
        let r = redundancy(&f, 3).unwrap();
        let red = RedundancyTarget::new(&r);
        assert_reports_identical(
            &run_exhaustive(&red, &config),
            &run_exhaustive_scalar(&red, &config),
            "redundancy",
        );
    }

    #[test]
    fn packed_multi_fault_matches_scalar_per_seed() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        for seed in [1, 42, 0xFA17] {
            let config = CampaignConfig::new().with_register_flips().seed(seed);
            assert_reports_identical(
                &run_multi_fault(&t, 3, 300, &config),
                &run_multi_fault_scalar(&t, 3, 300, &config),
                &format!("seed {seed}"),
            );
        }
    }

    /// Per-fault window draws: every backend agrees per seed, the knob is
    /// deterministic, and on a protocol target the drawn windows actually
    /// spread faults across different cycles of the same walk.
    #[test]
    fn windowed_multi_fault_matches_scalar_per_seed() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::with_protocol(&h, 4, 0xB007);
        for seed in [1, 42] {
            let config = CampaignConfig::new()
                .with_register_flips()
                .with_fault_windows()
                .seed(seed);
            assert!(config.fault_windows_enabled());
            let packed = run_multi_fault(&t, 3, 300, &config);
            assert_eq!(packed.injections, 300);
            assert_reports_identical(
                &packed,
                &run_multi_fault_scalar(&t, 3, 300, &config),
                &format!("windowed seed {seed}"),
            );
            assert_eq!(packed, run_multi_fault(&t, 3, 300, &config));
        }
    }

    /// The drawn per-fault windows are real overrides: the same seeded
    /// campaign with and without them produces different worklists, and
    /// the windowed one still agrees across the simd backend too.
    #[test]
    fn windowed_multi_fault_agrees_across_all_backends() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::with_protocol(&h, 3, 0xD0);
        let config = CampaignConfig::new()
            .with_register_flips()
            .with_fault_windows()
            .seed(7);
        let packed = run_multi_fault(&t, 2, 200, &config);
        for backend in Backend::ALL {
            assert_reports_identical(
                &packed,
                &run_multi_fault(&t, 2, 200, &config.clone().backend(backend)),
                backend.name(),
            );
        }
    }

    #[test]
    fn report_display_and_rates() {
        let r = CampaignReport {
            injections: 200,
            masked: 100,
            detected: 99,
            hijacked: 1,
            hijack_examples: vec![],
        };
        assert!((r.hijack_rate() - 0.005).abs() < 1e-12);
        assert!((r.coverage() - 0.99).abs() < 1e-12);
        let s = r.to_string();
        assert!(s.contains("200 injections"));
        assert!(s.contains("escape rate"));
    }

    /// An empty report (zero injections) must print finite rates — the
    /// guarded `hijack_rate`/`coverage` keep 0/0 out of the formatter.
    #[test]
    fn empty_report_displays_without_nan() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        // An empty fault list produces the canonical empty report.
        let report = run_multi_fault(&t, 1, 100, &CampaignConfig::new().effects(vec![]));
        assert_eq!(report.injections, 0);
        assert_eq!(report.hijack_rate(), 0.0);
        assert_eq!(report.coverage(), 1.0);
        let text = report.to_string();
        assert!(!text.contains("NaN"), "formatter leaked a NaN: {text}");
        assert!(text.contains("0 injections"));
        assert!(text.contains("0.00 % escape rate"));
    }

    /// `faults_per_run = 0` builds work items with empty fault groups;
    /// they must run (fault-free, hence masked) without panicking.
    #[test]
    fn zero_faults_per_run_is_graceful() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::new(&h);
        let config = CampaignConfig::new().seed(7);
        let packed = run_multi_fault(&t, 0, 50, &config);
        assert_eq!(packed.injections, 50);
        assert_eq!(packed.masked, 50);
        assert_eq!(packed, run_multi_fault_scalar(&t, 0, 50, &config));
    }

    /// Direct regression for the historical `faults[0]` panic: a hijack
    /// outcome on a work item whose fault group is empty must be recorded
    /// gracefully (whole group, here empty), not indexed out of bounds.
    #[test]
    fn aggregate_records_empty_fault_groups_without_panicking() {
        let mut work = WorkList::with_capacity(2);
        work.push(3, &[]);
        work.push(
            1,
            &[
                Fault {
                    site: FaultSite::Register(CellId(0)),
                    effect: FaultEffect::Flip,
                },
                Fault {
                    site: FaultSite::CellOutput(CellId(2)),
                    effect: FaultEffect::Stuck1,
                },
            ],
        );
        let report = aggregate(&work, &[Outcome::Hijack, Outcome::Hijack]);
        assert_eq!(report.hijacked, 2);
        assert_eq!(report.hijack_examples.len(), 2);
        assert_eq!(report.hijack_examples[0].scenario, 3);
        assert!(report.hijack_examples[0].faults.is_empty());
        assert_eq!(report.hijack_examples[1].faults.len(), 2);
    }

    #[test]
    fn trajectory_fold_lets_detection_dominate() {
        use Outcome::*;
        assert_eq!(Masked.fold(Masked), Masked);
        assert_eq!(Masked.fold(Hijack), Hijack);
        assert_eq!(Hijack.fold(Masked), Hijack);
        // The §6.4 argument: a hijacked state that later collapses to
        // ERROR was caught — detection wins regardless of order.
        assert_eq!(Hijack.fold(Detected), Detected);
        assert_eq!(Detected.fold(Hijack), Detected);
        assert_eq!(Detected.fold(Masked), Detected);
    }

    #[test]
    fn protocol_campaign_agrees_across_engines() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        for depth in [2, 4] {
            let t = ScfiTarget::with_protocol(&h, depth, 0xB007);
            let config = CampaignConfig::new().with_register_flips();
            let packed = run_exhaustive(&t, &config);
            let scalar = run_exhaustive_scalar(&t, &config);
            assert_eq!(packed, scalar, "depth {depth}");
            assert!(packed.injections > 0);
            // Multi-fault sampling over the protocol space too.
            let pm = run_multi_fault(&t, 2, 300, &config);
            let sm = run_multi_fault_scalar(&t, 2, 300, &config);
            assert_eq!(pm, sm, "multi-fault depth {depth}");
        }
    }

    #[test]
    fn protocol_register_faults_never_complete_the_walk_undetected() {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).unwrap();
        let t = ScfiTarget::with_protocol(&h, 3, 1);
        let regs = h.module().registers();
        let report = run_exhaustive(
            &t,
            &CampaignConfig::new()
                .effects(vec![])
                .region(regs[0].0..regs[regs.len() - 1].0 + 1)
                .with_register_flips(),
        );
        assert!(report.injections > 0);
        assert_eq!(report.hijacked, 0, "{report}");
        assert_eq!(
            report.masked, 0,
            "register flips are never masked: {report}"
        );
    }
}
