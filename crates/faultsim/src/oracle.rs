//! Word-parallel trajectory classification.
//!
//! The wave executor's per-lane serial cost used to be extraction: every
//! live lane of every cycle pulled its registers and outputs out of the
//! packed `[u64; W]` net words into `Vec<bool>` scratch and ran the
//! target's scalar [`classify`](crate::FaultTarget::classify) — 64–512
//! codeword decodes per wave cycle, each allocating a `BitVec` and
//! scanning the codebook. A [`WaveOracle`] removes that hot path: targets
//! precompile their codebook and alert structure once, and the executor
//! classifies **whole 64-lane words at a time** with bitwise logic on the
//! packed register/output words, never extracting a lane.
//!
//! The oracle is an exact reimplementation of the targets' scalar
//! classification — `detected`/`hijack` lane masks are derived from the
//! same decode rules, so verdicts are bit-for-bit those of the scalar
//! reference. The differential suites (packed vs. scalar, every width,
//! every Table-1 FSM) pin this equivalence.

/// How a target's detection lines are read from the sampled output words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertModel {
    /// No detection mechanism: nothing ever alerts (unprotected baseline).
    None,
    /// The last two output ports are the `alert` and `in_error` lines
    /// (SCFI-hardened modules); either one asserting is an alert.
    LastTwoOutputs,
    /// The last output port is the registered alert, OR-ed with a
    /// combinational replica-bank comparison on the post-step registers:
    /// any bank `k ≥ 1` disagreeing with bank 0 over the first
    /// `state_bits` registers alerts (redundancy baseline).
    BankMismatch {
        /// Register bits per replica bank.
        state_bits: usize,
    },
}

/// A precompiled word-level classification oracle for one fault target.
///
/// Classification happens in two stages per packed word:
///
/// 1. [`WaveOracle::detected_word`] computes the *expected-state
///    independent* detection mask — alert lines, the all-zero ERROR
///    pattern, and (for targets that detect invalid codewords) the
///    complement of "matches some codeword". This is shared by every
///    scenario classified in the word.
/// 2. [`WaveOracle::classify_word`] intersects with one scenario group's
///    live-lane mask and its expected codeword, returning `(detected,
///    hijack)` lane masks; lanes in neither mask are `Masked`.
///
/// The semantics mirror the scalar targets exactly: a lane is *detected*
/// when an alert asserts or (where applicable) the register word is zero
/// or decodes to no codeword; *masked* when it holds exactly the expected
/// state's codeword and is not detected; *hijack* otherwise — a valid but
/// wrong landing with no alert.
#[derive(Clone, Debug)]
pub struct WaveOracle {
    /// `codewords[s]` is state `s`'s register codeword over the decode
    /// window (the first `codewords[s].len()` registers).
    codewords: Vec<Vec<bool>>,
    /// Zero register words decode to the terminal ERROR state (SCFI).
    zero_is_error: bool,
    /// Non-codeword register words are detected rather than hijacks
    /// (SCFI's invalid-state argument; baselines treat them as wrong
    /// landings and judge purely by the alert).
    invalid_is_detected: bool,
    alert: AlertModel,
}

impl WaveOracle {
    /// Builds an oracle from a codebook (one codeword per state, indexed
    /// by state id) and the target's detection structure.
    ///
    /// # Panics
    ///
    /// Panics if `codewords` is empty or its entries disagree on width.
    pub fn new(
        codewords: Vec<Vec<bool>>,
        zero_is_error: bool,
        invalid_is_detected: bool,
        alert: AlertModel,
    ) -> Self {
        assert!(!codewords.is_empty(), "oracle needs at least one codeword");
        let width = codewords[0].len();
        assert!(
            codewords.iter().all(|w| w.len() == width),
            "codewords must share one width"
        );
        WaveOracle {
            codewords,
            zero_is_error,
            invalid_is_detected,
            alert,
        }
    }

    /// Registers participating in the decode (a prefix of the module's
    /// register order).
    pub fn decode_width(&self) -> usize {
        self.codewords[0].len()
    }

    /// Lanes of `word` whose decode-window registers equal `pattern`.
    fn eq_word<const W: usize>(pattern: &[bool], word: usize, regs: &[[u64; W]]) -> u64 {
        let mut acc = !0u64;
        for (i, &bit) in pattern.iter().enumerate() {
            let r = regs[i][word];
            acc &= if bit { r } else { !r };
        }
        acc
    }

    /// The expected-state-independent detection mask of one packed word:
    /// alert lines, plus (per the oracle's flags) the all-zero ERROR
    /// pattern and non-codeword register words. `regs` and `outputs` are
    /// the post-step packed register and output-port words.
    pub fn detected_word<const W: usize>(
        &self,
        word: usize,
        regs: &[[u64; W]],
        outputs: &[[u64; W]],
    ) -> u64 {
        let mut detected = match self.alert {
            AlertModel::None => 0,
            AlertModel::LastTwoOutputs => {
                let n = outputs.len();
                outputs[n - 2][word] | outputs[n - 1][word]
            }
            AlertModel::BankMismatch { state_bits } => {
                let mut m = outputs[outputs.len() - 1][word];
                // A ragged register file (not a whole number of banks)
                // compares unequal in the scalar reference; keep that.
                if !regs.len().is_multiple_of(state_bits) {
                    m = !0;
                }
                for bank in 1..regs.len() / state_bits {
                    for i in 0..state_bits {
                        m |= regs[bank * state_bits + i][word] ^ regs[i][word];
                    }
                }
                m
            }
        };
        if self.zero_is_error {
            let mut zero = !0u64;
            for reg in regs.iter().take(self.decode_width()) {
                zero &= !reg[word];
            }
            detected |= zero;
        }
        if self.invalid_is_detected {
            let mut valid = 0u64;
            for cw in &self.codewords {
                valid |= Self::eq_word(cw, word, regs);
            }
            detected |= !valid;
        }
        detected
    }

    /// Classifies the live lanes of one scenario group within one packed
    /// word: `detected` is [`WaveOracle::detected_word`]'s mask for this
    /// word, `expected` the fault-free landing state's codebook index,
    /// `live` the group's lane mask. Returns `(detected, hijack)` lane
    /// masks restricted to `live`; live lanes in neither are `Masked`
    /// (they hold exactly the expected codeword with no alert).
    pub fn classify_word<const W: usize>(
        &self,
        detected: u64,
        expected: usize,
        word: usize,
        live: u64,
        regs: &[[u64; W]],
    ) -> (u64, u64) {
        let on_target = Self::eq_word(&self.codewords[expected], word, regs);
        (live & detected, live & !detected & !on_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 3-bit codewords packed one lane at a time; lanes hold, in
    /// order: state 0, state 1, the zero word, an off-codebook word.
    fn reg_words() -> Vec<[u64; 1]> {
        let patterns: [[bool; 3]; 4] = [
            [true, false, true], // codeword 0
            [false, true, true], // codeword 1
            [false, false, false],
            [true, true, false], // invalid
        ];
        (0..3)
            .map(|bit| {
                let mut w = 0u64;
                for (lane, p) in patterns.iter().enumerate() {
                    if p[bit] {
                        w |= 1 << lane;
                    }
                }
                [w]
            })
            .collect()
    }

    fn oracle(zero_is_error: bool, invalid_is_detected: bool, alert: AlertModel) -> WaveOracle {
        WaveOracle::new(
            vec![vec![true, false, true], vec![false, true, true]],
            zero_is_error,
            invalid_is_detected,
            alert,
        )
    }

    #[test]
    fn scfi_style_decode_detects_zero_and_invalid() {
        let o = oracle(true, true, AlertModel::LastTwoOutputs);
        let regs = reg_words();
        let outs = vec![[0u64], [0u64]]; // both alert lines quiet
        let det = o.detected_word(0, &regs, &outs);
        // Lane 2 (zero) and lane 3 (invalid) are detected; lanes 0/1 not.
        assert_eq!(det & 0b1111, 0b1100);
        // Expecting state 0: lane 0 masked, lane 1 a valid-but-wrong hijack.
        let (d, h) = o.classify_word(det, 0, 0, 0b1111, &regs);
        assert_eq!(d, 0b1100);
        assert_eq!(h, 0b0010);
    }

    #[test]
    fn alert_lines_dominate_even_on_target() {
        let o = oracle(true, true, AlertModel::LastTwoOutputs);
        let regs = reg_words();
        // in_error asserted in lane 0 — the on-target lane is detected.
        let outs = vec![[0b0001u64], [0u64]];
        let det = o.detected_word(0, &regs, &outs);
        let (d, h) = o.classify_word(det, 0, 0, 0b1111, &regs);
        assert_eq!(d & 0b0001, 0b0001, "alerted on-target lane is detected");
        assert_eq!(h, 0b0010);
    }

    #[test]
    fn baseline_decode_treats_invalid_as_silent_hijack() {
        // Unprotected semantics: no alerts, no invalid detection.
        let o = oracle(false, false, AlertModel::None);
        let regs = reg_words();
        let det = o.detected_word(0, &regs, &Vec::<[u64; 1]>::new());
        assert_eq!(det, 0);
        let (d, h) = o.classify_word(det, 1, 0, 0b1111, &regs);
        assert_eq!(d, 0);
        // Everything but the expected-state lane is a hijack.
        assert_eq!(h, 0b1101);
    }

    #[test]
    fn bank_mismatch_alerts_on_replica_divergence() {
        // Two 2-bit banks: regs[0..2] bank 0, regs[2..4] bank 1.
        // Lane 0: banks agree (01|01). Lane 1: banks differ (01|11).
        let regs: Vec<[u64; 1]> = vec![[0b11], [0b00], [0b11], [0b10]];
        let o = WaveOracle::new(
            vec![vec![true, false], vec![false, true]],
            false,
            false,
            AlertModel::BankMismatch { state_bits: 2 },
        );
        let outs = vec![[0u64]]; // registered alert quiet
        let det = o.detected_word(0, &regs, &outs);
        assert_eq!(det & 0b11, 0b10);
        let (d, h) = o.classify_word(det, 0, 0, 0b11, &regs);
        assert_eq!(d, 0b10);
        assert_eq!(h, 0);
    }

    #[test]
    #[should_panic(expected = "share one width")]
    fn ragged_codebooks_are_rejected() {
        let _ = WaveOracle::new(
            vec![vec![true], vec![true, false]],
            false,
            false,
            AlertModel::None,
        );
    }
}
