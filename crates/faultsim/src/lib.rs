//! Pre-silicon fault-injection analysis — the reproduction's SYNFI
//! equivalent (paper §6.4, reference 14).
//!
//! SYNFI exhaustively transforms a netlist under a fault model and checks
//! whether the faulty circuit can still be distinguished from the fault-free
//! one. This crate implements the same campaign semantics by cycle-accurate
//! co-simulation:
//!
//! 1. Pick a *scenario* — an N-cycle [`Scenario`]: a register preload, a
//!    per-cycle input schedule, and a [`FaultTiming`] window. The paper's
//!    §6.4 experiment is the N = 1 case (the FSM sits in one CFG edge's
//!    source state and receives the edge's condition codeword); protocol
//!    campaigns walk multi-step transition sequences
//!    ([`protocol_scenarios`], `with_protocol` on the targets) with the
//!    fault glitching one chosen step.
//! 2. Pick a *fault* — an [`FaultEffect`] at a [`FaultSite`] (a gate output,
//!    an individual cell input pin, or a stored register bit), matching the
//!    paper's fault model of transient bit-flips and stuck-at effects on
//!    wires, combinational and sequential elements (§3).
//! 3. Run the scheduled cycles with the fault armed during its window and
//!    classify every cycle of the trajectory against the fault-free
//!    expectation, folding with [`Outcome::fold`]:
//!    [`Outcome::Masked`] (the whole walk stayed correct),
//!    [`Outcome::Detected`] (terminal-error/invalid state or an alert at
//!    any cycle — a hijacked state that collapses to ERROR later in the
//!    walk counts as detected), or [`Outcome::Hijack`] — the FSM silently
//!    reached a *valid but wrong* state and was never caught, the event
//!    the paper counts as a successful attack (32 / 7644 = 0.42 % in
//!    §6.4).
//!
//! Campaigns run exhaustively over every (edge × site × effect) triple
//! ([`run_exhaustive`]) or as seeded random multi-fault samples
//! ([`run_multi_fault`]), in parallel across threads by default.
//!
//! # Campaign backends
//!
//! Execution is pluggable behind the [`CampaignBackend`] trait: a backend
//! runs a [`WorkList`] of `(scenario, faults)` items and returns one
//! slot-ordered [`Outcome`] per item. Three implementations ship, selected
//! by [`CampaignConfig::backend`]:
//!
//! * [`Backend::Scalar`] — one [`Simulator`](scfi_netlist::Simulator),
//!   one injection at a time; the auditable semantic reference.
//! * [`Backend::Packed`] (default) — the bit-parallel
//!   [`PackedSimulator`](scfi_netlist::PackedSimulator) wave engine:
//!   64–256 `(scenario, fault)` lanes per netlist pass
//!   ([`CampaignConfig::lane_words`]), faults as precompiled AND/OR/XOR
//!   masks, word-parallel trajectory classification ([`WaveOracle`]),
//!   incremental re-simulation against the fault-free baseline, and
//!   wave-level cycle skipping.
//! * [`Backend::Simd`] — the same wave engine fixed at 512 lanes per op,
//!   shaped for the compiler's vectorizer.
//!
//! Backends are pure throughput trade-offs: every backend produces
//! injection-for-injection identical reports, deterministic and
//! independent of thread count, wave boundaries and lane order — the
//! workspace conformance suite pins them against each other on every
//! Table-1 FSM at every width and thread count.
//!
//! # Execution control
//!
//! Long campaigns are interruptible: [`try_run_exhaustive`],
//! [`try_run_multi_fault`] and [`VulnerabilityMap::try_analyze`] thread a
//! [`RunControl`] handle (cancellation token, wall-clock deadline,
//! injection budget) through the backend, checked once per wave. An
//! interrupted run returns [`CampaignError::Interrupted`] carrying a
//! [`PartialReport`] whose completed slots are byte-identical to the same
//! slots of an uninterrupted run, at any thread count on any backend; a
//! worker panic poisons only its own wave's item range
//! ([`CampaignError::WorkerPanic`]) while every other wave completes.
//!
//! # Example
//!
//! ```
//! use scfi_core::{harden, ScfiConfig};
//! use scfi_faultsim::{CampaignConfig, FaultEffect, ScfiTarget, run_exhaustive};
//! use scfi_fsm::parse_fsm;
//!
//! let fsm = parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }")?;
//! let hardened = harden(&fsm, &ScfiConfig::new(2))?;
//! let report = run_exhaustive(
//!     &ScfiTarget::new(&hardened),
//!     &CampaignConfig::new().effects(vec![FaultEffect::Flip]),
//! );
//! assert!(report.injections > 0);
//! assert_eq!(report.injections, report.masked + report.detected + report.hijacked);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod backend;
mod campaign;
mod control;
mod oracle;
mod target;
mod vulnerability;
mod wave;

pub use backend::{Backend, CampaignBackend, PackedBackend, ScalarBackend, SimdBackend};
pub use campaign::{
    arm, enumerate_faults, run_exhaustive, run_exhaustive_scalar, run_multi_fault,
    run_multi_fault_scalar, try_run_exhaustive, try_run_multi_fault, CampaignConfig,
    CampaignReport, Fault, FaultEffect, FaultRecord, FaultSite, Outcome,
};
pub use control::{CampaignError, LaneWidth, PartialReport, RunControl, StopReason};
pub use oracle::{AlertModel, WaveOracle};
pub use target::{
    adversarial_walks, fuzzed_protocol_scenarios, protocol_scenarios, FaultSchedule, FaultTarget,
    FaultTiming, ProtocolScenario, RedundancyTarget, Scenario, ScfiTarget, UnprotectedTarget,
};
pub use vulnerability::{SiteStats, VulnerabilityMap};
pub use wave::WorkList;

use scfi_core::HardenedFsm;

/// The paper's analytic success probability for an attacker injecting `N`
/// faults into the next-state-function inputs (§6.3):
///
/// ```text
/// P = (|S_Ne| + |E|) / (k · 2^(32 − (|S_Ne| + |E|)))
/// ```
///
/// The formula is reproduced verbatim from the paper; it upper-bounds the
/// chance that a random corruption of one MDS instance's output lands on a
/// valid (state, all-ones-error) pattern.
pub fn paper_success_probability(h: &HardenedFsm) -> f64 {
    let s_ne = h.state_code().width() as f64;
    let e = h.layout().total_error_bits() as f64;
    let k = h.layout().k() as f64;
    (s_ne + e) / (k * 2f64.powf(32.0 - (s_ne + e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_core::{harden, ScfiConfig};
    use scfi_fsm::parse_fsm;

    #[test]
    fn success_probability_is_tiny() {
        let fsm =
            parse_fsm("fsm m { inputs a; state P { if a -> Q; } state Q { goto P; } }").unwrap();
        let h = harden(&fsm, &ScfiConfig::new(2)).unwrap();
        let p = paper_success_probability(&h);
        assert!(p > 0.0);
        assert!(p < 1e-4, "P = {p} should be very small");
    }
}
