//! Telemetry-neutrality property: a campaign run with a recording
//! [`Telemetry`] handle installed produces *byte-identical* reports to
//! the same run with the free no-op handle, across backends × wave
//! widths × thread counts × fault-space knobs × single- and multi-fault
//! experiments. The recorder observes; it never participates.

use proptest::prelude::*;
use scfi_core::{harden, ScfiConfig};
use scfi_faultsim::{
    try_run_exhaustive, try_run_multi_fault, Backend, CampaignConfig, FaultEffect, RunControl,
    ScfiTarget, VulnerabilityMap,
};
use scfi_fsm::parse_fsm;
use scfi_telemetry::Telemetry;

const DEMO: &str = "fsm demo { inputs go; state A { if go -> B; } state B { goto A; } }";

/// Builds the campaign configuration for one property case.
fn config_for(
    telemetry: Telemetry,
    backend: Backend,
    lane_words: usize,
    threads: usize,
    stuck_at: bool,
    pin_faults: bool,
) -> CampaignConfig {
    let mut effects = vec![FaultEffect::Flip];
    if stuck_at {
        effects.push(FaultEffect::Stuck0);
        effects.push(FaultEffect::Stuck1);
    }
    let mut config = CampaignConfig::new()
        .effects(effects)
        .threads(threads)
        .lane_words(lane_words)
        .backend(backend)
        .telemetry(telemetry);
    if pin_faults {
        config = config.with_pin_faults();
    }
    config
}

/// Renders every campaign product for one configuration: the exhaustive
/// report, the ranked vulnerability map, and a multi-fault protocol
/// report — the full observable output surface.
fn render_all(target: &ScfiTarget<'_>, config: &CampaignConfig) -> String {
    let control = RunControl::unlimited();
    let report = try_run_exhaustive(target, config, &control).expect("uninterrupted campaign");
    let map = VulnerabilityMap::try_analyze(target, config, &control).expect("uninterrupted map");
    let multi = try_run_multi_fault(target, 2, 50, config, &control).expect("uninterrupted multi");
    format!("{report}\n{map}\n{multi}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn campaign_reports_are_byte_identical_with_recorder_installed(
        backend_pick in 0usize..3,
        lane_pick in 0usize..3,
        threads in 1usize..4,
        stuck_at in any::<bool>(),
        pin_faults in any::<bool>(),
        protocol_pick in 0usize..3,
    ) {
        let fsm = parse_fsm(DEMO).expect("demo parses");
        let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("demo hardens");
        // 0 = the single-transition experiment, k > 0 = depth-k walks.
        let target = match protocol_pick {
            0 => ScfiTarget::new(&hardened),
            depth => ScfiTarget::with_protocol(&hardened, depth, 0x5CF1_3007),
        };
        let backend = Backend::parse(["scalar", "packed", "simd"][backend_pick])
            .expect("known backend");
        let lane_words = [1usize, 2, 4][lane_pick];

        let off = render_all(
            &target,
            &config_for(Telemetry::off(), backend, lane_words, threads, stuck_at, pin_faults),
        );
        let recorder = Telemetry::recording();
        let on = render_all(
            &target,
            &config_for(recorder.clone(), backend, lane_words, threads, stuck_at, pin_faults),
        );
        prop_assert_eq!(&on, &off, "telemetry must not perturb the report");

        // ... and the recorder really was live during the identical run.
        prop_assert!(recorder.counter("scfi_campaign_injections_total").get() > 0);
        prop_assert!(recorder.counter("scfi_campaign_waves_total").get() > 0);
    }
}
