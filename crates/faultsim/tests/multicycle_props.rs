//! Differential property tests for multi-cycle campaign scenarios: the
//! packed wave engine against the scalar reference over random protocol
//! depths, walk seeds, fault models, transient fault windows and wave
//! widths (64/128/256 lanes), on all three §6.1 target configurations.
//! The scalar engine is the oracle; any divergence in any aggregate
//! (including the recorded hijack-example groups) fails the case.

use proptest::prelude::*;
use scfi_core::{harden, redundancy, ScfiConfig};
use scfi_faultsim::{
    run_exhaustive, run_exhaustive_scalar, run_multi_fault, run_multi_fault_scalar, CampaignConfig,
    FaultEffect, FaultSchedule, FaultTiming, ProtocolScenario, RedundancyTarget, ScfiTarget,
    UnprotectedTarget,
};
use scfi_fsm::{lower_unprotected, parse_fsm, Fsm};

fn fsm() -> Fsm {
    parse_fsm(
        "fsm walkable { inputs go, halt;
           state A { if go -> B; if halt -> D; }
           state B { if go -> C; }
           state C { if halt -> D; goto A; }
           state D { goto A; } }",
    )
    .expect("valid DSL")
}

/// Campaign config drawn from the case: effect set pick, pin faults,
/// register flips, thread count, wave-width pick, seed.
fn config(
    effects_pick: u8,
    pins: bool,
    regs: bool,
    threads: usize,
    width_pick: u8,
    seed: u64,
) -> CampaignConfig {
    let effects = match effects_pick % 3 {
        0 => vec![FaultEffect::Flip],
        1 => vec![FaultEffect::Stuck0, FaultEffect::Stuck1],
        _ => vec![FaultEffect::Flip, FaultEffect::Stuck0, FaultEffect::Stuck1],
    };
    let mut c = CampaignConfig::new()
        .effects(effects)
        .threads(1 + threads % 3)
        .lane_words(1 << (width_pick % 3)) // 1, 2 or 4 words per wave
        .seed(seed);
    if pins {
        c = c.with_pin_faults();
    }
    if regs {
        c = c.with_register_flips();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exhaustive protocol campaigns agree packed-vs-scalar on every
    /// target configuration, for random depths and walk seeds.
    #[test]
    fn packed_matches_scalar_on_random_protocol_campaigns(
        depth in 1usize..5,
        walk_seed in any::<u64>(),
        effects_pick in any::<u8>(),
        pins in any::<bool>(),
        regs in any::<bool>(),
        threads in any::<usize>(),
        width_pick in any::<u8>(),
    ) {
        let f = fsm();
        let cfg = config(effects_pick, pins, regs, threads, width_pick, 1);
        let h = harden(&f, &ScfiConfig::new(2)).expect("harden");
        let t = ScfiTarget::with_protocol(&h, depth, walk_seed);
        prop_assert_eq!(run_exhaustive(&t, &cfg), run_exhaustive_scalar(&t, &cfg));

        let r = redundancy(&f, 2).expect("redundancy");
        let t = RedundancyTarget::with_protocol(&r, depth, walk_seed);
        prop_assert_eq!(run_exhaustive(&t, &cfg), run_exhaustive_scalar(&t, &cfg));

        let lowered = lower_unprotected(&f).expect("lowering");
        let t = UnprotectedTarget::with_protocol(&f, &lowered, depth, walk_seed);
        prop_assert_eq!(run_exhaustive(&t, &cfg), run_exhaustive_scalar(&t, &cfg));
    }

    /// Seeded multi-fault sampling over the protocol scenario space agrees
    /// packed-vs-scalar, fault draw for fault draw.
    #[test]
    fn packed_matches_scalar_on_random_multi_fault_protocols(
        depth in 1usize..4,
        walk_seed in any::<u64>(),
        draw_seed in any::<u64>(),
        faults_per_run in 0usize..4,
        runs in 1usize..200,
        width_pick in any::<u8>(),
    ) {
        let f = fsm();
        let cfg = config(0, false, true, 0, width_pick, draw_seed);
        let h = harden(&f, &ScfiConfig::new(2)).expect("harden");
        let t = ScfiTarget::with_protocol(&h, depth, walk_seed);
        prop_assert_eq!(
            run_multi_fault(&t, faults_per_run, runs, &cfg),
            run_multi_fault_scalar(&t, faults_per_run, runs, &cfg)
        );
    }

    /// Hand-built walks with every fault-window placement (including
    /// `Permanent` over a multi-cycle walk) agree across engines.
    #[test]
    fn packed_matches_scalar_on_explicit_fault_windows(
        len in 1usize..4,
        permanent in any::<bool>(),
        window in any::<usize>(),
        effects_pick in any::<u8>(),
        width_pick in any::<u8>(),
    ) {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).expect("harden");
        let cfg_edges = h.cfg().edges().len();
        // One connected walk per starting edge, stepped greedily.
        let mut scenarios = Vec::new();
        for start in 0..cfg_edges {
            let mut edges = vec![start];
            while edges.len() < len {
                let at = h.cfg().edges()[*edges.last().unwrap()].to;
                edges.push(h.cfg().out_edge_indices(at)[0]);
            }
            let timing = if permanent {
                FaultTiming::Permanent
            } else {
                FaultTiming::Transient(window % len)
            };
            scenarios.push(ProtocolScenario::uniform(edges, timing));
        }
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let cfg = config(effects_pick, false, true, 1, width_pick, 1);
        prop_assert_eq!(run_exhaustive(&t, &cfg), run_exhaustive_scalar(&t, &cfg));
    }

    /// Per-fault schedules ([`FaultSchedule::PerFault`]) over hand-built
    /// walks: each scenario arms fault `j` of the group in its own random
    /// window, and every engine×width×thread combination must agree with
    /// the scalar reference.
    #[test]
    fn packed_matches_scalar_on_per_fault_schedules(
        len in 2usize..5,
        windows in proptest::collection::vec(any::<usize>(), 1..4),
        effects_pick in any::<u8>(),
        regs in any::<bool>(),
        threads in any::<usize>(),
        width_pick in any::<u8>(),
    ) {
        let f = fsm();
        let h = harden(&f, &ScfiConfig::new(2)).expect("harden");
        let mut scenarios = Vec::new();
        for start in 0..h.cfg().edges().len() {
            let mut edges = vec![start];
            while edges.len() < len {
                let at = h.cfg().edges()[*edges.last().unwrap()].to;
                edges.push(h.cfg().out_edge_indices(at)[0]);
            }
            let schedule = FaultSchedule::PerFault(
                windows
                    .iter()
                    .enumerate()
                    .map(|(j, w)| FaultTiming::Transient((w + j + start) % len))
                    .collect(),
            );
            scenarios.push(ProtocolScenario::new(edges, schedule));
        }
        let t = ScfiTarget::with_scenarios(&h, scenarios);
        let cfg = config(effects_pick, false, regs, threads, width_pick, 1);
        prop_assert_eq!(run_exhaustive(&t, &cfg), run_exhaustive_scalar(&t, &cfg));
        // Multi-fault groups spread over the per-fault windows too.
        prop_assert_eq!(
            run_multi_fault(&t, 3, 150, &cfg),
            run_multi_fault_scalar(&t, 3, 150, &cfg)
        );
    }

    /// Sampled per-fault *window draws* (`with_fault_windows`) and
    /// adversarially fuzzed input schedules (`with_fuzzed_protocol`) agree
    /// packed-vs-scalar on every target configuration, draw for draw.
    #[test]
    fn packed_matches_scalar_on_windowed_fuzzed_campaigns(
        depth in 1usize..5,
        walk_seed in any::<u64>(),
        draw_seed in any::<u64>(),
        faults_per_run in 0usize..4,
        runs in 1usize..150,
        effects_pick in any::<u8>(),
        threads in any::<usize>(),
        width_pick in any::<u8>(),
    ) {
        let f = fsm();
        let cfg = config(effects_pick, false, true, threads, width_pick, draw_seed)
            .with_fault_windows();
        let h = harden(&f, &ScfiConfig::new(2)).expect("harden");
        let t = ScfiTarget::with_fuzzed_protocol(&h, depth, walk_seed);
        prop_assert_eq!(run_exhaustive(&t, &cfg), run_exhaustive_scalar(&t, &cfg));
        prop_assert_eq!(
            run_multi_fault(&t, faults_per_run, runs, &cfg),
            run_multi_fault_scalar(&t, faults_per_run, runs, &cfg)
        );

        let r = redundancy(&f, 2).expect("redundancy");
        let t = RedundancyTarget::with_fuzzed_protocol(&r, depth, walk_seed);
        prop_assert_eq!(
            run_multi_fault(&t, faults_per_run, runs, &cfg),
            run_multi_fault_scalar(&t, faults_per_run, runs, &cfg)
        );

        let lowered = lower_unprotected(&f).expect("lowering");
        let t = UnprotectedTarget::with_fuzzed_protocol(&f, &lowered, depth, walk_seed);
        prop_assert_eq!(run_exhaustive(&t, &cfg), run_exhaustive_scalar(&t, &cfg));
        prop_assert_eq!(
            run_multi_fault(&t, faults_per_run, runs, &cfg),
            run_multi_fault_scalar(&t, faults_per_run, runs, &cfg)
        );
    }
}
