//! Differential property tests driving the [`CampaignBackend`] *trait*
//! directly: random sequential netlists wrapped in a synthetic fault
//! target (deliberately without a [`WaveOracle`], so the wave backends
//! run their per-lane extraction fallback), random multi-cycle scenarios,
//! random fault groups, random thread counts — and every backend
//! ({scalar, packed W ∈ {1, 2, 4}, simd}) must return the *identical
//! slot-ordered outcome vector*. The single-threaded scalar backend is
//! the oracle; any divergence in any slot fails the case.

use proptest::prelude::*;
use scfi_faultsim::{
    CampaignBackend, CampaignConfig, Fault, FaultEffect, FaultSchedule, FaultSite, FaultTarget,
    FaultTiming, Outcome, PackedBackend, ScalarBackend, Scenario, SimdBackend, WorkList,
};
use scfi_netlist::{CellId, Module, ModuleBuilder, NetId};

const N_INPUTS: usize = 3;

/// A recipe for one gate: opcode and operand picks (resolved modulo the
/// net pool, so any random tuple is valid).
type GateSpec = (u8, usize, usize);

/// A recipe for one fault: site kind, cell pick, pin pick, effect pick.
type FaultSpec = (u8, usize, u8, u8);

/// A recipe for one scenario: register preload bits, input schedule,
/// permanent-vs-transient pick, window pick, per-fault window picks
/// (empty = one shared window for the whole group).
type ScenarioSpec = (u64, Vec<u8>, bool, usize, Vec<usize>);

/// Builds a random sequential module: `n_regs` flip-flops, a random
/// combinational DAG over inputs + register outputs, random register
/// feedback. The last net and every register are exposed as outputs so
/// the synthetic classifier observes real state.
fn build(recipe: &[GateSpec], n_regs: usize, dff_srcs: &[usize]) -> Module {
    let mut b = ModuleBuilder::new("backend_diff");
    let inputs: Vec<NetId> = (0..N_INPUTS).map(|i| b.input(format!("i{i}"))).collect();
    let regs: Vec<NetId> = (0..n_regs).map(|i| b.dff_uninit(i % 2 == 0)).collect();
    let mut nets = inputs;
    nets.extend(&regs);
    for &(op, a, c) in recipe {
        let (na, nc) = (nets[a % nets.len()], nets[c % nets.len()]);
        let net = match op % 9 {
            0 => b.and2(na, nc),
            1 => b.or2(na, nc),
            2 => b.xor2(na, nc),
            3 => b.nand2(na, nc),
            4 => b.nor2(na, nc),
            5 => b.xnor2(na, nc),
            6 => b.not(na),
            7 => b.buf(na),
            _ => {
                let sel = nets[(a ^ c) % nets.len()];
                b.mux(sel, na, nc)
            }
        };
        nets.push(net);
    }
    for (i, &q) in regs.iter().enumerate() {
        b.set_dff_input(q, nets[dff_srcs[i] % nets.len()]);
    }
    b.output("y", *nets.last().expect("nonempty"));
    for (i, &q) in regs.iter().enumerate() {
        b.output(format!("q{i}"), q);
    }
    b.finish().expect("valid random module")
}

/// A synthetic target over a random netlist. `classify` is an arbitrary
/// but deterministic function of the observed registers and outputs —
/// there is no "protection semantics" to exploit, so agreement across
/// backends can only come from identical simulation and identical
/// slot-ordered folding. `wave_oracle` stays `None` on purpose.
struct RandomTarget {
    module: Module,
    scenarios: Vec<Scenario>,
}

impl FaultTarget for RandomTarget {
    fn module(&self) -> &Module {
        &self.module
    }

    fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    fn scenario(&self, index: usize) -> Scenario {
        self.scenarios[index].clone()
    }

    fn classify(&self, index: usize, cycle: usize, regs: &[bool], outputs: &[bool]) -> Outcome {
        let mut acc = index.wrapping_mul(7).wrapping_add(cycle);
        for (i, &b) in regs.iter().chain(outputs).enumerate() {
            if b {
                acc = acc.wrapping_add(2 * i + 1);
            }
        }
        match acc % 3 {
            0 => Outcome::Masked,
            1 => Outcome::Detected,
            _ => Outcome::Hijack,
        }
    }
}

/// Decodes a fault spec against the module; `None` for picks with no
/// valid site (pin faults on zero-arity cells).
fn decode_fault(module: &Module, spec: FaultSpec) -> Option<Fault> {
    let (site, cell_pick, pin_pick, effect_pick) = spec;
    let effect = match effect_pick % 3 {
        0 => FaultEffect::Flip,
        1 => FaultEffect::Stuck0,
        _ => FaultEffect::Stuck1,
    };
    match site % 3 {
        0 => Some(Fault {
            site: FaultSite::CellOutput(CellId((cell_pick % module.len()) as u32)),
            effect,
        }),
        1 => {
            let cell = CellId((cell_pick % module.len()) as u32);
            let arity = module.cell(cell).kind.arity();
            if arity == 0 {
                return None;
            }
            Some(Fault {
                site: FaultSite::Pin(cell, pin_pick % arity as u8),
                effect,
            })
        }
        _ => {
            let regs = module.registers();
            Some(Fault {
                site: FaultSite::Register(regs[cell_pick % regs.len()]),
                effect: FaultEffect::Flip,
            })
        }
    }
}

/// Materializes the scenario specs against the module's port widths.
fn decode_scenarios(module: &Module, specs: &[ScenarioSpec]) -> Vec<Scenario> {
    let n_regs = module.registers().len();
    specs
        .iter()
        .map(|(reg_bits, schedule, permanent, window, per_fault)| {
            let cycles = schedule.len().max(1);
            let inputs = (0..cycles)
                .map(|c| {
                    let byte = schedule.get(c).copied().unwrap_or(0);
                    (0..N_INPUTS).map(|i| (byte >> i) & 1 == 1).collect()
                })
                .collect();
            Scenario {
                regs: (0..n_regs).map(|i| (reg_bits >> i) & 1 == 1).collect(),
                inputs,
                schedule: if *permanent {
                    FaultSchedule::Uniform(FaultTiming::Permanent)
                } else if per_fault.is_empty() {
                    FaultSchedule::Uniform(FaultTiming::Transient(window % cycles))
                } else {
                    FaultSchedule::PerFault(
                        per_fault
                            .iter()
                            .map(|w| FaultTiming::Transient(w % cycles))
                            .collect(),
                    )
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every backend returns the same slot-ordered outcomes as the
    /// single-threaded scalar reference, over random netlists, scenarios,
    /// fault groups and thread counts.
    #[test]
    fn backends_agree_slot_for_slot_on_random_netlists(
        recipe in proptest::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 3..20),
        n_regs in 1usize..5,
        dff_srcs in proptest::collection::vec(0usize..64, 4),
        scenario_specs in proptest::collection::vec(
            (
                any::<u64>(),
                proptest::collection::vec(any::<u8>(), 1..4),
                any::<bool>(),
                any::<usize>(),
                proptest::collection::vec(any::<usize>(), 0..4),
            ),
            1..4,
        ),
        fault_specs in proptest::collection::vec((any::<u8>(), 0usize..512, any::<u8>(), any::<u8>()), 1..24),
        group_size in 1usize..3,
        threads in 1usize..5,
    ) {
        let module = build(&recipe, n_regs, &dff_srcs);
        let scenarios = decode_scenarios(&module, &scenario_specs);
        let faults: Vec<Fault> = fault_specs
            .iter()
            .filter_map(|&spec| decode_fault(&module, spec))
            .collect();
        prop_assume!(!faults.is_empty());
        let target = RandomTarget { module, scenarios };

        // Scenario-major single-fault items plus trailing multi-fault
        // groups, so waves mix group sizes and scenario boundaries.
        let mut work = WorkList::with_capacity(target.scenario_count() * faults.len());
        for s in 0..target.scenario_count() {
            for fault in &faults {
                work.push(s, std::slice::from_ref(fault));
            }
        }
        for (i, group) in faults.chunks(group_size).enumerate() {
            work.push(i % target.scenario_count(), group);
        }
        // A third block overrides each fault's window per item
        // ([`WorkList::push_scheduled`]), exercising the per-fault re-arm
        // masks across group sizes and wave boundaries.
        for (i, group) in faults.chunks(group_size).enumerate() {
            let s = i % target.scenario_count();
            let cycles = target.scenarios[s].cycles();
            let windows: Vec<FaultTiming> = group
                .iter()
                .enumerate()
                .map(|(j, _)| FaultTiming::Transient((i * 31 + 7 * j) % cycles))
                .collect();
            work.push_scheduled(s, group, &windows);
        }

        let reference = ScalarBackend.execute(&target, &work, &CampaignConfig::new().threads(1));
        prop_assert_eq!(reference.len(), work.len());

        let threaded = CampaignConfig::new().threads(threads);
        prop_assert_eq!(
            &ScalarBackend.execute(&target, &work, &threaded),
            &reference,
            "scalar backend, {} threads",
            threads
        );
        for lane_words in [1usize, 2, 4] {
            prop_assert_eq!(
                &PackedBackend.execute(&target, &work, &threaded.clone().lane_words(lane_words)),
                &reference,
                "packed backend W={}, {} threads",
                lane_words,
                threads
            );
        }
        prop_assert_eq!(
            &SimdBackend.execute(&target, &work, &threaded),
            &reference,
            "simd backend, {} threads",
            threads
        );
    }
}
