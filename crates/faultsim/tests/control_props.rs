//! Execution-control property tests, driving [`CampaignBackend::try_execute`]
//! directly: interrupted campaigns (cancelled, deadlined, or out of
//! injection budget) must return a partial report whose every completed
//! slot is **byte-identical** to the same slot of an uninterrupted run —
//! at any backend, wave width and thread count — and a worker panic must
//! poison only its own wave, with everything else completing normally.

use proptest::prelude::*;
use scfi_faultsim::{
    CampaignBackend, CampaignConfig, CampaignError, Fault, FaultEffect, FaultSchedule, FaultSite,
    FaultTarget, FaultTiming, Outcome, PackedBackend, RunControl, ScalarBackend, Scenario,
    SimdBackend, StopReason, WorkList,
};
use scfi_netlist::{CellId, Module, ModuleBuilder, NetId};
use std::time::Duration;

const N_INPUTS: usize = 3;
const N_SCENARIOS: usize = 12;

/// A small fixed sequential module: enough cells for a fault space that
/// spans several waves even at the 512-lane SIMD width.
fn module() -> Module {
    let mut b = ModuleBuilder::new("control_props");
    let inputs: Vec<NetId> = (0..N_INPUTS).map(|i| b.input(format!("i{i}"))).collect();
    let regs: Vec<NetId> = (0..3).map(|i| b.dff_uninit(i % 2 == 0)).collect();
    let mut nets: Vec<NetId> = inputs.iter().chain(&regs).copied().collect();
    for i in 0..24 {
        let a = nets[i % nets.len()];
        let c = nets[(i * 7 + 3) % nets.len()];
        let net = match i % 5 {
            0 => b.and2(a, c),
            1 => b.or2(a, c),
            2 => b.xor2(a, c),
            3 => b.nand2(a, c),
            _ => b.xnor2(a, c),
        };
        nets.push(net);
    }
    for (i, &q) in regs.iter().enumerate() {
        b.set_dff_input(q, nets[nets.len() - 1 - i]);
    }
    b.output("y", *nets.last().expect("nonempty"));
    for (i, &q) in regs.iter().enumerate() {
        b.output(format!("q{i}"), q);
    }
    b.finish().expect("valid module")
}

/// A synthetic target with a deterministic-hash classifier (no wave
/// oracle, so every backend runs per-lane extraction) and an optional
/// poisoned scenario whose classification panics — the deliberately
/// broken target for the panic-isolation tests.
struct SyntheticTarget {
    module: Module,
    scenarios: Vec<Scenario>,
    poison: Option<usize>,
}

impl SyntheticTarget {
    fn new(poison: Option<usize>) -> Self {
        let module = module();
        let n_regs = module.registers().len();
        let scenarios = (0..N_SCENARIOS)
            .map(|s| Scenario {
                regs: (0..n_regs).map(|i| (s >> i) & 1 == 1).collect(),
                inputs: (0..2)
                    .map(|c| (0..N_INPUTS).map(|i| (s + c + i) % 3 == 0).collect())
                    .collect(),
                schedule: FaultSchedule::Uniform(if s % 2 == 0 {
                    FaultTiming::Permanent
                } else {
                    FaultTiming::Transient(s % 2)
                }),
            })
            .collect();
        SyntheticTarget {
            module,
            scenarios,
            poison,
        }
    }
}

impl FaultTarget for SyntheticTarget {
    fn module(&self) -> &Module {
        &self.module
    }

    fn scenario_count(&self) -> usize {
        self.scenarios.len()
    }

    fn scenario(&self, index: usize) -> Scenario {
        self.scenarios[index].clone()
    }

    fn classify(&self, index: usize, cycle: usize, regs: &[bool], outputs: &[bool]) -> Outcome {
        if self.poison == Some(index) {
            panic!("poisoned scenario {index}");
        }
        let mut acc = index.wrapping_mul(11).wrapping_add(cycle);
        for (i, &b) in regs.iter().chain(outputs).enumerate() {
            if b {
                acc = acc.wrapping_add(2 * i + 1);
            }
        }
        match acc % 3 {
            0 => Outcome::Masked,
            1 => Outcome::Detected,
            _ => Outcome::Hijack,
        }
    }
}

/// Every cell-output fault (flip + both stuck-ats) plus register flips:
/// a fault space large enough that scenarios × faults spans multiple
/// waves at every width.
fn fault_space(module: &Module) -> Vec<Fault> {
    let mut faults = Vec::new();
    for c in 0..module.len() {
        for effect in [FaultEffect::Flip, FaultEffect::Stuck0, FaultEffect::Stuck1] {
            faults.push(Fault {
                site: FaultSite::CellOutput(CellId(c as u32)),
                effect,
            });
        }
    }
    for &reg in module.registers() {
        faults.push(Fault {
            site: FaultSite::Register(reg),
            effect: FaultEffect::Flip,
        });
    }
    faults
}

/// Scenario-major exhaustive work list.
fn work_list(target: &SyntheticTarget, faults: &[Fault]) -> WorkList {
    let mut work = WorkList::with_capacity(target.scenario_count() * faults.len());
    for s in 0..target.scenario_count() {
        for fault in faults {
            work.push(s, std::slice::from_ref(fault));
        }
    }
    work
}

/// Backend picks: (label, config patch, wave width in items).
/// Scalar chunks its per-item loop at 64 items; packed waves hold
/// `64 × W` lanes; the SIMD backend always runs 512-lane waves.
const PICKS: usize = 5;

fn pick_config(pick: usize, threads: usize) -> (CampaignConfig, usize, &'static str) {
    let config = CampaignConfig::new().threads(threads);
    match pick {
        0 => (config, 64, "scalar"),
        1 => (config.lane_words(1), 64, "packed W=1"),
        2 => (config.lane_words(2), 128, "packed W=2"),
        3 => (config.lane_words(4), 256, "packed W=4"),
        _ => (config, 512, "simd"),
    }
}

fn try_run(
    pick: usize,
    target: &SyntheticTarget,
    work: &WorkList,
    config: &CampaignConfig,
    control: &RunControl,
) -> Result<Vec<Outcome>, CampaignError> {
    match pick {
        0 => ScalarBackend.try_execute(target, work, config, control),
        1..=3 => PackedBackend.try_execute(target, work, config, control),
        _ => SimdBackend.try_execute(target, work, config, control),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cancelling a campaign after a random number of waves (via an
    /// injection budget cut at a random wave boundary), on a random
    /// backend with a random thread count, leaves a partial report whose
    /// completed slots are byte-identical to the uninterrupted run's.
    #[test]
    fn interrupted_campaigns_keep_a_byte_identical_completed_prefix(
        pick in 0usize..PICKS,
        threads in 1usize..5,
        budget_waves in 0u64..6,
    ) {
        let target = SyntheticTarget::new(None);
        let faults = fault_space(target.module());
        let work = work_list(&target, &faults);
        let (config, wave_items, label) = pick_config(pick, threads);
        prop_assume!(work.len() > wave_items); // the budget must be able to bite

        let reference = try_run(pick, &target, &work, &config, &RunControl::unlimited())
            .expect("an unlimited run never fails");
        prop_assert_eq!(reference.len(), work.len());

        let control =
            RunControl::unlimited().with_injection_budget(budget_waves * wave_items as u64);
        match try_run(pick, &target, &work, &config, &control) {
            Err(CampaignError::Interrupted { reason, partial }) => {
                prop_assert_eq!(reason, StopReason::InjectionBudgetExhausted, "{}", label);
                prop_assert_eq!(partial.total(), work.len(), "{}", label);
                let some = partial.outcomes.iter().filter(|o| o.is_some()).count();
                prop_assert_eq!(some, partial.completed, "{}", label);
                prop_assert!(
                    partial.completed < work.len(),
                    "{}: an interrupted run cannot have completed everything",
                    label
                );
                for (i, slot) in partial.outcomes.iter().enumerate() {
                    if let Some(outcome) = slot {
                        prop_assert_eq!(
                            *outcome, reference[i],
                            "{}: completed slot {} diverged from the uninterrupted run",
                            label, i
                        );
                    }
                }
            }
            Ok(outcomes) => {
                // The random budget covered the whole campaign.
                prop_assert_eq!(outcomes, reference, "{}", label);
            }
            Err(other) => prop_assert!(false, "{}: unexpected error: {}", label, other),
        }
    }
}

/// A token cancelled before the run starts completes zero waves, on
/// every backend, and still reports the full work-list size.
#[test]
fn pre_cancelled_campaigns_complete_nothing() {
    let target = SyntheticTarget::new(None);
    let faults = fault_space(target.module());
    let work = work_list(&target, &faults);
    for pick in 0..PICKS {
        let (config, _, label) = pick_config(pick, 2);
        let control = RunControl::unlimited();
        control.cancel();
        match try_run(pick, &target, &work, &config, &control) {
            Err(CampaignError::Interrupted { reason, partial }) => {
                assert_eq!(reason, StopReason::Cancelled, "{label}");
                assert_eq!(partial.completed, 0, "{label}");
                assert_eq!(partial.total(), work.len(), "{label}");
                assert!(partial.outcomes.iter().all(Option::is_none), "{label}");
            }
            other => panic!("{label}: expected Interrupted, got {other:?}"),
        }
    }
}

/// An already-expired deadline stops every backend before the first wave.
#[test]
fn expired_deadline_stops_before_the_first_wave() {
    let target = SyntheticTarget::new(None);
    let faults = fault_space(target.module());
    let work = work_list(&target, &faults);
    for pick in 0..PICKS {
        let (config, _, label) = pick_config(pick, 1);
        let control = RunControl::unlimited().with_deadline(Duration::ZERO);
        match try_run(pick, &target, &work, &config, &control) {
            Err(CampaignError::Interrupted { reason, partial }) => {
                assert_eq!(reason, StopReason::DeadlineExpired, "{label}");
                assert_eq!(partial.completed, 0, "{label}");
            }
            other => panic!("{label}: expected Interrupted, got {other:?}"),
        }
    }
}

/// Panic isolation: a target whose classifier panics on one scenario
/// poisons only the waves touching that scenario. Every other wave
/// completes with outcomes byte-identical to a clean run, and the error
/// names a non-empty poisoned item range.
#[test]
fn a_poisoned_scenario_fails_its_waves_and_nothing_else() {
    let poison = N_SCENARIOS / 2;
    let clean = SyntheticTarget::new(None);
    let faults = fault_space(clean.module());
    let work = work_list(&clean, &faults);
    let reference = ScalarBackend.execute(&clean, &work, &CampaignConfig::new().threads(1));

    let poisoned = SyntheticTarget::new(Some(poison));
    for pick in 0..PICKS {
        for threads in [1, 4] {
            let (config, _, label) = pick_config(pick, threads);
            match try_run(pick, &poisoned, &work, &config, &RunControl::unlimited()) {
                Err(CampaignError::WorkerPanic {
                    item_range,
                    message,
                    partial,
                }) => {
                    assert!(
                        message.contains("poisoned scenario"),
                        "{label}: payload lost: {message}"
                    );
                    assert!(!item_range.is_empty(), "{label}");
                    assert!(partial.completed > 0, "{label}: the rest must complete");
                    for (i, slot) in partial.outcomes.iter().enumerate() {
                        let (scenario, _) = work.item(i);
                        if scenario == poison {
                            assert!(
                                slot.is_none(),
                                "{label}: item {i} of the poisoned scenario reported an outcome"
                            );
                        }
                        if let Some(outcome) = slot {
                            assert_eq!(
                                *outcome, reference[i],
                                "{label}: slot {i} diverged from the clean run"
                            );
                        }
                    }
                }
                other => panic!("{label}: expected WorkerPanic, got {other:?}"),
            }
        }
    }
}
