//! Property-based tests for the GF(2) algebra core.

use proptest::prelude::*;
use scfi_gf2::{BitMatrix, BitVec, Gf256, Gf2Poly};

fn bitvec(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len..=len).prop_map(|v| BitVec::from_bools(&v))
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    proptest::collection::vec(any::<bool>(), rows * cols..=rows * cols)
        .prop_map(move |bits| BitMatrix::from_fn(rows, cols, |r, c| bits[r * cols + c]))
}

proptest! {
    #[test]
    fn xor_is_an_abelian_group(a in bitvec(40), b in bitvec(40), c in bitvec(40)) {
        // Associativity, commutativity, identity, self-inverse.
        let ab_c = (a.clone() ^ b.clone()) ^ c.clone();
        let a_bc = a.clone() ^ (b.clone() ^ c.clone());
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(a.clone() ^ b.clone(), b.clone() ^ a.clone());
        prop_assert_eq!(a.clone() ^ BitVec::zeros(40), a.clone());
        prop_assert!((a.clone() ^ a).is_zero());
    }

    #[test]
    fn hamming_distance_is_a_metric(a in bitvec(24), b in bitvec(24), c in bitvec(24)) {
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert!(
            a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c)
        );
    }

    #[test]
    fn matrix_vector_distributes(m in matrix(8, 12), x in bitvec(12), y in bitvec(12)) {
        let lhs = m.mul_vec(&(x.clone() ^ y.clone()));
        let rhs = m.mul_vec(&x) ^ m.mul_vec(&y);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn solve_round_trips_on_consistent_systems(m in matrix(9, 9), x in bitvec(9)) {
        let b = m.mul_vec(&x);
        let solved = m.solve(&b).expect("b is in the image by construction");
        prop_assert_eq!(m.mul_vec(&solved), b);
    }

    #[test]
    fn inverse_is_two_sided(m in matrix(7, 7)) {
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(m.mul_matrix(&inv), BitMatrix::identity(7));
            prop_assert_eq!(inv.mul_matrix(&m), BitMatrix::identity(7));
            prop_assert_eq!(m.rank(), 7);
        } else {
            prop_assert!(m.rank() < 7);
        }
    }

    #[test]
    fn pivot_columns_always_select_full_rank(m in matrix(5, 11)) {
        let pivots = m.pivot_columns();
        prop_assert_eq!(pivots.len(), m.rank());
        let rows: Vec<usize> = (0..5).collect();
        let sub = m.select(&rows, &pivots);
        prop_assert_eq!(sub.rank(), pivots.len());
    }

    #[test]
    fn rank_bounds(m in matrix(6, 10)) {
        let r = m.rank();
        prop_assert!(r <= 6);
        prop_assert_eq!(r, m.transpose().rank());
    }

    #[test]
    fn poly_ring_laws(a in 0u64..0x1000, b in 0u64..0x1000, c in 0u64..0x1000) {
        let (a, b, c) = (
            Gf2Poly::from_coeffs(a),
            Gf2Poly::from_coeffs(b),
            Gf2Poly::from_coeffs(c),
        );
        prop_assert_eq!(a.mul(b), b.mul(a));
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        prop_assert_eq!(a.mul(Gf2Poly::ONE), a);
    }

    #[test]
    fn poly_rem_is_a_ring_hom(a in 0u64..0xFFFF, b in 0u64..0xFFFF) {
        let m = Gf2Poly::from_coeffs(0x11B);
        let (a, b) = (Gf2Poly::from_coeffs(a), Gf2Poly::from_coeffs(b));
        // (a*b) mod m == ((a mod m)*(b mod m)) mod m
        prop_assert_eq!(a.mul(b).rem(m), a.rem(m).mul_mod(b.rem(m), m));
        // Remainder degree is below the modulus degree.
        if let Some(d) = a.rem(m).degree() {
            prop_assert!(d < 8);
        }
    }

    #[test]
    fn gf256_field_laws(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let (x, y, z) = (Gf256::aes(a), Gf256::aes(b), Gf256::aes(c));
        prop_assert_eq!((x * y).value(), (y * x).value());
        prop_assert_eq!((x * (y * z)).value(), ((x * y) * z).value());
        prop_assert_eq!((x * (y + z)).value(), ((x * y) + (x * z)).value());
        if a != 0 {
            let inv = x.inverse().expect("nonzero");
            prop_assert_eq!((x * inv).value(), 1);
        }
    }

    #[test]
    fn companion_matrix_represents_mul_mod(v in any::<u8>()) {
        let m = Gf2Poly::from_coeffs(0x11B);
        let alpha = m.companion_matrix();
        let via_matrix = alpha.mul_vec(&BitVec::from_u64(v as u64, 8)).to_u64();
        let via_poly = Gf2Poly::from_coeffs(v as u64).mul_mod(Gf2Poly::X, m).coeffs();
        prop_assert_eq!(via_matrix, via_poly);
    }
}
