//! Dense binary matrices with Gaussian elimination.

use std::fmt;
use std::ops::Mul;

use crate::BitVec;

/// A dense matrix over GF(2), stored row-major as [`BitVec`] rows.
///
/// Supports the operations the SCFI pass needs at synthesis time: products,
/// transpose, rank, inversion, solving `A·x = b`, row/column selection, and
/// block composition.
///
/// # Example
///
/// ```
/// use scfi_gf2::BitMatrix;
///
/// let a = BitMatrix::identity(4);
/// assert!(a.is_invertible());
/// assert_eq!(a.mul_matrix(&a), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates a `rows × cols` all-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows,
            cols,
            data: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = BitMatrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        BitMatrix {
            rows: rows.len(),
            cols,
            data: rows,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Extracts column `c` as a vector.
    pub fn col(&self, c: usize) -> BitVec {
        BitVec::from_bools(&(0..self.rows).map(|r| self.get(r, c)).collect::<Vec<_>>())
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(BitVec::is_zero)
    }

    /// Total number of one entries (the naive XOR-relevant density).
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(BitVec::count_ones).sum()
    }

    /// Matrix sum over GF(2) (entry-wise XOR).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.clone() ^ b.clone())
            .collect();
        BitMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        BitVec::from_bools(&self.data.iter().map(|row| row.dot(v)).collect::<Vec<_>>())
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul_matrix(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul_matrix");
        // Row-by-row accumulation: out_row = XOR of other rows selected by
        // self row bits. Word-parallel via BitVec xor.
        let mut out = BitMatrix::zero(self.rows, other.cols);
        for r in 0..self.rows {
            let mut acc = BitVec::zeros(other.cols);
            for c in 0..self.cols {
                if self.get(r, c) {
                    acc ^= &other.data[c];
                }
            }
            out.data[r] = acc;
        }
        out
    }

    /// Matrix power `self^k` (square matrices only).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn pow(&self, mut k: u64) -> BitMatrix {
        assert!(self.is_square(), "pow requires a square matrix");
        let mut result = BitMatrix::identity(self.rows);
        let mut base = self.clone();
        while k > 0 {
            if k & 1 == 1 {
                result = result.mul_matrix(&base);
            }
            base = base.mul_matrix(&base);
            k >>= 1;
        }
        result
    }

    /// Transposed copy.
    pub fn transpose(&self) -> BitMatrix {
        BitMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Rank via Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut m = self.data.clone();
        let mut rank = 0usize;
        for col in 0..self.cols {
            // Find pivot at or below `rank`.
            let Some(pivot) = (rank..self.rows).find(|&r| m[r].get(col)) else {
                continue;
            };
            m.swap(rank, pivot);
            let pivot_row = m[rank].clone();
            for (r, row) in m.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    *row ^= &pivot_row;
                }
            }
            rank += 1;
            if rank == self.rows {
                break;
            }
        }
        rank
    }

    /// Returns `true` if the matrix is square with full rank.
    pub fn is_invertible(&self) -> bool {
        self.is_square() && self.rank() == self.rows
    }

    /// The pivot columns of the row-echelon reduction, in ascending order.
    ///
    /// For a matrix of full row rank, selecting these columns yields an
    /// invertible square submatrix — used by the SCFI mix layer to place
    /// modifier bits.
    pub fn pivot_columns(&self) -> Vec<usize> {
        let mut m = self.data.clone();
        let mut pivots = Vec::new();
        let mut rank = 0usize;
        for col in 0..self.cols {
            let Some(p) = (rank..self.rows).find(|&r| m[r].get(col)) else {
                continue;
            };
            m.swap(rank, p);
            let pivot_row = m[rank].clone();
            for (r, row) in m.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    *row ^= &pivot_row;
                }
            }
            pivots.push(col);
            rank += 1;
            if rank == self.rows {
                break;
            }
        }
        pivots
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<BitMatrix> {
        if !self.is_square() {
            return None;
        }
        let n = self.rows;
        let mut left = self.data.clone();
        let mut right: Vec<BitVec> = (0..n)
            .map(|i| {
                let mut v = BitVec::zeros(n);
                v.set(i, true);
                v
            })
            .collect();
        for col in 0..n {
            let pivot = (col..n).find(|&r| left[r].get(col))?;
            left.swap(col, pivot);
            right.swap(col, pivot);
            let (lp, rp) = (left[col].clone(), right[col].clone());
            for r in 0..n {
                if r != col && left[r].get(col) {
                    left[r] ^= &lp;
                    right[r] ^= &rp;
                }
            }
        }
        Some(BitMatrix::from_rows(right))
    }

    /// Solves `self · x = b`, returning one solution if the system is
    /// consistent and `None` otherwise.
    ///
    /// Free variables are set to zero.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows, "dimension mismatch in solve");
        // Augmented elimination on [A | b].
        let mut a = self.data.clone();
        let mut rhs: Vec<bool> = b.iter().collect();
        let mut pivot_col_of_row: Vec<usize> = Vec::new();
        let mut rank = 0usize;
        for col in 0..self.cols {
            let Some(p) = (rank..self.rows).find(|&r| a[r].get(col)) else {
                continue;
            };
            a.swap(rank, p);
            rhs.swap(rank, p);
            let pivot_row = a[rank].clone();
            let pivot_rhs = rhs[rank];
            for r in 0..self.rows {
                if r != rank && a[r].get(col) {
                    let v = a[r].clone() ^ pivot_row.clone();
                    a[r] = v;
                    rhs[r] ^= pivot_rhs;
                }
            }
            pivot_col_of_row.push(col);
            rank += 1;
            if rank == self.rows {
                break;
            }
        }
        // Inconsistency: a zero row with nonzero rhs.
        for r in rank..self.rows {
            if rhs[r] && a[r].is_zero() {
                return None;
            }
        }
        let mut x = BitVec::zeros(self.cols);
        for (r, &col) in pivot_col_of_row.iter().enumerate() {
            if rhs[r] {
                x.set(col, true);
            }
        }
        Some(x)
    }

    /// Extracts the submatrix formed by `row_idx × col_idx`, in the given
    /// index order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> BitMatrix {
        BitMatrix::from_fn(row_idx.len(), col_idx.len(), |r, c| {
            self.get(row_idx[r], col_idx[c])
        })
    }

    /// Horizontal concatenation `[self | right]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hstack(&self, right: &BitMatrix) -> BitMatrix {
        assert_eq!(self.rows, right.rows, "row mismatch in hstack");
        BitMatrix::from_rows(
            self.data
                .iter()
                .zip(&right.data)
                .map(|(a, b)| a.concat(b))
                .collect(),
        )
    }

    /// Vertical concatenation `[self; below]`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(&self, below: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, below.cols, "column mismatch in vstack");
        let mut rows = self.data.clone();
        rows.extend(below.data.iter().cloned());
        BitMatrix::from_rows(rows)
    }

    /// Writes block `block` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn write_block(&mut self, r0: usize, c0: usize, block: &BitMatrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for r in 0..block.rows {
            for c in 0..block.cols {
                self.set(r0 + r, c0 + c, block.get(r, c));
            }
        }
    }
}

impl Mul<&BitMatrix> for &BitMatrix {
    type Output = BitMatrix;

    fn mul(self, rhs: &BitMatrix) -> BitMatrix {
        self.mul_matrix(rhs)
    }
}

impl Mul<&BitVec> for &BitMatrix {
    type Output = BitVec;

    fn mul(self, rhs: &BitVec) -> BitVec {
        self.mul_vec(rhs)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix[{}x{}]", self.rows, self.cols)?;
        for row in &self.data {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

impl fmt::Display for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{}", if self.get(r, c) { '1' } else { '0' })?;
            }
            if r + 1 != self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitMatrix {
        // [[1,1,0],[0,1,1],[0,0,1]] — upper triangular, invertible.
        BitMatrix::from_fn(3, 3, |r, c| c == r || c == r + 1)
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample();
        let id = BitMatrix::identity(3);
        assert_eq!(a.mul_matrix(&id), a);
        assert_eq!(id.mul_matrix(&a), a);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = sample();
        let v = BitVec::from_u64(0b101, 3);
        // row0 = 011 & 101 → parity(001)=1; row1 = 110 & 101 → parity(100)=1;
        // row2 = 100&? wait rows little-endian col index:
        // row0 has cols {0,1} → bits 0,1 of v = 1,0 → parity 1
        // row1 has cols {1,2} → bits 1,2 = 0,1 → parity 1
        // row2 has cols {2} → bit 2 = 1 → 1
        assert_eq!(a.mul_vec(&v).to_u64(), 0b111);
    }

    #[test]
    fn transpose_involution() {
        let a = BitMatrix::from_fn(4, 7, |r, c| (r * 7 + c) % 3 == 0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn rank_and_invertibility() {
        assert_eq!(sample().rank(), 3);
        assert!(sample().is_invertible());
        let singular = BitMatrix::from_fn(3, 3, |r, c| (c == r) || (c == (r + 1) % 3));
        assert_eq!(singular.rank(), 2);
        assert!(!singular.is_invertible());
        // Rank of transpose equals rank.
        assert_eq!(singular.transpose().rank(), 2);
    }

    #[test]
    fn inverse_round_trip() {
        let a = sample();
        let inv = a.inverse().expect("invertible");
        assert_eq!(a.mul_matrix(&inv), BitMatrix::identity(3));
        assert_eq!(inv.mul_matrix(&a), BitMatrix::identity(3));
    }

    #[test]
    fn inverse_of_singular_is_none() {
        let singular = BitMatrix::zero(3, 3);
        assert!(singular.inverse().is_none());
    }

    #[test]
    fn solve_consistent_and_inconsistent() {
        let a = sample();
        let x_true = BitVec::from_u64(0b011, 3);
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).expect("solvable");
        assert_eq!(a.mul_vec(&x), b);
        // Singular, inconsistent system: rows sum to zero but rhs doesn't.
        let s = BitMatrix::from_fn(3, 3, |r, c| (c == r) || (c == (r + 1) % 3));
        let bad = BitVec::from_u64(0b001, 3);
        assert!(s.solve(&bad).is_none());
        // Singular but consistent.
        let good = BitVec::from_u64(0b110, 3);
        let x = s.solve(&good).expect("consistent");
        assert_eq!(s.mul_vec(&x), good);
    }

    #[test]
    fn solve_wide_system() {
        // Under-determined: 2 equations, 4 unknowns.
        let a = BitMatrix::from_fn(2, 4, |r, c| c >= r);
        let b = BitVec::from_u64(0b10, 2);
        let x = a.solve(&b).expect("consistent");
        assert_eq!(a.mul_vec(&x), b);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = sample();
        let a3 = a.mul_matrix(&a).mul_matrix(&a);
        assert_eq!(a.pow(3), a3);
        assert_eq!(a.pow(0), BitMatrix::identity(3));
    }

    #[test]
    fn select_and_stack() {
        let a = sample();
        let sub = a.select(&[0, 2], &[1, 2]);
        assert_eq!(sub.rows(), 2);
        assert!(sub.get(0, 0)); // a[0][1]
        assert!(!sub.get(0, 1)); // a[0][2]
        assert!(sub.get(1, 1)); // a[2][2]

        let h = a.hstack(&BitMatrix::identity(3));
        assert_eq!(h.cols(), 6);
        assert!(h.get(1, 4));
        let v = a.vstack(&BitMatrix::identity(3));
        assert_eq!(v.rows(), 6);
        assert!(v.get(4, 1));
    }

    #[test]
    fn pivot_columns_give_invertible_submatrix() {
        // A wide full-row-rank matrix.
        let a = BitMatrix::from_fn(3, 7, |r, c| (c >= r && c <= r + 2) || c == 6 - r);
        assert_eq!(a.rank(), 3);
        let pivots = a.pivot_columns();
        assert_eq!(pivots.len(), 3);
        let rows: Vec<usize> = (0..3).collect();
        assert!(a.select(&rows, &pivots).is_invertible());
        // Zero matrix has no pivots.
        assert!(BitMatrix::zero(2, 4).pivot_columns().is_empty());
    }

    #[test]
    fn write_block_places_entries() {
        let mut m = BitMatrix::zero(4, 4);
        m.write_block(1, 2, &BitMatrix::identity(2));
        assert!(m.get(1, 2) && m.get(2, 3));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn mul_operator_works() {
        let a = sample();
        let v = BitVec::from_u64(0b111, 3);
        assert_eq!(&a * &v, a.mul_vec(&v));
        assert_eq!(&a * &a, a.mul_matrix(&a));
    }

    #[test]
    fn display_renders_grid() {
        let a = BitMatrix::identity(2);
        assert_eq!(a.to_string(), "10\n01");
    }
}
