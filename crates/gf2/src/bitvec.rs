//! Dynamic bit vectors with word-parallel operations.

use std::fmt;
use std::ops::{BitXor, BitXorAssign};

const WORD_BITS: usize = 64;

/// A fixed-length vector of bits over GF(2).
///
/// Bits are stored little-endian inside `u64` words: bit `i` lives in word
/// `i / 64` at position `i % 64`. Addition over GF(2) is XOR and is exposed
/// both as [`BitVec::xor_assign_with`] and via the `^` / `^=` operators.
///
/// # Example
///
/// ```
/// use scfi_gf2::BitVec;
///
/// let mut v = BitVec::zeros(70);
/// v.set(0, true);
/// v.set(69, true);
/// assert_eq!(v.count_ones(), 2);
/// let w = v.clone() ^ v.clone();
/// assert!(w.is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
        };
        v.mask_tail();
        v
    }

    /// Creates a vector from a slice of booleans; `bools[i]` becomes bit `i`.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = BitVec::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a `len`-bit vector from the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or if `value` has bits set at or above `len`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= WORD_BITS, "from_u64 supports at most 64 bits");
        assert!(
            len == WORD_BITS || value < (1u64 << len),
            "value 0x{value:x} does not fit in {len} bits"
        );
        let mut v = BitVec::zeros(len);
        if len > 0 {
            v.words[0] = value;
        }
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `i`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn toggle(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
        self.get(i)
    }

    /// XORs `other` into `self` (vector addition over GF(2)).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// Returns the bitwise AND of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch in and");
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Parity (XOR) of all bits: `true` when an odd number of bits are set.
    pub fn parity(&self) -> bool {
        self.words.iter().fold(0u64, |acc, w| acc ^ w).count_ones() % 2 == 1
    }

    /// Parity of `self AND other` — the GF(2) inner product.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch in dot");
        self.words
            .iter()
            .zip(&other.words)
            .fold(0u64, |acc, (a, b)| acc ^ (a & b))
            .count_ones()
            % 2
            == 1
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in hamming_distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Interprets the first `min(len, 64)` bits as a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `self.len() > 64`.
    pub fn to_u64(&self) -> u64 {
        assert!(self.len <= WORD_BITS, "to_u64 requires at most 64 bits");
        self.words.first().copied().unwrap_or(0)
    }

    /// Iterates over the bits from index 0 upward.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of all set bits, ascending.
    pub fn support(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }

    /// Concatenates `self` (low bits) with `other` (high bits).
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in 0..self.len {
            if self.get(i) {
                out.set(i, true);
            }
        }
        for i in 0..other.len {
            if other.get(i) {
                out.set(self.len + i, true);
            }
        }
        out
    }

    /// Extracts the sub-vector of bits at the given indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, indices: &[usize]) -> BitVec {
        let mut out = BitVec::zeros(indices.len());
        for (j, &i) in indices.iter().enumerate() {
            if self.get(i) {
                out.set(j, true);
            }
        }
        out
    }

    /// Extracts bits `range.start..range.end` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.end <= self.len, "slice out of bounds");
        let mut out = BitVec::zeros(range.len());
        for (j, i) in range.enumerate() {
            if self.get(i) {
                out.set(j, true);
            }
        }
        out
    }

    /// Clears any stray bits beyond `len` in the last storage word.
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign_with(rhs);
    }
}

impl BitXor for BitVec {
    type Output = BitVec;

    fn bitxor(mut self, rhs: BitVec) -> BitVec {
        self.xor_assign_with(&rhs);
        self
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        fmt::Display::fmt(self, f)?;
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    /// Renders most-significant bit first, e.g. `0b0101` for bits {0, 2}.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0b")?;
        for i in (0..self.len).rev() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(100);
        assert_eq!(z.len(), 100);
        assert!(z.is_zero());
        let o = BitVec::ones(100);
        assert_eq!(o.count_ones(), 100);
        // Tail masking: no stray bits outside len.
        let o65 = BitVec::ones(65);
        assert_eq!(o65.count_ones(), 65);
    }

    #[test]
    fn set_get_toggle() {
        let mut v = BitVec::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert!(!v.toggle(0));
        assert!(v.toggle(1));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn from_u64_round_trip() {
        let v = BitVec::from_u64(0b1011, 4);
        assert_eq!(v.to_u64(), 0b1011);
        assert!(v.get(0) && v.get(1) && !v.get(2) && v.get(3));
        let max = BitVec::from_u64(u64::MAX, 64);
        assert_eq!(max.count_ones(), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_overflow_panics() {
        let _ = BitVec::from_u64(0b10000, 4);
    }

    #[test]
    fn xor_is_addition() {
        let a = BitVec::from_u64(0b1100, 4);
        let b = BitVec::from_u64(0b1010, 4);
        let c = a.clone() ^ b.clone();
        assert_eq!(c.to_u64(), 0b0110);
        let mut d = a.clone();
        d ^= &a;
        assert!(d.is_zero());
    }

    #[test]
    fn dot_and_parity() {
        let a = BitVec::from_u64(0b1101, 4);
        let b = BitVec::from_u64(0b1011, 4);
        // AND = 0b1001 → parity 0 (two ones)
        assert!(!a.dot(&b));
        assert!(a.parity()); // three ones
    }

    #[test]
    fn hamming_distance_works() {
        let a = BitVec::from_u64(0b1111, 4);
        let b = BitVec::from_u64(0b0101, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn concat_select_slice() {
        let a = BitVec::from_u64(0b01, 2);
        let b = BitVec::from_u64(0b11, 2);
        let c = a.concat(&b);
        assert_eq!(c.to_u64(), 0b1101);
        assert_eq!(c.select(&[3, 0]).to_u64(), 0b11);
        assert_eq!(c.slice(1..3).to_u64(), 0b10);
    }

    #[test]
    fn support_lists_set_bits() {
        let v = BitVec::from_u64(0b10101, 5);
        assert_eq!(v.support(), vec![0, 2, 4]);
    }

    #[test]
    fn display_msb_first() {
        let v = BitVec::from_u64(0b0101, 4);
        assert_eq!(v.to_string(), "0b0101");
        assert_eq!(format!("{v:?}"), "BitVec[4; 0b0101]");
    }

    #[test]
    fn from_iterator_collects() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_u64(), 0b101);
    }
}
