//! Linear algebra over GF(2) — the binary field.
//!
//! This crate is the algebraic substrate of the SCFI reproduction. Everything
//! the hardening pass solves at synthesis time (per-edge modifiers, mix-layer
//! placements) and everything the MDS layer proves (block-minor
//! invertibility) reduces to dense linear algebra over GF(2):
//!
//! * [`BitVec`] — a growable vector of bits with word-parallel XOR/AND,
//! * [`BitMatrix`] — a dense binary matrix with Gaussian elimination, rank,
//!   inversion, and linear-system solving,
//! * [`Gf2Poly`] — polynomials over GF(2) up to degree 63, with carry-less
//!   multiplication, remainder, gcd, irreducibility testing, and companion
//!   matrices,
//! * [`Gf256`] — GF(2⁸) field arithmetic with a selectable reduction
//!   polynomial (used as a provably-correct reference for the MDS layer).
//!
//! # Example
//!
//! Solving a linear system `A·x = b` over GF(2):
//!
//! ```
//! use scfi_gf2::{BitMatrix, BitVec};
//!
//! // A = [[1,1,0],[0,1,1],[1,0,1]] is singular (rows sum to 0) …
//! let a = BitMatrix::from_fn(3, 3, |r, c| (c == r) || (c == (r + 1) % 3));
//! assert_eq!(a.rank(), 2);
//!
//! // … but the system is consistent for b in the column space.
//! let b = BitVec::from_bools(&[true, true, false]);
//! let x = a.solve(&b).expect("consistent system");
//! assert_eq!(a.mul_vec(&x), b);
//! ```

mod bitvec;
mod gf256;
mod matrix;
mod poly;

pub use bitvec::BitVec;
pub use gf256::Gf256;
pub use matrix::BitMatrix;
pub use poly::Gf2Poly;

/// Iterates over all `r`-element subsets of `0..n` in lexicographic order,
/// invoking `f` for each subset.
///
/// Used by the MDS layer to enumerate block minors. The subset buffer passed
/// to `f` is reused between invocations.
///
/// # Example
///
/// ```
/// let mut subsets = Vec::new();
/// scfi_gf2::for_each_combination(4, 2, |s| subsets.push(s.to_vec()));
/// assert_eq!(subsets.len(), 6);
/// assert_eq!(subsets[0], vec![0, 1]);
/// assert_eq!(subsets[5], vec![2, 3]);
/// ```
pub fn for_each_combination(n: usize, r: usize, mut f: impl FnMut(&[usize])) {
    if r > n {
        return;
    }
    if r == 0 {
        f(&[]);
        return;
    }
    let mut idx: Vec<usize> = (0..r).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = r;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - r {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..r {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_counts() {
        let mut count = 0usize;
        for_each_combination(6, 3, |_| count += 1);
        assert_eq!(count, 20);
        count = 0;
        for_each_combination(5, 0, |s| {
            assert!(s.is_empty());
            count += 1;
        });
        assert_eq!(count, 1);
        count = 0;
        for_each_combination(3, 4, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn combinations_full() {
        let mut got = Vec::new();
        for_each_combination(4, 4, |s| got.push(s.to_vec()));
        assert_eq!(got, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for_each_combination(7, 4, |s| {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(seen.insert(s.to_vec()));
        });
        assert_eq!(seen.len(), 35);
    }
}
