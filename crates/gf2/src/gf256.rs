//! GF(2⁸) field elements with a selectable reduction polynomial.

use std::fmt;

use crate::Gf2Poly;

/// An element of GF(2⁸) together with its reduction polynomial.
///
/// The MDS layer uses [`Gf256`] as an independently-verifiable reference:
/// the AES MixColumns matrix over `GF(2⁸)/0x11B` is provably MDS, so the
/// block-minor MDS checker can be validated against field arithmetic.
///
/// The reduction polynomial must be irreducible for this type to describe a
/// field; [`Gf256::new`] enforces that.
///
/// # Example
///
/// ```
/// use scfi_gf2::Gf256;
///
/// let a = Gf256::aes(0x57);
/// let b = Gf256::aes(0x83);
/// assert_eq!((a * b).value(), 0xC1); // classic AES worked example
/// assert_eq!((a * a.inverse().unwrap()).value(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gf256 {
    value: u8,
    modulus: u16,
}

impl Gf256 {
    /// The AES reduction polynomial X⁸ + X⁴ + X³ + X + 1.
    pub const AES_MODULUS: u16 = 0x11B;

    /// Creates an element of `GF(2⁸)` defined by `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` does not describe an irreducible degree-8
    /// polynomial.
    pub fn new(value: u8, modulus: u16) -> Self {
        let p = Gf2Poly::from_coeffs(modulus as u64);
        assert_eq!(p.degree(), Some(8), "modulus must have degree 8");
        assert!(
            p.is_irreducible(),
            "modulus {modulus:#x} is reducible; GF(2^8) requires an irreducible polynomial"
        );
        Gf256 { value, modulus }
    }

    /// Creates an element of the AES field `GF(2⁸)/0x11B`.
    pub fn aes(value: u8) -> Self {
        Gf256 {
            value,
            modulus: Self::AES_MODULUS,
        }
    }

    /// The raw byte value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// The reduction polynomial.
    pub fn modulus(self) -> u16 {
        self.modulus
    }

    /// Returns `true` for the zero element.
    pub fn is_zero(self) -> bool {
        self.value == 0
    }

    /// Multiplicative inverse, or `None` for zero.
    pub fn inverse(self) -> Option<Gf256> {
        if self.is_zero() {
            return None;
        }
        // Fermat: a^(2^8 - 2) = a^{-1}.
        Some(self.pow(254))
    }

    /// Exponentiation by squaring.
    pub fn pow(self, mut k: u32) -> Gf256 {
        let mut base = self;
        let mut acc = Gf256 {
            value: 1,
            modulus: self.modulus,
        };
        while k > 0 {
            if k & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            k >>= 1;
        }
        acc
    }
}

impl std::ops::Add for Gf256 {
    type Output = Gf256;

    fn add(self, rhs: Gf256) -> Gf256 {
        assert_eq!(self.modulus, rhs.modulus, "mixed-field addition");
        Gf256 {
            value: self.value ^ rhs.value,
            modulus: self.modulus,
        }
    }
}

impl std::ops::Mul for Gf256 {
    type Output = Gf256;

    fn mul(self, rhs: Gf256) -> Gf256 {
        assert_eq!(self.modulus, rhs.modulus, "mixed-field multiplication");
        let m = Gf2Poly::from_coeffs(self.modulus as u64);
        let p = Gf2Poly::from_coeffs(self.value as u64)
            .mul_mod(Gf2Poly::from_coeffs(rhs.value as u64), m);
        Gf256 {
            value: p.coeffs() as u8,
            modulus: self.modulus,
        }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x} mod {:#05x})", self.value, self.modulus)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!((Gf256::aes(0x0F) + Gf256::aes(0xF0)).value(), 0xFF);
        assert_eq!((Gf256::aes(0xAA) + Gf256::aes(0xAA)).value(), 0);
    }

    #[test]
    fn multiplication_known_vectors() {
        assert_eq!((Gf256::aes(0x57) * Gf256::aes(0x13)).value(), 0xFE);
        assert_eq!((Gf256::aes(0x02) * Gf256::aes(0x80)).value(), 0x1B);
        assert_eq!((Gf256::aes(0x01) * Gf256::aes(0x42)).value(), 0x42);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            let a = Gf256::aes(v);
            let inv = a.inverse().expect("nonzero has inverse");
            assert_eq!((a * inv).value(), 1, "inverse of {v:#x}");
        }
        assert!(Gf256::aes(0).inverse().is_none());
    }

    #[test]
    fn pow_cycles() {
        // Multiplicative group has order 255.
        let g = Gf256::aes(0x03); // a generator of the AES field
        assert_eq!(g.pow(255).value(), 1);
        assert_ne!(g.pow(85).value(), 1);
        assert_ne!(g.pow(51).value(), 1);
    }

    #[test]
    #[should_panic(expected = "reducible")]
    fn reducible_modulus_rejected() {
        let _ = Gf256::new(1, 0x105); // X^8+X^2+1 = (X^4+X+1)^2
    }

    #[test]
    fn alternative_irreducible_modulus() {
        // 0x11D is also irreducible; arithmetic must be self-consistent.
        let a = Gf256::new(0x53, 0x11D);
        let inv = a.inverse().unwrap();
        assert_eq!((a * inv).value(), 1);
    }

    #[test]
    fn distributivity_spot_check() {
        for &(a, b, c) in &[(0x57u8, 0x83u8, 0x1Au8), (0xFF, 0x01, 0x80)] {
            let (a, b, c) = (Gf256::aes(a), Gf256::aes(b), Gf256::aes(c));
            assert_eq!((a * (b + c)).value(), ((a * b) + (a * c)).value());
        }
    }
}
