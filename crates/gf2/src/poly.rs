//! Polynomials over GF(2) with degree up to 63.

use std::fmt;

use crate::BitMatrix;

/// A polynomial over GF(2), with coefficient `i` stored in bit `i` of a
/// `u64`.
///
/// The SCFI construction works in the ring `F₂[α]` where `α` is the companion
/// matrix of `X⁸ + X² + 1` (the paper's choice, which — note — factors as
/// `(X⁴ + X + 1)²` and is therefore *not* irreducible). [`Gf2Poly`] provides
/// the polynomial arithmetic needed to build and reason about such rings:
/// carry-less multiplication, remainder, gcd, irreducibility testing and
/// companion matrices.
///
/// # Example
///
/// ```
/// use scfi_gf2::Gf2Poly;
///
/// let scfi = Gf2Poly::from_coeffs(0b1_0000_0101); // X^8 + X^2 + 1
/// let quartic = Gf2Poly::from_coeffs(0b1_0011); // X^4 + X + 1
/// assert!(!scfi.is_irreducible());
/// assert!(quartic.is_irreducible());
/// assert_eq!(quartic.mul(quartic), scfi); // (X^4+X+1)^2 = X^8+X^2+1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gf2Poly(u64);

impl Gf2Poly {
    /// The zero polynomial.
    pub const ZERO: Gf2Poly = Gf2Poly(0);
    /// The constant polynomial 1.
    pub const ONE: Gf2Poly = Gf2Poly(1);
    /// The monomial X.
    pub const X: Gf2Poly = Gf2Poly(2);

    /// Creates a polynomial from its coefficient mask (bit `i` ⇒ `Xⁱ`).
    pub fn from_coeffs(mask: u64) -> Self {
        Gf2Poly(mask)
    }

    /// The monomial `X^k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > 63`.
    pub fn monomial(k: u32) -> Self {
        assert!(k <= 63, "monomial degree {k} exceeds 63");
        Gf2Poly(1u64 << k)
    }

    /// Coefficient mask (bit `i` ⇒ `Xⁱ`).
    pub fn coeffs(self) -> u64 {
        self.0
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    pub fn degree(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros())
        }
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Polynomial addition (XOR of coefficient masks).
    #[allow(clippy::should_implement_trait)] // consuming-by-value ring ops, named for clarity
    pub fn add(self, other: Gf2Poly) -> Gf2Poly {
        Gf2Poly(self.0 ^ other.0)
    }

    /// Carry-less polynomial multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the product degree would exceed 63.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Gf2Poly) -> Gf2Poly {
        if self.is_zero() || other.is_zero() {
            return Gf2Poly::ZERO;
        }
        let da = self.degree().expect("nonzero");
        let db = other.degree().expect("nonzero");
        assert!(da + db <= 63, "product degree {} exceeds 63", da + db);
        let mut acc = 0u64;
        let mut a = self.0;
        let mut shift = 0;
        while a != 0 {
            if a & 1 == 1 {
                acc ^= other.0 << shift;
            }
            a >>= 1;
            shift += 1;
        }
        Gf2Poly(acc)
    }

    /// Remainder of `self` modulo `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, modulus: Gf2Poly) -> Gf2Poly {
        let dm = modulus.degree().expect("modulus must be nonzero");
        let mut r = self.0;
        while let Some(dr) = Gf2Poly(r).degree() {
            if dr < dm {
                break;
            }
            r ^= modulus.0 << (dr - dm);
        }
        Gf2Poly(r)
    }

    /// Modular multiplication `self · other mod modulus`.
    ///
    /// Unlike [`Gf2Poly::mul`], this never overflows as long as both inputs
    /// are already reduced and `modulus` has degree ≤ 32.
    pub fn mul_mod(self, other: Gf2Poly, modulus: Gf2Poly) -> Gf2Poly {
        let a = self.rem(modulus);
        let mut b = other.rem(modulus).0;
        let mut shifted = a;
        let mut acc = Gf2Poly::ZERO;
        while b != 0 {
            if b & 1 == 1 {
                acc = acc.add(shifted);
            }
            b >>= 1;
            // shifted = shifted * X mod modulus
            shifted = Gf2Poly(shifted.0 << 1).rem(modulus);
        }
        acc
    }

    /// Modular exponentiation `self^k mod modulus`.
    pub fn pow_mod(self, mut k: u64, modulus: Gf2Poly) -> Gf2Poly {
        let mut base = self.rem(modulus);
        let mut acc = Gf2Poly::ONE.rem(modulus);
        while k > 0 {
            if k & 1 == 1 {
                acc = acc.mul_mod(base, modulus);
            }
            base = base.mul_mod(base, modulus);
            k >>= 1;
        }
        acc
    }

    /// Greatest common divisor (monic by construction over GF(2)).
    pub fn gcd(self, other: Gf2Poly) -> Gf2Poly {
        let (mut a, mut b) = (self, other);
        while !b.is_zero() {
            let r = a.rem(b);
            a = b;
            b = r;
        }
        a
    }

    /// Rabin irreducibility test.
    ///
    /// A degree-`n` polynomial `f` is irreducible over GF(2) iff
    /// `X^(2^n) ≡ X (mod f)` and `gcd(X^(2^(n/p)) − X, f) = 1` for every
    /// prime divisor `p` of `n`.
    pub fn is_irreducible(self) -> bool {
        let Some(n) = self.degree() else {
            return false;
        };
        if n == 0 {
            return false;
        }
        if n == 1 {
            return true;
        }
        // X^(2^n) mod f must equal X.
        let mut t = Gf2Poly::X.rem(self);
        for _ in 0..n {
            t = t.mul_mod(t, self);
        }
        if t != Gf2Poly::X.rem(self) {
            return false;
        }
        // For each prime p | n: gcd(X^(2^(n/p)) - X, f) == 1.
        for p in prime_divisors(n) {
            let e = n / p;
            let mut u = Gf2Poly::X.rem(self);
            for _ in 0..e {
                u = u.mul_mod(u, self);
            }
            let diff = u.add(Gf2Poly::X.rem(self));
            if self.gcd(diff).degree() != Some(0) {
                return false;
            }
        }
        true
    }

    /// Companion matrix of this polynomial (which must be monic of degree
    /// `n ≥ 1`): the `n × n` matrix implementing multiplication by `X`
    /// modulo `self` on coefficient vectors (bit `i` of the vector holds the
    /// coefficient of `Xⁱ`).
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is constant or zero.
    pub fn companion_matrix(self) -> BitMatrix {
        let n = self.degree().expect("nonzero polynomial required") as usize;
        assert!(n >= 1, "companion matrix needs degree >= 1");
        // Multiplication by X: coefficient i moves to i+1; overflow of X^n
        // folds back through the modulus tail.
        BitMatrix::from_fn(n, n, |r, c| {
            if c + 1 == n {
                // X^(n-1) * X = X^n ≡ tail of modulus.
                (self.0 >> r) & 1 == 1
            } else {
                r == c + 1
            }
        })
    }

    /// Evaluates this polynomial at a square matrix `alpha`:
    /// `p(A) = Σ_{i : coeff_i = 1} Aⁱ`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not square.
    pub fn eval_matrix(self, alpha: &BitMatrix) -> BitMatrix {
        assert!(alpha.is_square(), "eval_matrix requires a square matrix");
        let n = alpha.rows();
        let mut acc = BitMatrix::zero(n, n);
        let mut power = BitMatrix::identity(n);
        let mut mask = self.0;
        while mask != 0 {
            if mask & 1 == 1 {
                acc = acc.add(&power);
            }
            mask >>= 1;
            if mask != 0 {
                power = power.mul_matrix(alpha);
            }
        }
        acc
    }
}

/// Prime divisors of `n`, ascending, without multiplicity.
fn prime_divisors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

impl fmt::Debug for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Poly({self})")
    }
}

impl fmt::Display for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for i in (0..64).rev() {
            if (self.0 >> i) & 1 == 1 {
                if !first {
                    write!(f, " + ")?;
                }
                match i {
                    0 => write!(f, "1")?,
                    1 => write!(f, "X")?,
                    _ => write!(f, "X^{i}")?,
                }
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    /// The SCFI paper's ring modulus X^8 + X^2 + 1.
    const SCFI_POLY: u64 = 0x105;
    /// The AES field modulus X^8 + X^4 + X^3 + X + 1.
    const AES_POLY: u64 = 0x11B;

    #[test]
    fn degree_and_zero() {
        assert_eq!(Gf2Poly::ZERO.degree(), None);
        assert_eq!(Gf2Poly::ONE.degree(), Some(0));
        assert_eq!(Gf2Poly::from_coeffs(SCFI_POLY).degree(), Some(8));
    }

    #[test]
    fn mul_is_carryless() {
        // (X+1)(X+1) = X^2 + 1 over GF(2).
        let xp1 = Gf2Poly::from_coeffs(0b11);
        assert_eq!(xp1.mul(xp1).coeffs(), 0b101);
    }

    #[test]
    fn scfi_poly_is_square_of_quartic() {
        let quartic = Gf2Poly::from_coeffs(0b1_0011);
        assert_eq!(quartic.mul(quartic).coeffs(), SCFI_POLY);
    }

    #[test]
    fn rem_reduces_degree() {
        let m = Gf2Poly::from_coeffs(AES_POLY);
        let big = Gf2Poly::monomial(8);
        // X^8 mod AES = X^4 + X^3 + X + 1 = 0x1B.
        assert_eq!(big.rem(m).coeffs(), 0x1B);
        assert!(Gf2Poly::from_coeffs(0x42).rem(m).coeffs() == 0x42);
    }

    #[test]
    fn mul_mod_matches_schoolbook() {
        let m = Gf2Poly::from_coeffs(AES_POLY);
        let a = Gf2Poly::from_coeffs(0x57);
        let b = Gf2Poly::from_coeffs(0x83);
        // Known AES example: 0x57 * 0x83 = 0xC1 in GF(2^8)/0x11B.
        assert_eq!(a.mul_mod(b, m).coeffs(), 0xC1);
    }

    #[test]
    fn pow_mod_fermat() {
        // In GF(2^8), a^(2^8 - 1) = 1 for nonzero a.
        let m = Gf2Poly::from_coeffs(AES_POLY);
        let a = Gf2Poly::from_coeffs(0x53);
        assert_eq!(a.pow_mod(255, m), Gf2Poly::ONE);
    }

    #[test]
    fn gcd_works() {
        let quartic = Gf2Poly::from_coeffs(0b1_0011);
        let square = Gf2Poly::from_coeffs(SCFI_POLY);
        assert_eq!(square.gcd(quartic), quartic);
        let coprime = Gf2Poly::from_coeffs(0b111); // X^2+X+1
        assert_eq!(square.gcd(coprime).degree(), Some(0));
    }

    #[test]
    fn irreducibility_classification() {
        assert!(Gf2Poly::from_coeffs(AES_POLY).is_irreducible());
        assert!(!Gf2Poly::from_coeffs(SCFI_POLY).is_irreducible());
        assert!(Gf2Poly::from_coeffs(0b1_0011).is_irreducible()); // X^4+X+1
        assert!(Gf2Poly::from_coeffs(0b111).is_irreducible()); // X^2+X+1
        assert!(!Gf2Poly::from_coeffs(0b101).is_irreducible()); // X^2+1=(X+1)^2
        assert!(Gf2Poly::from_coeffs(0b10).is_irreducible()); // X
        assert!(!Gf2Poly::ONE.is_irreducible());
        assert!(!Gf2Poly::ZERO.is_irreducible());
        // X^8 + X^4 + X^3 + X^2 + 1 (0x11D) is also irreducible (CRC-8 poly).
        assert!(Gf2Poly::from_coeffs(0x11D).is_irreducible());
    }

    #[test]
    fn companion_matrix_multiplies_by_x() {
        let m = Gf2Poly::from_coeffs(AES_POLY);
        let alpha = m.companion_matrix();
        assert_eq!(alpha.rows(), 8);
        // alpha * e_i = e_{i+1} for i < 7.
        for i in 0..7 {
            let mut e = BitVec::zeros(8);
            e.set(i, true);
            let out = alpha.mul_vec(&e);
            let mut expect = BitVec::zeros(8);
            expect.set(i + 1, true);
            assert_eq!(out, expect, "shift of e_{i}");
        }
        // alpha * e_7 = coefficients of X^8 mod m = 0x1B.
        let mut e7 = BitVec::zeros(8);
        e7.set(7, true);
        assert_eq!(alpha.mul_vec(&e7).to_u64(), 0x1B);
        // alpha^255 = identity in the field case.
        assert_eq!(alpha.pow(255), BitMatrix::identity(8));
    }

    #[test]
    fn companion_matrix_agrees_with_mul_mod() {
        // Multiplying a polynomial by X via the companion matrix equals
        // mul_mod by X, for both the field and the SCFI ring modulus.
        for modulus in [AES_POLY, SCFI_POLY] {
            let m = Gf2Poly::from_coeffs(modulus);
            let alpha = m.companion_matrix();
            for val in [0x01u64, 0x80, 0x57, 0xFF, 0xA5] {
                let v = BitVec::from_u64(val, 8);
                let via_matrix = alpha.mul_vec(&v).to_u64();
                let via_poly = Gf2Poly::from_coeffs(val).mul_mod(Gf2Poly::X, m).coeffs();
                assert_eq!(via_matrix, via_poly, "modulus {modulus:#x} val {val:#x}");
            }
        }
    }

    #[test]
    fn eval_matrix_linearity() {
        let m = Gf2Poly::from_coeffs(SCFI_POLY);
        let alpha = m.companion_matrix();
        // p = X^2 + 1 evaluated at alpha equals alpha^2 + I.
        let p = Gf2Poly::from_coeffs(0b101);
        let expect = alpha.pow(2).add(&BitMatrix::identity(8));
        assert_eq!(p.eval_matrix(&alpha), expect);
        assert!(Gf2Poly::ZERO.eval_matrix(&alpha).is_zero());
    }

    #[test]
    fn scfi_companion_is_invertible_but_not_of_full_order() {
        // Even though X^8+X^2+1 is reducible, its companion matrix is
        // invertible (constant term 1) — the SCFI construction relies on
        // this.
        let alpha = Gf2Poly::from_coeffs(SCFI_POLY).companion_matrix();
        assert!(alpha.is_invertible());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gf2Poly::from_coeffs(SCFI_POLY).to_string(), "X^8 + X^2 + 1");
        assert_eq!(Gf2Poly::ZERO.to_string(), "0");
        assert_eq!(Gf2Poly::from_coeffs(0b11).to_string(), "X + 1");
    }

    #[test]
    fn prime_divisors_basic() {
        assert_eq!(prime_divisors(8), vec![2]);
        assert_eq!(prime_divisors(12), vec![2, 3]);
        assert_eq!(prime_divisors(7), vec![7]);
        assert_eq!(prime_divisors(1), Vec::<u32>::new());
    }
}
